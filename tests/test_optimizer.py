"""Optimizer: strategy space, cost model sanity, plan choice quality."""

import datetime

import pytest

from repro.engine import plan as lp
from repro.optimizer.cost import StatsProvider
from repro.optimizer.space import (
    PRE,
    PlanBuilder,
    Strategy,
    enumerate_strategies,
)
from repro.workload.queries import demo_query, query_date_selectivity


@pytest.fixture
def session(demo_session):
    demo_session.reset_measurements()
    return demo_session


class TestStrategySpace:
    def test_enumeration_is_exponential_in_visible_preds(self, session):
        bound = session.bind(demo_query())
        assert len(bound.visible_predicates) == 2
        strategies = enumerate_strategies(bound)
        assert len(strategies) == 4
        assert len({s.assignments for s in strategies}) == 4

    def test_no_visible_predicates_single_strategy(self, session):
        bound = session.bind(
            "SELECT Quantity FROM Prescription WHERE Quantity = 5"
        )
        strategies = enumerate_strategies(bound)
        assert len(strategies) == 1
        assert strategies[0].assignments == ()

    def test_labels_are_descriptive(self, session):
        bound = session.bind(demo_query())
        label = Strategy.all_pre(bound).label(bound)
        assert "visit.date=pre" in label
        assert "medicine.type=pre" in label


class TestPlanShapes:
    def test_all_pre_has_no_blooms(self, session):
        bound = session.bind(demo_query())
        plan = PlanBuilder(session.hidden, bound).build(
            Strategy.all_pre(bound)
        )
        kinds = {type(n).__name__ for n in plan.walk()}
        assert "BloomProbe" not in kinds
        assert "VisibleSelect" in kinds
        assert "SktAccess" in kinds

    def test_all_post_blooms_every_visible(self, session):
        bound = session.bind(demo_query())
        plan = PlanBuilder(session.hidden, bound).build(
            Strategy.all_post(bound)
        )
        blooms = [n for n in plan.walk() if isinstance(n, lp.BloomProbe)]
        assert len(blooms) == 2
        # Post plans re-check their predicates at projection.
        assert len(plan.visible_recheck) == 2

    def test_cross_filtering_emerges_on_shared_table(self, session):
        """Date (visible) and Purpose (hidden) both live on Visit: with
        date=PRE the builder intersects at the visit level and converts
        once -- the paper's Cross-filtering."""
        bound = session.bind(query_date_selectivity(datetime.date(2006, 6, 1)))
        plan = PlanBuilder(session.hidden, bound).build(
            Strategy(("pre",))
        )
        converts = [n for n in plan.walk() if isinstance(n, lp.ConvertIds)]
        assert len(converts) == 1
        child = converts[0].child
        assert isinstance(child, lp.MergeIntersect)
        kinds = {type(n).__name__ for n in child.walk()}
        assert {"ClimbingSelect", "VisibleSelect"} <= kinds
        # The climbing select was pulled down to the visit level.
        climbing = next(
            n for n in child.walk() if isinstance(n, lp.ClimbingSelect)
        )
        assert climbing.target_table == "visit"

    def test_hidden_only_plan_climbs_straight_to_root(self, session):
        bound = session.bind(
            "SELECT Pre.Quantity FROM Prescription Pre, Visit Vis "
            "WHERE Vis.Purpose = 'Sclerosis' AND Vis.VisID = Pre.VisID"
        )
        plan = PlanBuilder(session.hidden, bound).build(Strategy(()))
        climbing = next(
            n for n in plan.walk() if isinstance(n, lp.ClimbingSelect)
        )
        assert climbing.target_table == "prescription"
        assert not any(
            isinstance(n, lp.ConvertIds) for n in plan.walk()
        )

    def test_no_predicates_full_scan(self, session):
        bound = session.bind(
            "SELECT Med.Type, Pre.Quantity FROM Medicine Med, "
            "Prescription Pre WHERE Med.MedID = Pre.MedID"
        )
        plan = PlanBuilder(session.hidden, bound).build(Strategy(()))
        skt = next(n for n in plan.walk() if isinstance(n, lp.SktAccess))
        assert skt.child is None  # full SKT scan

    def test_strategy_arity_checked(self, session):
        bound = session.bind(demo_query())
        with pytest.raises(ValueError, match="arity"):
            PlanBuilder(session.hidden, bound).build(Strategy(("pre",)))


class TestCostModel:
    def test_estimates_follow_selectivity(self, session):
        """A more selective visible predicate must make the PRE arm
        cheaper."""
        model = session.optimizer.cost_model
        bound_tight = session.bind(
            query_date_selectivity(datetime.date(2007, 6, 1))
        )
        bound_loose = session.bind(
            query_date_selectivity(datetime.date(2005, 2, 1))
        )
        tight = model.estimate(
            PlanBuilder(session.hidden, bound_tight).build(Strategy(("pre",)))
        )
        loose = model.estimate(
            PlanBuilder(session.hidden, bound_loose).build(Strategy(("pre",)))
        )
        assert tight.seconds < loose.seconds

    def test_post_beats_pre_for_unselective_lone_visible(self, session):
        """An unselective visible predicate on a table with no hidden
        companion (so Cross-filtering cannot rescue it) should cost less
        as a Bloom post-filter than as a converted ID list -- the paper's
        motivation for Post-filtering."""
        from repro.workload.queries import demo_query as dq

        model = session.optimizer.cost_model
        # Antidiabetic matches ~30% of medicines; Sclerosis stays the
        # selective hidden anchor on the other branch.
        sql = dq(
            date_cutoff=datetime.date(2007, 6, 29),
            med_type="Antidiabetic",
        )
        bound = session.bind(sql)
        type_index = next(
            i for i, p in enumerate(bound.visible_predicates)
            if p.column == "type"
        )
        choices_pre = ["pre", "pre"]
        choices_post = ["pre", "pre"]
        choices_post[type_index] = "post"
        pre = model.estimate(
            PlanBuilder(session.hidden, bound).build(
                Strategy(tuple(choices_pre))
            )
        )
        post = model.estimate(
            PlanBuilder(session.hidden, bound).build(
                Strategy(tuple(choices_post))
            )
        )
        assert post.seconds < pre.seconds

    def test_estimate_positive_and_finite(self, session):
        bound = session.bind(demo_query())
        for ranked in session.optimizer.rank(bound):
            assert 0 < ranked.estimate.seconds < 10
            assert ranked.estimate.ram_bytes >= 0

    def test_stats_provider_spans_both_sides(self, session):
        provider = StatsProvider(session.hidden, session.site)
        bound = session.bind(demo_query())
        for predicate in bound.predicates:
            sel = provider.selectivity(predicate)
            assert 0 <= sel <= 1


class TestOptimizerChoice:
    def test_rank_orders_by_estimate(self, session):
        ranked = session.rank_plans(demo_query())
        estimates = [r.estimate.seconds for r in ranked]
        assert estimates == sorted(estimates)

    def test_optimizer_choice_is_near_best_measured(self, session):
        """The chosen plan must be within 2x of the measured-fastest
        candidate (estimates are estimates, but rankings should hold)."""
        bound = session.bind(demo_query())
        measured = {}
        for strategy in enumerate_strategies(bound):
            session.reset_measurements()
            result = session.query_with_strategy(demo_query(), strategy)
            measured[strategy.assignments] = result.metrics.elapsed_seconds
        best_measured = min(measured.values())
        chosen = session.optimizer.optimize(bound)
        assert measured[chosen.strategy.assignments] <= best_measured * 2

    def test_annotation_fills_runtime_hints(self, session):
        bound = session.bind(demo_query())
        plan = PlanBuilder(session.hidden, bound).build(
            Strategy.all_post(bound)
        )
        session.optimizer.annotate(plan)
        blooms = [n for n in plan.walk() if isinstance(n, lp.BloomProbe)]
        assert all(b.expected_ids is not None for b in blooms)

    def test_explain_renders_estimates(self, session):
        text = session.explain(demo_query())
        assert "Project" in text
        assert "ms" in text and "out" in text


class TestRamAwareChoice:
    def test_tiny_device_prefers_a_fitting_plan(self, demo_data):
        """On a 16 KB chip the optimizer must pass over estimated-faster
        plans whose working set would not fit, and the chosen plan must
        actually run inside the budget."""
        from repro.core.ghostdb import GhostDB
        from repro.hardware.profiles import TINY_DEVICE
        from repro.workload.queries import DEMO_SCHEMA_DDL, demo_query

        db = GhostDB(profile=TINY_DEVICE)
        for ddl in DEMO_SCHEMA_DDL:
            db.execute(ddl)
        db.load(demo_data)
        bound = db.bind(demo_query())
        chosen = db.optimizer.optimize(bound)
        assert chosen.estimate.ram_bytes <= 0.8 * TINY_DEVICE.ram_bytes
        db.reset_measurements()
        result = db.executor.execute(chosen.plan)
        assert result.metrics.ram_high_water <= TINY_DEVICE.ram_bytes

    def test_pk_predicates_are_visible_selections(self, session):
        """Primary keys are public: a PK range predicate is delegated to
        the PC and returns root IDs directly."""
        bound = session.bind(
            "SELECT Quantity FROM Prescription WHERE PreID <= 50"
        )
        predicate = bound.predicates[0]
        assert not predicate.hidden
        result = session.query(
            "SELECT PreID, Quantity FROM Prescription WHERE PreID <= 50"
        )
        assert result.row_count == 50
        assert all(row[0] <= 50 for row in result.rows)
