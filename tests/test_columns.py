"""Typed columnar batch payloads (:mod:`repro.columns`).

The two contracts the engine depends on: columns behave as immutable
sequences whose iteration yields *built-in* ints (a NumPy scalar must
never leak into results or USB packing), and the big-endian byte layout
round-trips exactly -- it is the on-flash / on-wire format.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.columns import ID_WIDTH, IdColumn, chunk_ids, numpy_enabled

REPO_ROOT = Path(__file__).resolve().parents[1]


class TestSequenceProtocol:
    def test_from_ids_equals_source(self):
        ids = [7, 0, 4_294_967_295, 12]
        column = IdColumn.from_ids(ids)
        assert len(column) == 4
        assert column == ids
        assert column.tolist() == ids

    def test_iteration_yields_builtin_ints(self):
        column = IdColumn.from_ids([1, 2, 3])
        for value in column:
            assert type(value) is int

    def test_indexing_yields_builtin_ints(self):
        column = IdColumn.from_ids([5, 6, 7])
        assert type(column[1]) is int
        assert column[1] == 6

    def test_slicing_returns_a_column(self):
        column = IdColumn.from_ids(range(10))
        sliced = column[2:5]
        assert isinstance(sliced, IdColumn)
        assert sliced == [2, 3, 4]

    def test_bool_and_repr(self):
        assert not IdColumn.from_ids([])
        column = IdColumn.from_ids(range(10))
        assert column
        assert "n=10" in repr(column)
        assert "..." in repr(column)

    def test_eq_against_tuple_and_column(self):
        column = IdColumn.from_ids([1, 2])
        assert column == (1, 2)
        assert column == IdColumn.from_ids([1, 2])
        assert column != [1, 3]


class TestWireLayout:
    def test_to_be_bytes_is_big_endian(self):
        column = IdColumn.from_ids([1, 0x01020304])
        assert column.to_be_bytes() == (
            b"\x00\x00\x00\x01\x01\x02\x03\x04"
        )

    def test_from_be_bytes_roundtrip(self):
        ids = [0, 1, 255, 65_536, 4_294_967_295]
        raw = IdColumn.from_ids(ids).to_be_bytes()
        assert IdColumn.from_be_bytes(raw, len(ids)) == ids

    def test_from_be_bytes_with_offset(self):
        payload = b"\xff\xff" + IdColumn.from_ids([9, 10]).to_be_bytes()
        column = IdColumn.from_be_bytes(payload, 2, offset=2)
        assert column == [9, 10]

    def test_from_be_bytes_reads_exactly_count(self):
        raw = IdColumn.from_ids([1, 2, 3]).to_be_bytes()
        assert IdColumn.from_be_bytes(raw, 2) == [1, 2]
        assert len(raw) == 3 * ID_WIDTH


class TestChunkIds:
    def test_rechunks_to_cap(self):
        chunks = list(chunk_ids(iter(range(10)), 4))
        assert [len(c) for c in chunks] == [4, 4, 2]
        assert [list(c) for c in chunks] == [
            [0, 1, 2, 3], [4, 5, 6, 7], [8, 9]
        ]
        assert all(isinstance(c, IdColumn) for c in chunks)

    def test_closes_the_source_iterator(self):
        closed = []

        def source():
            try:
                yield from range(100)
            finally:
                closed.append(True)

        stream = chunk_ids(source(), 8)
        next(stream)
        stream.close()  # teardown mid-stream must close the source
        assert closed == [True]


# ---------------------------------------------------------------------------
# NumPy backing: opt-in via GHOSTDB_NUMPY, identical contracts.
# ---------------------------------------------------------------------------

_NUMPY_PROBE = subprocess.run(
    [sys.executable, "-c", "import numpy"], capture_output=True
).returncode


def test_default_build_ignores_numpy():
    # The suite runs without the flag: columns must be array-backed.
    if os.environ.get("GHOSTDB_NUMPY", "") in ("", "0"):
        assert not numpy_enabled()


@pytest.mark.skipif(_NUMPY_PROBE != 0, reason="numpy not installed")
def test_numpy_backend_honours_the_contracts():
    """Run the core contracts in a subprocess with GHOSTDB_NUMPY=1 (the
    backend is chosen at import time, so it needs a fresh interpreter)."""
    program = """
from repro.columns import IdColumn, chunk_ids, numpy_enabled

assert numpy_enabled()
ids = [7, 0, 4294967295, 12]
column = IdColumn.from_ids(ids)
assert column == ids
assert all(type(v) is int for v in column)
assert type(column[0]) is int
assert isinstance(column[1:3], IdColumn)
raw = column.to_be_bytes()
assert raw == b''.join(v.to_bytes(4, 'big') for v in ids)
assert IdColumn.from_be_bytes(raw, len(ids)) == ids
assert [list(c) for c in chunk_ids(iter(range(5)), 2)] == [[0,1],[2,3],[4]]
print('OK')
"""
    env = dict(os.environ)
    env["GHOSTDB_NUMPY"] = "1"
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-c", program],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "OK"
