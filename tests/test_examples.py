"""The examples must actually run (they are documentation)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    p.name
    for p in (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_every_example_is_covered():
    """A new example file must be added to the runnable set below."""
    assert EXAMPLES == [
        "hospital_demo.py",
        "plan_lab.py",
        "privacy_audit.py",
        "quickstart.py",
        "research_study.py",
    ]


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_cleanly(name):
    root = pathlib.Path(__file__).parent.parent
    command = [sys.executable, str(root / "examples" / name)]
    if name == "hospital_demo.py":
        command.append("2000")  # small scale keeps the suite fast
    completed = subprocess.run(
        command,
        capture_output=True,
        text=True,
        timeout=300,
        cwd=root,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout  # examples narrate what they do
