"""DDL execution: CREATE TABLE AST into the catalog."""

import pytest

from repro.catalog.schema import Schema, SchemaError
from repro.sql.ddl import create_table
from repro.sql.parser import parse_statement
from repro.storage.types import CharType, IntegerType


def apply(schema, sql):
    return create_table(schema, parse_statement(sql))


def test_basic_table():
    schema = Schema()
    table = apply(
        schema,
        "CREATE TABLE Medicine (MedID INTEGER PRIMARY KEY, "
        "Name CHAR(30), Type CHAR(20))",
    )
    assert table.pk.name == "MedID"
    assert isinstance(table.column("Name").dtype, CharType)
    assert schema.has_table("medicine")


def test_hidden_flag_applied():
    schema = Schema()
    table = apply(
        schema,
        "CREATE TABLE T (id INTEGER PRIMARY KEY, secret CHAR(10) HIDDEN)",
    )
    assert table.column("secret").hidden
    assert not table.column("id").hidden


def test_reference_inherits_pk_type():
    schema = Schema()
    apply(schema, "CREATE TABLE U (uid INTEGER PRIMARY KEY)")
    table = apply(
        schema,
        "CREATE TABLE T (id INTEGER PRIMARY KEY, "
        "u REFERENCES U(uid) HIDDEN)",
    )
    column = table.column("u")
    assert isinstance(column.dtype, IntegerType)
    assert column.references.table == "U"
    assert column.hidden


def test_reference_to_missing_table_rejected():
    schema = Schema()
    with pytest.raises(SchemaError, match="create referenced tables first"):
        apply(
            schema,
            "CREATE TABLE T (id INTEGER PRIMARY KEY, u REFERENCES U(uid))",
        )


def test_bad_type_rejected():
    schema = Schema()
    with pytest.raises(SchemaError, match="unsupported SQL type"):
        apply(schema, "CREATE TABLE T (id INTEGER PRIMARY KEY, b BLOB)")


def test_duplicate_table_rejected():
    schema = Schema()
    apply(schema, "CREATE TABLE T (id INTEGER PRIMARY KEY)")
    with pytest.raises(SchemaError, match="already exists"):
        apply(schema, "CREATE TABLE T (id INTEGER PRIMARY KEY)")
