"""``ghostdb serve``: wire protocol, admission over TCP, leak hygiene.

Handler threads never touch the device -- every assertion here runs
against the single-pump architecture, so concurrent clients are just
another way to drive the deterministic scheduler.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

import pytest

from repro.privacy.leakcheck import LeakChecker
from repro.serve import (
    ServeClient,
    _json_value,
    run_smoke,
    shutdown_server,
    start_server,
)
from tests.test_sessions import STATEMENTS, build_db, small_data


@contextmanager
def serving(db, token=None):
    tcp, ghost = start_server(db, port=0, token=token)
    try:
        host, port = tcp.server_address
        yield host, port
    finally:
        shutdown_server(tcp, ghost)


@pytest.fixture()
def db():
    return build_db()


def expected_rows(db, sql):
    """What the classic single-session path answers, JSON-shaped."""
    rows = db.query(sql).rows
    db.reset_measurements()
    return sorted([_json_value(v) for v in row] for row in rows)


# ---------------------------------------------------------------------------
# Protocol round trips.
# ---------------------------------------------------------------------------


def test_hello_sql_bye_roundtrip(db):
    sql = STATEMENTS[1]
    want = expected_rows(db, sql)
    with serving(db) as (host, port):
        client = ServeClient(host, port)
        hello = client.hello(name="alice")
        assert hello["ok"] and hello["session"] == "alice"
        assert hello["ram"] == db.profile.ram_bytes // 4
        reply = client.sql(sql)
        assert reply["ok"]
        assert sorted(reply["rows"]) == want
        assert reply["row_count"] == len(want)
        assert reply["steps"] >= 1
        assert reply["sim_seconds"] > 0
        bye = client.bye()
        assert bye["ok"] and bye["closed"] and not bye["leaked_ram"]
    assert not db.core.sessions
    assert db.core.leased_bytes == 0


def test_sql_before_hello_is_a_session_error(db):
    with serving(db) as (host, port):
        client = ServeClient(host, port)
        reply = client.sql(STATEMENTS[0])
        assert not reply["ok"]
        assert reply["kind"] == "session"
        client.close()


def test_unknown_op_is_a_protocol_error(db):
    with serving(db) as (host, port):
        client = ServeClient(host, port)
        reply = client.call(op="teleport")
        assert not reply["ok"]
        assert reply["kind"] == "protocol"
        client.close()


def test_statement_error_keeps_the_connection_alive(db):
    with serving(db) as (host, port):
        client = ServeClient(host, port)
        assert client.hello(name="sturdy")["ok"]
        reply = client.sql("SELECT Nope.Missing FROM Nowhere Nope")
        assert not reply["ok"]
        # The session survives the bad statement.
        good = client.sql(STATEMENTS[1])
        assert good["ok"]
        assert client.bye()["ok"]


def test_token_gate(db):
    with serving(db, token="hunter2") as (host, port):
        denied = ServeClient(host, port)
        reply = denied.hello(name="intruder")
        assert not reply["ok"] and reply["kind"] == "auth"
        denied.close()

        admitted = ServeClient(host, port)
        assert admitted.hello(name="keyholder", token="hunter2")["ok"]
        assert admitted.bye()["ok"]
    assert not db.core.sessions


def test_disconnect_without_bye_releases_the_lease(db):
    with serving(db) as (host, port):
        client = ServeClient(host, port)
        assert client.hello(name="rude")["ok"]
        client.close()  # vanish without bye
        # The handler's teardown runs asynchronously; wait for the pump
        # to process the implicit bye.
        for _ in range(200):
            if not db.core.sessions:
                break
            threading.Event().wait(0.01)
    assert not db.core.sessions
    assert db.core.leased_bytes == 0


# ---------------------------------------------------------------------------
# Concurrency: many clients, one device, everyone gets the right answer.
# ---------------------------------------------------------------------------


def test_concurrent_clients_all_get_correct_rows(db):
    want = {sql: expected_rows(db, sql) for sql in STATEMENTS}
    failures: list[str] = []

    def client_thread(i: int, host: str, port: int) -> None:
        try:
            client = ServeClient(host, port)
            assert client.hello(name=f"worker-{i}")["ok"]
            for sql in STATEMENTS:
                reply = client.sql(sql)
                if not reply.get("ok"):
                    failures.append(f"worker-{i}: {reply}")
                    return
                if sorted(reply["rows"]) != want[sql]:
                    failures.append(f"worker-{i}: wrong rows for {sql!r}")
            bye = client.bye()
            if bye.get("leaked_ram"):
                failures.append(f"worker-{i}: leaked {bye['leaked_ram']} B")
        except Exception as exc:  # noqa: BLE001 - report, don't hang join
            failures.append(f"worker-{i}: {type(exc).__name__}: {exc}")

    with serving(db) as (host, port):
        threads = [
            threading.Thread(target=client_thread, args=(i, host, port))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    assert not failures, failures
    assert not db.core.sessions
    assert db.core.leased_bytes == 0
    # The spy watched the whole interleaved run; still nothing readable.
    report = LeakChecker(db.schema, small_data()).check(db.usb_log)
    assert report.ok, report.summary()


def test_queued_admission_waits_for_a_slot(db):
    """A hello past the RAM budget parks until a session closes."""
    budget = db.profile.ram_bytes
    admitted = threading.Event()
    with serving(db) as (host, port):
        hog = ServeClient(host, port)
        assert hog.hello(name="hog", ram=budget)["ok"]

        def waiter() -> None:
            client = ServeClient(host, port)
            reply = client.hello(name="patient", ram=budget)
            if reply.get("ok"):
                admitted.set()
            client.bye()

        thread = threading.Thread(target=waiter)
        thread.start()
        # The waiter must be parked, not rejected.
        assert not admitted.wait(0.2)
        hog.bye()  # frees the whole budget -> waiter admitted
        thread.join(timeout=5)
        assert admitted.is_set()
    assert db.core.leased_bytes == 0


# ---------------------------------------------------------------------------
# The CI smoke is itself part of the suite.
# ---------------------------------------------------------------------------


def test_run_smoke_passes():
    assert run_smoke(scale=200, clients=3) == 0
