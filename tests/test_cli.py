"""The interactive shell and EXPLAIN ANALYZE."""

import io

import pytest

from repro.cli import Shell
from repro.workload.queries import demo_query


@pytest.fixture(scope="module")
def shell():
    out = io.StringIO()
    sh = Shell(scale=1_000, out=out)
    sh._out_buffer = out
    return sh


def run(shell, line):
    shell._out_buffer.seek(0)
    shell._out_buffer.truncate()
    alive = shell.handle(line)
    return alive, shell._out_buffer.getvalue()


class TestShellCommands:
    def test_select_prints_rows_and_metrics(self, shell):
        alive, out = run(shell, "SELECT Country FROM Doctor LIMIT 2;")
        assert alive
        assert "doctor.Country" in out
        assert "simulated" in out

    def test_truncation_beyond_50_rows(self, shell):
        _alive, out = run(shell, "SELECT Quantity FROM Prescription")
        assert "rows total" in out

    def test_explain(self, shell):
        _alive, out = run(shell, f".explain {demo_query()}")
        assert "Project" in out and "ms" in out

    def test_analyze_shows_est_and_actual(self, shell):
        _alive, out = run(shell, f".analyze {demo_query()}")
        assert "est ~" in out and "actual" in out

    def test_plans_ranked(self, shell):
        _alive, out = run(shell, f".plans {demo_query()}")
        assert out.count("ms est") == 4

    def test_spy_and_leaks(self, shell):
        run(shell, "SELECT Country FROM Doctor LIMIT 1")
        _alive, out = run(shell, ".spy 5")
        assert "host" in out or "device" in out
        _alive, out = run(shell, ".leaks")
        assert "CLEAN" in out

    def test_schema_marks_hidden(self, shell):
        _alive, out = run(shell, ".schema")
        assert "HIDDEN" in out
        assert "PRIMARY KEY" in out

    def test_fault_attach_status_events_detach(self, shell):
        _alive, out = run(shell, ".fault")
        assert "off" in out
        _alive, out = run(shell, ".fault mixed 5")
        assert "profile=mixed seed=5" in out
        run(shell, "SELECT Quantity FROM Prescription WHERE Quantity = 7")
        _alive, out = run(shell, ".fault status")
        assert "profile=mixed" in out and "flash_ops=" in out
        _alive, out = run(shell, ".fault events 3")
        assert "flash" in out or "usb" in out or "no faults" in out
        _alive, out = run(shell, ".fault off")
        assert "detached" in out
        _alive, out = run(shell, ".fault bogus")
        assert "unknown fault subcommand" in out

    def test_fault_remount_on_healthy_device(self, shell):
        run(shell, ".fault off")
        _alive, out = run(shell, ".fault remount")
        assert "nothing to recover" in out

    def test_storage_report(self, shell):
        _alive, out = run(shell, ".storage")
        assert "SKT_prescription" in out

    def test_cache_command_and_set_cache(self, shell):
        _alive, out = run(shell, ".cache")
        assert "buffer pool:" in out and "resident" in out
        _alive, out = run(shell, ".cache 4")
        assert "4 pages" in out
        assert shell.db.device.page_cache.capacity_pages == 4
        _alive, out = run(shell, "SET cache = off")
        assert "buffer pool: off" in out
        assert not shell.db.cache_enabled
        _alive, out = run(shell, "SET cache = 6")
        assert "6 pages" in out
        _alive, out = run(shell, ".cache bogus")
        assert "not a cache size" in out
        _alive, out = run(shell, ".cache on")  # back to the profile default
        assert "buffer pool:" in out and "off" not in out
        assert shell.db.cache_enabled

    def test_cache_hit_rate_reported_after_queries(self, shell):
        run(shell, ".reset")
        run(shell, "SELECT Quantity FROM Prescription WHERE Quantity = 7")
        _alive, out = run(shell, ".cache")
        assert "lookups" in out and "hits" in out

    def test_error_keeps_shell_alive(self, shell):
        alive, out = run(shell, "SELECT nothing FROM nowhere")
        assert alive
        assert "error:" in out

    def test_explain_analyze_alias(self, shell):
        _alive, out = run(shell, f".explain analyze {demo_query()}")
        assert "est ~" in out and "actual" in out
        assert "rows)" in out

    def test_unknown_command(self, shell):
        _alive, out = run(shell, ".bogus")
        assert "unknown command" in out

    def test_reset(self, shell):
        _alive, out = run(shell, ".reset")
        assert "cleared" in out
        assert shell.db.device.clock.now == 0.0

    def test_quit(self, shell):
        alive, _out = run(shell, ".quit")
        assert not alive


class TestMetricsOut:
    def test_metrics_out_writes_exposition(self, tmp_path):
        out = io.StringIO()
        path = tmp_path / "nested" / "metrics.prom"
        sh = Shell(scale=300, out=out, metrics_out=str(path))
        sh.handle("SELECT Country FROM Doctor LIMIT 1")
        sh.close()
        text = path.read_text()
        assert "# TYPE ghostdb_queries_total counter" in text
        assert "ghostdb_queries_total 1" in text
        assert "wrote metrics exposition" in out.getvalue()

    def test_metrics_out_unwritable_errors_cleanly(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        out = io.StringIO()
        sh = Shell(
            scale=300, out=out,
            metrics_out=str(blocker / "sub" / "metrics.prom"),
        )
        sh.close()  # must not raise
        assert "error: could not write metrics" in out.getvalue()


class TestExplainAnalyze:
    def test_session_api(self, demo_session):
        demo_session.reset_measurements()
        report, result = demo_session.explain_analyze(demo_query())
        assert result.rows is not None
        assert "actual" in report
        # Every line carries both an estimate and a measurement.
        for line in report.splitlines():
            assert "est ~" in line and "actual" in line

    def test_measured_tuples_match_operator_output(self, demo_session):
        demo_session.reset_measurements()
        report, result = demo_session.explain_analyze(
            "SELECT Quantity FROM Prescription WHERE Quantity = 5"
        )
        top = report.splitlines()[0]
        assert f"actual {result.row_count} out" in top
