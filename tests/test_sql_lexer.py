"""Tokenizer: literals, dates, comments, errors."""

import datetime

import pytest

from repro.sql.errors import ParseError
from repro.sql.lexer import DATE, EOF, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


def test_empty_input_yields_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind == EOF


def test_identifiers_and_symbols():
    assert values("SELECT a.b, c") == ["SELECT", "a", ".", "b", ",", "c"]


def test_numbers_int_and_float():
    tokens = tokenize("42 3.5")
    assert tokens[0].value == 42 and isinstance(tokens[0].value, int)
    assert tokens[1].value == 3.5 and isinstance(tokens[1].value, float)


def test_single_and_double_quoted_strings():
    assert values("'abc' \"def\"") == ["abc", "def"]


def test_doubled_quote_escape():
    assert values("'it''s'") == ["it's"]


def test_unterminated_string():
    with pytest.raises(ParseError, match="unterminated"):
        tokenize("'oops")


def test_bare_iso_date():
    tokens = tokenize("2006-11-05")
    assert tokens[0].kind == DATE
    assert tokens[0].value == datetime.date(2006, 11, 5)


def test_bare_european_date():
    """The paper writes Vis.Date > 05-11-2006 (DD-MM-YYYY)."""
    tokens = tokenize("05-11-2006")
    assert tokens[0].kind == DATE
    assert tokens[0].value == datetime.date(2006, 11, 5)


def test_invalid_date_rejected():
    with pytest.raises(ParseError, match="invalid date"):
        tokenize("99-99-2006")


def test_comparison_operators():
    assert values("a <= b >= c <> d != e < f > g = h") == [
        "a", "<=", "b", ">=", "c", "<>", "d", "!=", "e", "<", "f",
        ">", "g", "=", "h",
    ]


def test_line_comments_skipped():
    assert values("a -- comment here\nb") == ["a", "b"]


def test_block_comments_skipped():
    """The paper's own query contains /*VISIBLE*/ annotations."""
    assert values("a /*VISIBLE*/ b") == ["a", "b"]


def test_positions_recorded():
    tokens = tokenize("ab cd")
    assert tokens[0].position == 0
    assert tokens[1].position == 3


def test_unexpected_character():
    with pytest.raises(ParseError, match="unexpected character"):
        tokenize("a @ b")


def test_upper_helper():
    token = tokenize("select")[0]
    assert token.upper == "SELECT"


def test_paper_query_tokenizes():
    text = """SELECT Med.Name, Pre.Quantity, Vis.Date
    FROM Medicine Med, Prescription Pre, Visit Vis
    WHERE Vis.Date > 05-11-2006 /*VISIBLE*/
    AND Vis.Purpose = "Sclerosis" /*HIDDEN*/
    AND Med.MedID = Pre.MedID;"""
    tokens = tokenize(text)
    assert tokens[-1].kind == EOF
    assert any(t.kind == DATE for t in tokens)
    assert any(t.value == "Sclerosis" for t in tokens)


class TestRobustness:
    """The front end must fail with ParseError, never crash, on
    arbitrary input."""

    @staticmethod
    def _try(text):
        from repro.sql.parser import parse_statement

        try:
            parse_statement(text)
        except ParseError:
            pass  # the acceptable failure mode

    def test_fuzz_with_random_token_soup(self):
        import random

        from repro.sql.parser import parse_statement  # noqa: F401

        rng = random.Random(42)
        vocabulary = [
            "SELECT", "FROM", "WHERE", "AND", "GROUP", "BY", "ORDER",
            "LIMIT", "HAVING", "IN", "BETWEEN", "count", "(", ")", ",",
            ".", "=", "<", ">", "<>", "*", ";", "'txt'", "42", "1.5",
            "2006-11-05", "tbl", "col", "DATE",
        ]
        for _ in range(500):
            soup = " ".join(
                rng.choice(vocabulary)
                for _ in range(rng.randint(1, 25))
            )
            self._try(soup)

    def test_fuzz_with_mutated_real_query(self):
        import random

        base = (
            "SELECT Med.Name, count(*) FROM Medicine Med, Prescription "
            "Pre WHERE Med.Type IN ('a','b') AND Med.MedID = Pre.MedID "
            "GROUP BY Med.Name HAVING count(*) > 2 ORDER BY Med.Name "
            "LIMIT 5"
        )
        rng = random.Random(7)
        for _ in range(300):
            chars = list(base)
            for _ in range(rng.randint(1, 6)):
                position = rng.randrange(len(chars))
                action = rng.random()
                if action < 0.4:
                    del chars[position]
                elif action < 0.8:
                    chars[position] = rng.choice("()'\",.<>=*;x9 ")
                else:
                    chars.insert(position, rng.choice("()'\" ,;"))
            self._try("".join(chars))
