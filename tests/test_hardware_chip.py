"""Secure-chip CPU cost model and device assembly."""

import pytest

from repro.hardware.chip import CYCLES, SecureChip
from repro.hardware.clock import SimClock
from repro.hardware.device import SmartUsbDevice
from repro.hardware.profiles import DEMO_DEVICE, TINY_DEVICE


def test_charge_advances_clock_by_cycles():
    chip = SecureChip(profile=DEMO_DEVICE, clock=SimClock())
    chip.charge("compare", 10)
    expected = CYCLES["compare"] * 10 / DEMO_DEVICE.cpu_hz
    assert chip.clock.now == pytest.approx(expected)
    assert chip.stats.total_cycles == CYCLES["compare"] * 10


def test_unknown_primitive_rejected():
    chip = SecureChip(profile=DEMO_DEVICE, clock=SimClock())
    with pytest.raises(ValueError, match="unknown CPU primitive"):
        chip.charge("teleport")


def test_negative_count_rejected():
    chip = SecureChip(profile=DEMO_DEVICE, clock=SimClock())
    with pytest.raises(ValueError):
        chip.charge("compare", -1)


def test_raw_cycles_tracked_separately():
    chip = SecureChip(profile=DEMO_DEVICE, clock=SimClock())
    chip.charge_cycles(500)
    assert chip.stats.cycles_by_op["raw"] == 500


def test_device_assembles_shared_clock():
    device = SmartUsbDevice(DEMO_DEVICE)
    page = device.ftl.allocate()
    device.ftl.write(page, b"x")
    device.chip.charge("compare")
    breakdown = device.clock.breakdown()
    assert breakdown.flash_write > 0
    assert breakdown.cpu > 0
    assert device.clock.now == pytest.approx(breakdown.total)


def test_device_ram_capacity_follows_profile():
    assert SmartUsbDevice(DEMO_DEVICE).ram.capacity == 64 * 1024
    assert SmartUsbDevice(TINY_DEVICE).ram.capacity == 16 * 1024


def test_reset_measurements_preserves_storage():
    device = SmartUsbDevice(DEMO_DEVICE)
    page = device.ftl.allocate()
    device.ftl.write(page, b"persistent")
    device.reset_measurements()
    assert device.clock.now == 0.0
    assert device.flash.stats.page_writes == 0
    # Storage survives the reset.
    assert device.ftl.read(page, 0, 10) == b"persistent"


def test_counters_snapshot_is_independent():
    device = SmartUsbDevice(DEMO_DEVICE)
    before = device.counters()
    page = device.ftl.allocate()
    device.ftl.write(page, b"y")
    after = device.counters()
    assert before.flash.page_writes == 0
    assert after.flash.page_writes == 1
    assert after.time.flash_write > before.time.flash_write
