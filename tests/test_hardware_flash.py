"""NAND flash model: asymmetric timing, no in-place writes, wear."""

import pytest

from repro.hardware.clock import SimClock
from repro.hardware.flash import (
    FlashError,
    NandFlash,
    PageProgrammedError,
    WearOutError,
)
from repro.hardware.profiles import DEMO_DEVICE, HARSH_FLASH_DEVICE


@pytest.fixture
def flash():
    return NandFlash(profile=DEMO_DEVICE, clock=SimClock())


def test_program_then_read_roundtrip(flash):
    flash.program(0, b"hello flash")
    assert flash.read(0, 0, 11) == b"hello flash"


def test_erased_page_reads_as_ff(flash):
    assert flash.read(5, 0, 4) == b"\xff\xff\xff\xff"


def test_short_page_is_ff_padded(flash):
    flash.program(0, b"ab")
    assert flash.read(0, 0, 4) == b"ab\xff\xff"


def test_no_in_place_writes(flash):
    flash.program(0, b"first")
    with pytest.raises(PageProgrammedError, match="no in-place writes"):
        flash.program(0, b"second")


def test_erase_enables_reprogramming(flash):
    flash.program(0, b"first")
    flash.erase_block(0)
    flash.program(0, b"second")
    assert flash.read(0, 0, 6) == b"second"


def test_partial_read_is_cheaper_than_full(flash):
    small = DEMO_DEVICE.page_size // 8
    flash.program(0, b"x" * DEMO_DEVICE.page_size)
    t0 = flash.clock.now
    flash.read(0, 0, small)
    partial_cost = flash.clock.now - t0
    t1 = flash.clock.now
    flash.read(0)
    full_cost = flash.clock.now - t1
    assert partial_cost == pytest.approx(DEMO_DEVICE.flash_read_partial_s)
    assert full_cost == pytest.approx(DEMO_DEVICE.flash_read_full_s)
    assert full_cost > partial_cost


def test_write_costs_the_paper_asymmetry(flash):
    """Writes are 3-10x slower than full-page reads."""
    ratio = DEMO_DEVICE.write_read_ratio
    assert 3.0 <= ratio <= 10.0
    harsh = HARSH_FLASH_DEVICE.write_read_ratio
    assert harsh == pytest.approx(10.0)


def test_operation_counters(flash):
    flash.program(0, b"a")
    flash.read(0, 0, 1)
    flash.read(0)
    flash.erase_block(0)
    assert flash.stats.page_writes == 1
    assert flash.stats.page_reads_partial == 1
    assert flash.stats.page_reads_full == 1
    assert flash.stats.page_reads == 2
    assert flash.stats.block_erases == 1


def test_page_bounds_checked(flash):
    with pytest.raises(FlashError):
        flash.read(flash.num_pages)
    with pytest.raises(FlashError):
        flash.program(-1, b"")
    with pytest.raises(FlashError):
        flash.read(0, DEMO_DEVICE.page_size - 2, 4)


def test_oversized_page_data_rejected(flash):
    with pytest.raises(FlashError, match="exceeds page size"):
        flash.program(0, b"x" * (DEMO_DEVICE.page_size + 1))


def test_erase_is_block_granular(flash):
    pages = DEMO_DEVICE.pages_per_block
    flash.program(0, b"a")
    flash.program(pages - 1, b"b")
    flash.program(pages, b"c")  # next block
    flash.erase_block(0)
    assert not flash.is_programmed(0)
    assert not flash.is_programmed(pages - 1)
    assert flash.is_programmed(pages)


def test_wear_out_enforced_when_configured():
    profile = DEMO_DEVICE.with_overrides(max_erase_cycles=3)
    flash = NandFlash(profile=profile, clock=SimClock())
    for _ in range(3):
        flash.erase_block(0)
    with pytest.raises(WearOutError):
        flash.erase_block(0)
    # Other blocks unaffected.
    flash.erase_block(1)


def test_max_wear_metric(flash):
    flash.erase_block(3)
    flash.erase_block(3)
    flash.erase_block(7)
    assert flash.max_wear == 2
    assert flash.erase_count(3) == 2
    assert flash.erase_count(0) == 0


def test_charge_partial_reads_models_metadata_io(flash):
    t0 = flash.clock.now
    flash.charge_partial_reads(4)
    assert flash.stats.page_reads_partial == 4
    assert flash.clock.now - t0 == pytest.approx(
        4 * DEMO_DEVICE.flash_read_partial_s
    )
    with pytest.raises(FlashError):
        flash.charge_partial_reads(-1)
