"""The three-phase demo scenario and the plan game."""

import pytest

from repro.demo import DemoScenario, figure5_postfilter_plan, prefilter_plan
from repro.engine import plan as lp
from repro.reference import evaluate_reference, same_rows


@pytest.fixture(scope="module")
def scenario():
    return DemoScenario(n_prescriptions=2_000)


class TestPhaseOne:
    def test_leak_check_clean(self, scenario):
        phase = scenario.phase_security()
        assert phase.leak_report.ok, phase.leak_report.summary()

    def test_spy_sees_traffic(self, scenario):
        phase = scenario.phase_security()
        assert phase.spy.total_bytes > 0
        assert phase.spy.requests()

    def test_result_is_correct(self, scenario):
        phase = scenario.phase_security()
        expected = evaluate_reference(
            scenario.db.tree, scenario.data,
            scenario.db.bind(scenario.sql),
        )
        assert same_rows(phase.result.rows, expected)


class TestPhaseTwo:
    def test_p1_and_p2_agree_on_results(self, scenario):
        phase = scenario.phase_engine()
        runs = list(phase.runs.values())
        assert len(runs) == 2
        assert same_rows(runs[0].rows, runs[1].rows)

    def test_p2_uses_less_ram(self, scenario):
        """Figure 5's point: Bloom post-filtering trades time for RAM."""
        phase = scenario.phase_engine()
        p1 = phase.runs["P1 (pre-filtering)"]
        p2 = phase.runs["P2 (post-filtering, Fig. 5)"]
        assert p2.metrics.ram_high_water < p1.metrics.ram_high_water

    def test_comparison_text(self, scenario):
        text = scenario.phase_engine().comparison()
        assert "P1" in text and "P2" in text and "ms" in text


class TestNamedPlans:
    def test_figure5_shape(self, scenario):
        bound = scenario.db.bind(scenario.sql)
        plan = figure5_postfilter_plan(scenario.db.hidden, bound)
        # Project <- Bloom <- Bloom <- Store <- SktAccess <- ClimbingSelect
        kinds = [type(n).__name__ for n in plan.walk()]
        assert kinds.count("BloomProbe") == 2
        assert "Store" in kinds
        assert "SktAccess" in kinds
        # The Store sits below every Bloom filter, as drawn.
        store = next(n for n in plan.walk() if isinstance(n, lp.Store))
        assert isinstance(store.child, lp.SktAccess)

    def test_prefilter_has_no_store_or_bloom(self, scenario):
        bound = scenario.db.bind(scenario.sql)
        plan = prefilter_plan(scenario.db.hidden, bound)
        kinds = {type(n).__name__ for n in plan.walk()}
        assert "Store" not in kinds and "BloomProbe" not in kinds

    def test_figure5_plan_is_correct(self, scenario):
        bound = scenario.db.bind(scenario.sql)
        plan = figure5_postfilter_plan(scenario.db.hidden, bound)
        scenario.db.optimizer.annotate(plan)
        result = scenario.db.execute_plan(plan)
        expected = evaluate_reference(
            scenario.db.tree, scenario.data, bound
        )
        assert same_rows(result.rows, expected)


class TestPhaseThree:
    def test_game_measures_all_candidates(self, scenario):
        game = scenario.phase_game()
        assert len(game.candidates()) == 4
        outcome = game.play(guess_index=0)
        assert len(outcome.measured_ms) == 4
        assert all(ms > 0 for ms in outcome.measured_ms)
        assert 0 <= outcome.winner_index < 4

    def test_leaderboard_marks_guess_and_optimizer(self, scenario):
        outcome = scenario.phase_game().play(guess_index=1)
        board = outcome.leaderboard()
        assert "your guess" in board
        assert "optimizer" in board

    def test_bad_guess_rejected(self, scenario):
        with pytest.raises(IndexError):
            scenario.phase_game().play(guess_index=99)

    def test_winner_is_measured_minimum(self, scenario):
        outcome = scenario.phase_game().play()
        assert outcome.measured_ms[outcome.winner_index] == min(
            outcome.measured_ms
        )
