"""Integration battery: every query family, every strategy, checked
against the brute-force reference evaluator.

This is the repository's main correctness net: if an operator, index or
plan rule is wrong, some combination here disagrees with ground truth.
"""

import pytest

from repro.optimizer.space import enumerate_strategies
from repro.reference import evaluate_reference, same_rows
from repro.workload.queries import QUERY_FAMILIES

#: The battery lives in :mod:`repro.workload.queries` so the bench
#: scorecard can grade the same families without importing test code.
QUERIES = QUERY_FAMILIES


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_optimized_plan_matches_reference(demo_session, demo_data, name):
    sql = QUERIES[name]
    bound = demo_session.bind(sql)
    expected = evaluate_reference(demo_session.tree, demo_data, bound)
    demo_session.reset_measurements()
    result = demo_session.query(sql)
    assert same_rows(result.rows, expected), (
        f"{name}: got {len(result.rows)} rows, expected {len(expected)}"
    )


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_every_strategy_matches_reference(demo_session, demo_data, name):
    """Pre, Post and everything between must agree on semantics."""
    sql = QUERIES[name]
    bound = demo_session.bind(sql)
    expected = evaluate_reference(demo_session.tree, demo_data, bound)
    for strategy in enumerate_strategies(bound):
        demo_session.reset_measurements()
        result = demo_session.query_with_strategy(sql, strategy)
        assert same_rows(result.rows, expected), (
            f"{name} [{strategy.label(bound)}]: "
            f"{len(result.rows)} vs {len(expected)} rows"
        )


def test_results_identical_across_devices(demo_data):
    """Hardware profile changes timing, never answers."""
    from repro.core.ghostdb import GhostDB
    from repro.hardware.profiles import HARSH_FLASH_DEVICE, HIGH_SPEED_DEVICE
    from repro.workload.queries import DEMO_SCHEMA_DDL

    results = []
    for profile in (HARSH_FLASH_DEVICE, HIGH_SPEED_DEVICE):
        db = GhostDB(profile=profile)
        for ddl in DEMO_SCHEMA_DDL:
            db.execute(ddl)
        db.load(demo_data)
        results.append(sorted(db.query(QUERIES["paper-demo"]).rows))
    assert results[0] == results[1]


def test_repeated_execution_is_stable(demo_session):
    """Same query, same state, same simulated cost every time."""
    sql = QUERIES["paper-demo"]
    demo_session.reset_measurements()
    first = demo_session.query(sql)
    demo_session.reset_measurements()
    second = demo_session.query(sql)
    assert sorted(first.rows) == sorted(second.rows)
    assert first.metrics.elapsed_seconds == pytest.approx(
        second.metrics.elapsed_seconds, rel=1e-9
    )
    assert first.metrics.flash_page_reads == second.metrics.flash_page_reads
