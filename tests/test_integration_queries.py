"""Integration battery: every query family, every strategy, checked
against the brute-force reference evaluator.

This is the repository's main correctness net: if an operator, index or
plan rule is wrong, some combination here disagrees with ground truth.
"""

import datetime

import pytest

from repro.optimizer.space import enumerate_strategies
from repro.reference import evaluate_reference, same_rows

QUERIES = {
    "paper-demo": """
        SELECT Med.Name, Pre.Quantity, Vis.Date
        FROM Medicine Med, Prescription Pre, Visit Vis
        WHERE Vis.Date > 05-11-2006
        AND Vis.Purpose = 'Sclerosis'
        AND Med.Type = 'Antibiotic'
        AND Med.MedID = Pre.MedID
        AND Vis.VisID = Pre.VisID
    """,
    "hidden-only": """
        SELECT Pre.Quantity FROM Prescription Pre, Visit Vis
        WHERE Vis.Purpose = 'Neuropathy' AND Vis.VisID = Pre.VisID
    """,
    "visible-only": """
        SELECT Med.Name, Pre.Frequency
        FROM Medicine Med, Prescription Pre
        WHERE Med.Type = 'Statin' AND Med.MedID = Pre.MedID
    """,
    "no-predicates": """
        SELECT Med.Type, Pre.Quantity
        FROM Medicine Med, Prescription Pre
        WHERE Med.MedID = Pre.MedID
    """,
    "hidden-range": """
        SELECT Pre.Quantity, Pre.WhenWritten
        FROM Prescription Pre
        WHERE Pre.Quantity BETWEEN 3 AND 5
    """,
    "hidden-date-range": """
        SELECT Pre.Quantity FROM Prescription Pre
        WHERE Pre.WhenWritten > DATE '2007-01-01'
    """,
    "deep-hidden": """
        SELECT Pre.Quantity, Pat.Name
        FROM Prescription Pre, Visit Vis, Patient Pat
        WHERE Pat.BodyMassIndex > 33.0
        AND Pre.VisID = Vis.VisID
        AND Vis.PatID = Pat.PatID
    """,
    "subtree-root-visit": """
        SELECT Vis.Date, Pat.Age
        FROM Visit Vis, Patient Pat
        WHERE Vis.Purpose = 'Sclerosis'
        AND Pat.Age > 40
        AND Vis.PatID = Pat.PatID
    """,
    "five-way-join": """
        SELECT Med.Name, Doc.Country, Pat.Age, Vis.Date, Pre.Quantity
        FROM Medicine Med, Prescription Pre, Visit Vis, Doctor Doc,
             Patient Pat
        WHERE Vis.Purpose = 'Sclerosis'
        AND Doc.Country = 'France'
        AND Med.MedID = Pre.MedID
        AND Vis.VisID = Pre.VisID
        AND Doc.DocID = Vis.DocID
        AND Pat.PatID = Vis.PatID
    """,
    "mixed-on-one-table": """
        SELECT Vis.Date FROM Visit Vis
        WHERE Vis.Purpose = 'Routine checkup'
        AND Vis.Date > DATE '2006-06-01'
    """,
    "neq-residual": """
        SELECT Pre.Quantity FROM Prescription Pre, Visit Vis
        WHERE Vis.Purpose = 'Sclerosis'
        AND Pre.Quantity <> 5
        AND Vis.VisID = Pre.VisID
    """,
    "projection-of-pks": """
        SELECT Pre.PreID, Vis.VisID FROM Prescription Pre, Visit Vis
        WHERE Vis.Purpose = 'Sclerosis' AND Vis.VisID = Pre.VisID
    """,
    "empty-result": """
        SELECT Pre.Quantity FROM Prescription Pre, Visit Vis
        WHERE Vis.Purpose = 'Sclerosis'
        AND Vis.Date > DATE '2009-01-01'
        AND Vis.VisID = Pre.VisID
    """,
}


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_optimized_plan_matches_reference(demo_session, demo_data, name):
    sql = QUERIES[name]
    bound = demo_session.bind(sql)
    expected = evaluate_reference(demo_session.tree, demo_data, bound)
    demo_session.reset_measurements()
    result = demo_session.query(sql)
    assert same_rows(result.rows, expected), (
        f"{name}: got {len(result.rows)} rows, expected {len(expected)}"
    )


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_every_strategy_matches_reference(demo_session, demo_data, name):
    """Pre, Post and everything between must agree on semantics."""
    sql = QUERIES[name]
    bound = demo_session.bind(sql)
    expected = evaluate_reference(demo_session.tree, demo_data, bound)
    for strategy in enumerate_strategies(bound):
        demo_session.reset_measurements()
        result = demo_session.query_with_strategy(sql, strategy)
        assert same_rows(result.rows, expected), (
            f"{name} [{strategy.label(bound)}]: "
            f"{len(result.rows)} vs {len(expected)} rows"
        )


def test_results_identical_across_devices(demo_data):
    """Hardware profile changes timing, never answers."""
    from repro.core.ghostdb import GhostDB
    from repro.hardware.profiles import HARSH_FLASH_DEVICE, HIGH_SPEED_DEVICE
    from repro.workload.queries import DEMO_SCHEMA_DDL

    results = []
    for profile in (HARSH_FLASH_DEVICE, HIGH_SPEED_DEVICE):
        db = GhostDB(profile=profile)
        for ddl in DEMO_SCHEMA_DDL:
            db.execute(ddl)
        db.load(demo_data)
        results.append(sorted(db.query(QUERIES["paper-demo"]).rows))
    assert results[0] == results[1]


def test_repeated_execution_is_stable(demo_session):
    """Same query, same state, same simulated cost every time."""
    sql = QUERIES["paper-demo"]
    demo_session.reset_measurements()
    first = demo_session.query(sql)
    demo_session.reset_measurements()
    second = demo_session.query(sql)
    assert sorted(first.rows) == sorted(second.rows)
    assert first.metrics.elapsed_seconds == pytest.approx(
        second.metrics.elapsed_seconds, rel=1e-9
    )
    assert first.metrics.flash_page_reads == second.metrics.flash_page_reads
