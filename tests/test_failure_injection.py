"""Failure injection: corrupted links, worn flash, starved RAM.

The simulator's fault hooks exist so the engine's failure behaviour is a
tested property, not an accident.
"""

import pytest

from repro.engine.operators import ExecContext
from repro.faults import FaultProfile, UsbTransferError
from repro.hardware.ftl import DeviceReadOnlyError
from repro.hardware.profiles import DEMO_DEVICE
from repro.hardware.ram import RamExhaustedError
from repro.workload.queries import demo_query


class TestUsbCorruption:
    def test_relentless_corruption_raises_typed_error(self, fresh_session):
        fresh_session.reset_measurements()
        # Every frame mangled: the retry budget must run out cleanly.
        fresh_session.set_faults(
            FaultProfile(name="all-corrupt", usb_corrupt_rate=1.0), seed=3
        )
        try:
            with pytest.raises(UsbTransferError):
                fresh_session.link.fetch_values("visit", [1, 2], ["date"])
        finally:
            fresh_session.clear_faults()

    def test_corruption_of_binary_ids_recovered_by_framing(
        self, fresh_session, demo_data
    ):
        """Every message -- packed ID batches included -- crosses inside
        a CRC32 frame, so in-flight corruption is detected and
        retransmitted and the query's answer is unchanged."""
        fresh_session.reset_measurements()
        reference = fresh_session.query(demo_query())
        fresh_session.reset_measurements()
        fresh_session.set_faults(
            FaultProfile(name="some-corrupt", usb_corrupt_rate=0.1), seed=7
        )
        try:
            result = fresh_session.query(demo_query())
        finally:
            fresh_session.clear_faults()
        assert result.rows == reference.rows
        assert fresh_session.fault_injector is None


class TestFlashWearOut:
    def test_wear_out_surfaces_during_heavy_churn(self):
        profile = DEMO_DEVICE.with_overrides(
            num_blocks=8, max_erase_cycles=4
        )
        from repro.hardware.device import SmartUsbDevice

        device = SmartUsbDevice(profile)
        page = device.ftl.allocate()
        # Worn-out blocks become grown bad blocks and are retired; once
        # too few healthy blocks remain, the device latches read-only
        # instead of letting WearOutError escape mid-GC.
        with pytest.raises(DeviceReadOnlyError):
            for i in range(20_000):
                device.ftl.write(page, b"churn")
        assert device.flash.bad_block_count > 0
        assert device.ftl.read_only

    def test_wear_spread_by_victim_selection(self):
        """Wear-aware victim selection keeps erase counts close."""
        profile = DEMO_DEVICE.with_overrides(num_blocks=8)
        from repro.hardware.device import SmartUsbDevice

        device = SmartUsbDevice(profile)
        page = device.ftl.allocate()
        for i in range(3_000):
            device.ftl.write(page, b"churn")
        counts = [
            device.flash.erase_count(b) for b in range(profile.num_blocks)
        ]
        active = [c for c in counts if c > 0]
        assert len(active) >= profile.num_blocks // 2
        assert max(active) <= min(active) + max(3, max(active) // 2)


class TestRamStarvation:
    def test_operator_failure_releases_all_ram(self, fresh_session):
        """A plan killed mid-flight must not leak budget."""
        session = fresh_session
        session.reset_measurements()
        hog_size = session.device.ram.available - 3 * 2048
        hog = session.device.ram.allocate(hog_size, "hog")
        try:
            with pytest.raises(RamExhaustedError):
                session.query(demo_query())
        finally:
            hog.release()
        assert session.device.ram.used == 0

    def test_fan_in_adapts_to_pressure(self, fresh_session):
        session = fresh_session
        ctx = ExecContext(
            device=session.device, link=session.link, db=session.hidden
        )
        free_fan = ctx.fan_in()
        hog = session.device.ram.allocate(
            session.device.ram.available - 5 * 2048, "hog"
        )
        try:
            assert ctx.fan_in() < free_fan
            assert ctx.fan_in() >= 2
        finally:
            hog.release()


class TestRecoveryAfterFailure:
    def test_session_still_usable_after_failed_query(self, fresh_session):
        session = fresh_session
        session.reset_measurements()
        hog = session.device.ram.allocate(
            session.device.ram.available - 2048, "hog"
        )
        with pytest.raises(RamExhaustedError):
            session.query(demo_query())
        hog.release()
        session.reset_measurements()
        result = session.query(demo_query())
        assert result.rows is not None
