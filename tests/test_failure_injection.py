"""Failure injection: corrupted links, worn flash, starved RAM.

The simulator's fault hooks exist so the engine's failure behaviour is a
tested property, not an accident.
"""

import pytest

from repro.core.ghostdb import GhostDB
from repro.engine.operators import ExecContext
from repro.hardware.flash import WearOutError
from repro.hardware.profiles import DEMO_DEVICE
from repro.hardware.ram import RamExhaustedError
from repro.visible.link import ProtocolError
from repro.workload.queries import DEMO_SCHEMA_DDL, demo_query


class TestUsbCorruption:
    def test_corrupted_values_reply_raises_protocol_error(self, fresh_session):
        fresh_session.reset_measurements()
        # Corrupt frequently enough to hit a JSON values reply.
        fresh_session.device.usb.corrupt_every = 5
        with pytest.raises(ProtocolError):
            for _ in range(20):
                fresh_session.link.fetch_values("visit", [1, 2], ["date"])

    def test_corruption_of_binary_ids_changes_results_detectably(
        self, fresh_session, demo_data
    ):
        """Packed ID batches carry no checksum (the real protocol's CRC
        lives below our model), so corruption surfaces as wrong IDs --
        which the projection-level recheck then drops or resolves to
        different rows, never to a crash."""
        fresh_session.reset_measurements()
        fresh_session.device.usb.corrupt_every = 7
        result = fresh_session.query(demo_query())
        assert isinstance(result.rows, list)


class TestFlashWearOut:
    def test_wear_out_surfaces_during_heavy_churn(self):
        profile = DEMO_DEVICE.with_overrides(
            num_blocks=8, max_erase_cycles=4
        )
        from repro.hardware.device import SmartUsbDevice

        device = SmartUsbDevice(profile)
        page = device.ftl.allocate()
        with pytest.raises(WearOutError):
            for i in range(20_000):
                device.ftl.write(page, b"churn")

    def test_wear_spread_by_round_robin(self):
        """The FTL's free-list rotation keeps erase counts close."""
        profile = DEMO_DEVICE.with_overrides(num_blocks=8)
        from repro.hardware.device import SmartUsbDevice

        device = SmartUsbDevice(profile)
        page = device.ftl.allocate()
        for i in range(3_000):
            device.ftl.write(page, b"churn")
        counts = [
            device.flash.erase_count(b) for b in range(profile.num_blocks)
        ]
        active = [c for c in counts if c > 0]
        assert len(active) >= profile.num_blocks // 2
        assert max(active) <= min(active) + max(3, max(active) // 2)


class TestRamStarvation:
    def test_operator_failure_releases_all_ram(self, fresh_session):
        """A plan killed mid-flight must not leak budget."""
        session = fresh_session
        session.reset_measurements()
        hog_size = session.device.ram.available - 3 * 2048
        hog = session.device.ram.allocate(hog_size, "hog")
        try:
            with pytest.raises(RamExhaustedError):
                session.query(demo_query())
        finally:
            hog.release()
        assert session.device.ram.used == 0

    def test_fan_in_adapts_to_pressure(self, fresh_session):
        session = fresh_session
        ctx = ExecContext(
            device=session.device, link=session.link, db=session.hidden
        )
        free_fan = ctx.fan_in()
        hog = session.device.ram.allocate(
            session.device.ram.available - 5 * 2048, "hog"
        )
        try:
            assert ctx.fan_in() < free_fan
            assert ctx.fan_in() >= 2
        finally:
            hog.release()


class TestRecoveryAfterFailure:
    def test_session_still_usable_after_failed_query(self, fresh_session):
        session = fresh_session
        session.reset_measurements()
        hog = session.device.ram.allocate(
            session.device.ram.available - 2048, "hog"
        )
        with pytest.raises(RamExhaustedError):
            session.query(demo_query())
        hog.release()
        session.reset_measurements()
        result = session.query(demo_query())
        assert result.rows is not None
