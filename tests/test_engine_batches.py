"""Batch-oriented execution protocol: equivalence, lifecycle, marks.

The hard invariant of the vectorized refactor: the batch window is a
host-side execution detail, so result rows, the simulated clock and
every hardware counter must be identical at any window size -- only the
host-side overhead (attribution marks, wall time) may change.  The
per-tuple run (``exec_batch=1``) is the reference semantics the old
Volcano pipeline implemented.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ghostdb import GhostDB, SessionConfig
from repro.engine import plan as lp
from repro.engine.executor import ExecConfig
from repro.engine.operators import ExecContext, MergeIntersectOp, Operator
from repro.engine.operators.base import TimeAttribution
from repro.hardware.device import SmartUsbDevice
from repro.optimizer.space import Strategy
from repro.workload.queries import (
    DEMO_SCHEMA_DDL,
    demo_query,
    query_purpose_only,
)

from tests.test_property_random import RandomSchema

BATCH_SIZES = (1, 2, 7, 256)


def session_with_batch(batch: int) -> GhostDB:
    return GhostDB(
        config=SessionConfig(exec_config=ExecConfig(exec_batch=batch))
    )


def hardware_counters(metrics) -> tuple:
    """Every integer counter the simulated device exposes per query."""
    return (
        metrics.flash_page_reads,
        metrics.flash_page_writes,
        metrics.flash_block_erases,
        metrics.usb_messages,
        metrics.usb_bytes_to_device,
        metrics.usb_bytes_to_host,
        metrics.ram_high_water,
    )


# ---------------------------------------------------------------------------
# Property: any batch size is bit-identical to the per-tuple reference.
# ---------------------------------------------------------------------------


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=1, max_value=500))
def test_batch_sizes_equivalent_on_random_queries(seed):
    schema = RandomSchema(seed)
    ddl = schema.ddl()
    data = schema.data()
    query_rng = random.Random(seed * 1000)
    queries = [schema.random_query(query_rng) for _ in range(2)]

    runs: dict[int, list] = {}
    for batch in BATCH_SIZES:
        db = session_with_batch(batch)
        for statement in ddl:
            db.execute(statement)
        db.load(data)
        outcomes = []
        for sql in queries:
            db.reset_measurements()
            result = db.query(sql)
            outcomes.append((result.rows, result.metrics))
        runs[batch] = outcomes

    reference = runs[1]  # per-tuple pulls: the old pipeline's semantics
    for batch in BATCH_SIZES[1:]:
        for q, ((ref_rows, ref_m), (rows, m)) in enumerate(
            zip(reference, runs[batch])
        ):
            label = f"seed={seed} batch={batch} query#{q}"
            assert rows == ref_rows, label
            assert hardware_counters(m) == hardware_counters(ref_m), label
            # Simulated seconds are float *sums* of identical charges;
            # summation order may differ across window sizes, so allow
            # ulp-scale drift but nothing more.
            assert math.isclose(
                m.elapsed_seconds,
                ref_m.elapsed_seconds,
                rel_tol=1e-9,
                abs_tol=1e-12,
            ), label


# ---------------------------------------------------------------------------
# Attribution overhead: batching must cut marks by >= 10x on the demo.
# ---------------------------------------------------------------------------


#: A demo workload mixing the paper's Section 4 query, a hidden-only
#: selection and a full projection scan (the mark-heavy shape).
MARK_WORKLOAD = (
    demo_query(),
    query_purpose_only(),
    "SELECT Pre.Quantity, Pre.Frequency FROM Prescription Pre",
)


def _marks_for(demo_data, batch: int, monkeypatch) -> int:
    created: list[TimeAttribution] = []
    orig_init = TimeAttribution.__init__

    def recording_init(self, device):
        orig_init(self, device)
        created.append(self)

    db = session_with_batch(batch)
    for statement in DEMO_SCHEMA_DDL:
        db.execute(statement)
    db.load(demo_data)
    with monkeypatch.context() as patch:
        patch.setattr(TimeAttribution, "__init__", recording_init)
        for sql in MARK_WORKLOAD:
            db.query(sql)
    return sum(attribution.marks for attribution in created)


def test_batching_cuts_attribution_marks_10x(demo_data, monkeypatch):
    per_tuple = _marks_for(demo_data, 1, monkeypatch)
    batched = _marks_for(demo_data, 256, monkeypatch)
    assert batched * 10 <= per_tuple, (
        f"batched run marked {batched}x vs {per_tuple} per-tuple -- "
        f"expected at least a 10x reduction"
    )


# ---------------------------------------------------------------------------
# Regression: LIMIT over a multi-input merge stamps every pulled operator.
# ---------------------------------------------------------------------------


def test_limit_over_merge_stamps_all_pulled_operators(demo_session):
    db = demo_session
    db.reset_measurements()
    sql = demo_query() + " LIMIT 1"
    strategy = Strategy.all_pre(db.bind(sql))
    result = db.query_with_strategy(sql, strategy)
    assert len(result.rows) == 1
    assert any(
        isinstance(node, lp.MergeIntersect) for node in result.plan.walk()
    ), "all-PRE demo plan should intersect multiple ID streams"
    pulled = [
        op for op in result.metrics.operators if op.started_sim is not None
    ]
    assert pulled
    # The limit stopped early, so some subtree was short-circuited ...
    assert any(not op.finished for op in pulled)
    # ... and close() must still have stamped every pulled operator.
    for op in pulled:
        assert op.ended_sim is not None, op.name
        assert op.ended_wall is not None, op.name
        assert op.ended_sim >= op.started_sim, op.name


# ---------------------------------------------------------------------------
# Lifecycle: open/close semantics and reservation bookkeeping.
# ---------------------------------------------------------------------------


class ValueSource(Operator):
    """Test helper: emits fixed values, reserving 64 B when opened."""

    name = "value-source"

    def __init__(self, ctx, values):
        super().__init__(ctx)
        self.values = list(values)

    def _open(self):
        self.reserve(64)

    def _produce(self):
        yield from self.values


def bare_context(batch: int = 256) -> ExecContext:
    return ExecContext(
        device=SmartUsbDevice(), link=None, db=None, exec_batch=batch
    )


class TestLifecycle:
    def test_batches_respect_window_size(self):
        ctx = bare_context(batch=4)
        src = ValueSource(ctx, range(10))
        assert [len(b) for b in src.batches()] == [4, 4, 2]
        assert src.stats.batches_out == 3
        assert src.stats.tuples_out == 10
        assert src.stats.finished

    def test_batches_limit_bounds_demand_exactly(self):
        ctx = bare_context(batch=4)
        src = ValueSource(ctx, range(10))
        got = list(src.batches(limit=5))
        assert [len(b) for b in got] == [4, 1]
        assert [v for b in got for v in b] == [0, 1, 2, 3, 4]

    def test_batches_limit_zero_never_pulls(self):
        ctx = bare_context()
        src = ValueSource(ctx, range(5))
        assert list(src.batches(limit=0)) == []
        assert src.stats.started_sim is None

    def test_open_declares_and_close_releases_reservations(self):
        ctx = bare_context()
        op = MergeIntersectOp(
            ctx, [ValueSource(ctx, [1, 2, 3]), ValueSource(ctx, [2, 3])]
        )
        op.open()
        assert ctx.reserved_bytes == 128  # two sources x 64 B
        assert list(op.rows()) == [2, 3]
        assert ctx.reserved_bytes == 128  # still live until close
        op.close()
        assert ctx.reservations == {}
        op.close()  # idempotent
        assert ctx.reservations == {}

    def test_close_tears_down_live_producers(self):
        ctx = bare_context(batch=2)
        src = ValueSource(ctx, range(100))
        gen = src.batches()
        assert next(gen) == [0, 1]
        src.close()
        with pytest.raises(StopIteration):
            next(gen)
        assert src.stats.ended_sim is not None

    def test_never_pulled_operator_keeps_unpulled_marker(self):
        ctx = bare_context()
        src = ValueSource(ctx, [1])
        src.open()
        src.close()
        assert src.stats.started_sim is None
        assert src.stats.ended_sim is None
        assert ctx.reservations == {}
