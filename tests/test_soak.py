"""The sustained-DML soak harness: invariants, determinism, artifact.

The full-length endurance sweep (50 seeds) runs in CI's soak job; here
a short configuration proves the contract on a handful of seeds, raise
``GHOSTDB_SOAK_SEEDS`` to widen the sweep without touching the code.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.soak import SoakConfig, SoakError, run_soak
from repro.soak import main as soak_main

#: Short but real: every epoch still runs the full invariant audit.
SHORT = dict(epochs=2, ops_per_epoch=6, scale=60)

N_SEEDS = int(os.environ.get("GHOSTDB_SOAK_SEEDS", "5"))


class TestInvariants:
    def test_multi_seed_zero_violations(self):
        for seed in range(N_SEEDS):
            run = run_soak(SoakConfig(seed=seed, **SHORT))
            assert run.ok, (
                f"seed {seed} violated invariants: {run.violations}"
            )
            for record in run.report["epochs_run"]:
                assert all(
                    value in ("ok", "CLEAN")
                    for value in record["invariants"].values()
                ), record

    def test_clean_profile_runs(self):
        run = run_soak(
            SoakConfig(seed=1, fault_profile="none", **SHORT)
        )
        assert run.ok
        assert all(
            record["faults_injected"] == 0
            for record in run.report["epochs_run"]
        )

    def test_mixed_profile_actually_injects(self):
        run = run_soak(SoakConfig(seed=7, **SHORT))
        assert run.ok
        assert (
            sum(
                record["faults_injected"]
                for record in run.report["epochs_run"]
            )
            > 0
        ), "the mixed profile never fired -- the soak soaked nothing"


class TestDeterminism:
    def test_same_seed_is_bit_identical(self):
        a = run_soak(SoakConfig(seed=3, **SHORT))
        b = run_soak(SoakConfig(seed=3, **SHORT))
        assert a.payload == b.payload

    def test_different_seeds_differ(self):
        a = run_soak(SoakConfig(seed=3, **SHORT))
        b = run_soak(SoakConfig(seed=4, **SHORT))
        assert a.payload != b.payload

    def test_no_wall_clock_in_artifact(self):
        run = run_soak(
            SoakConfig(seed=6, epochs=1, ops_per_epoch=4, scale=60)
        )
        assert b"wall" not in run.payload


class TestArtifact:
    def test_cli_writes_clean_artifact(self, tmp_path, capsys):
        rc = soak_main(
            [
                "--seed", "5", "--epochs", "2", "--ops", "6",
                "--scale", "60", "--out-dir", str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "all invariants held" in out
        artifact = json.loads((tmp_path / "SOAK_5.json").read_text())
        assert artifact["kind"] == "ghostdb-soak"
        assert artifact["leak_check"] == "CLEAN"
        assert artifact["violations"] == []
        assert artifact["config"]["fault_profile"] == "mixed"
        assert len(artifact["epochs_run"]) == 2
        for record in artifact["epochs_run"]:
            assert record["invariants"]["leak"] == "CLEAN"
            assert record["invariants"]["ftl_map"] == "ok"

    def test_hours_target_extends_run(self):
        run = run_soak(
            SoakConfig(
                seed=2, epochs=1, ops_per_epoch=4, scale=60,
                sim_hours=0.00002,
            )
        )
        assert run.report["config"]["epochs"] > 1

    def test_unknown_profile_rejected(self):
        with pytest.raises(SoakError, match="unknown fault profile"):
            SoakConfig(fault_profile="zap")
