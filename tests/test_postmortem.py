"""Postmortem bundles, SLO quantiles, and the resource ledger.

The acceptance property of the subsystem: a power cut mid-query with
``dump_on_fault`` set writes a ``DUMP_<seed>.json`` bundle that (a) the
adversarial :class:`~repro.privacy.leakcheck.LeakChecker` scores CLEAN,
(b) contains the aborted query's complete resource ledger entry, and
(c) is reproduced bit-identically (modulo wall-clock stamps) by a
same-seed replay.  A 50-seed chaos fuzz hardens (a) across regimes,
including byte-split scans so a hidden value straddling a chunk
boundary could not hide.
"""

from __future__ import annotations

import json

import pytest

from repro.core.ghostdb import GhostDB, SessionConfig
from repro.faults import GhostDBFaultError, PowerCutError
from repro.obs.bundle import (
    SCHEMA_VERSION,
    build_bundle,
    bundle_payload,
    load_bundle,
    write_bundle,
)
from repro.obs.ledger import RESOURCE_FIELDS, ResourceLedger
from repro.obs.registry import MetricError, MetricsRegistry
from repro.privacy.leakcheck import LeakChecker
from repro.workload.queries import DEMO_SCHEMA_DDL, demo_query

from tests.conftest import build_demo_session
from tests.test_chaos import MAX_ATTEMPTS, chaos_profile


def build_session(data, **config_kwargs) -> GhostDB:
    db = GhostDB(config=SessionConfig(**config_kwargs))
    for ddl in DEMO_SCHEMA_DDL:
        db.execute(ddl)
    db.load(data)
    return db


class TestHistogramQuantile:
    def test_empty_is_zero(self):
        hist = MetricsRegistry().histogram("ghostdb_test_seconds")
        assert hist.quantile(0.5) == 0.0

    def test_out_of_range_raises(self):
        hist = MetricsRegistry().histogram("ghostdb_test_seconds")
        with pytest.raises(MetricError):
            hist.quantile(1.5)
        with pytest.raises(MetricError):
            hist.quantile(-0.1)

    def test_linear_interpolation_within_bucket(self):
        hist = MetricsRegistry().histogram(
            "ghostdb_test_seconds", buckets=(1.0, 2.0, 4.0)
        )
        for _ in range(10):
            hist.observe(1.5)  # all land in the (1, 2] bucket
        assert hist.quantile(0.0) == pytest.approx(1.0)
        assert hist.quantile(0.5) == pytest.approx(1.5)
        assert hist.quantile(1.0) == pytest.approx(2.0)

    def test_median_across_buckets(self):
        hist = MetricsRegistry().histogram(
            "ghostdb_test_seconds", buckets=(1.0, 2.0, 4.0)
        )
        for value in (0.5, 0.5, 3.0, 3.0):
            hist.observe(value)
        assert hist.quantile(0.5) == pytest.approx(1.0)
        assert hist.quantile(0.75) == pytest.approx(3.0)

    def test_overflow_clamps_to_highest_finite_bound(self):
        hist = MetricsRegistry().histogram(
            "ghostdb_test_seconds", buckets=(1.0, 2.0)
        )
        hist.observe(100.0)
        assert hist.quantile(0.99) == pytest.approx(2.0)

    def test_labelled_streams_are_independent(self):
        hist = MetricsRegistry().histogram(
            "ghostdb_test_seconds", buckets=(1.0, 2.0, 4.0)
        )
        hist.observe(0.5, op="scan")
        hist.observe(3.0, op="probe")
        assert hist.quantile(0.5, op="scan") <= 1.0
        assert hist.quantile(0.5, op="probe") > 2.0


class TestRegistryOrder:
    def test_iteration_and_exposition_are_sorted(self):
        registry = MetricsRegistry()
        registry.counter("ghostdb_zebra_total").inc()
        registry.gauge("ghostdb_alpha_bytes").set(1)
        registry.counter("ghostdb_mid_total").inc()
        names = [metric.name for metric in registry]
        assert names == sorted(names)
        exposed = registry.expose_text()
        assert exposed.index("ghostdb_alpha_bytes") < exposed.index(
            "ghostdb_mid_total"
        ) < exposed.index("ghostdb_zebra_total")


class TestResourceLedger:
    def test_window_bounds_entries_but_not_totals(self, demo_data):
        session = build_session(demo_data)
        session.obs.ledger = ResourceLedger(window=2)
        for _ in range(4):
            session.query(demo_query())
        ledger = session.obs.ledger
        assert ledger.total_queries == 4
        assert len(ledger.entries) == 2
        record = ledger.to_record()
        assert record["total_queries"] == 4
        assert record["dropped_entries"] == 2
        assert set(record["totals"]) == set(RESOURCE_FIELDS)

    def test_top_orders_by_key_and_rejects_unknown(self, fresh_session):
        fresh_session.query(demo_query())
        fresh_session.query(
            "SELECT Patient.Name FROM Patient WHERE Patient.Age > 50"
        )
        top = fresh_session.obs.ledger.top(2, key="sim_seconds")
        assert len(top) == 2
        assert top[0].sim_seconds >= top[1].sim_seconds
        with pytest.raises(KeyError):
            fresh_session.obs.ledger.top(2, key="hidden_values")


class TestBundle:
    def test_round_trip(self, fresh_session, tmp_path):
        fresh_session.query(demo_query())
        bundle = build_bundle(fresh_session, reason="dump")
        assert bundle["schema_version"] == SCHEMA_VERSION
        assert bundle["ledger"]["total_queries"] == 1
        assert bundle["flight"]["events"]
        assert "ghostdb_queries_total" in bundle["metrics"]
        path = write_bundle(
            bundle, directory=str(tmp_path),
            redactor=fresh_session.obs.redactor,
        )
        loaded = load_bundle(path)
        assert loaded["kind"] == "ghostdb-postmortem"
        assert loaded["ledger"]["total_queries"] == 1

    def test_load_refuses_foreign_json(self, tmp_path):
        path = tmp_path / "not_a_bundle.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError):
            load_bundle(str(path))
        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps(
            {"kind": "ghostdb-postmortem", "schema_version": -1}
        ))
        with pytest.raises(ValueError):
            load_bundle(str(stale))

    def test_dump_on_fault_writes_clean_bundle(self, demo_data, tmp_path):
        """The acceptance path: power cut mid-query -> typed abort ->
        bundle on disk with the aborted query's full ledger entry."""
        session = build_session(
            demo_data, dump_on_fault=True, dump_dir=str(tmp_path),
            fault_seed=11,
        )
        injector = session.set_faults("none", 11)
        injector.schedule_power_cut(at_flash_op=injector.flash_ops + 2)
        with pytest.raises(PowerCutError):
            session.query(demo_query())
        path = tmp_path / "DUMP_11.json"
        assert path.exists()
        checker = LeakChecker(session.schema, demo_data)
        report = checker.check_bytes(path.read_bytes(), kind="postmortem")
        assert report.ok, report.summary()
        bundle = load_bundle(str(path))
        assert bundle["reason"] == "PowerCutError"
        assert bundle["ledger"]["aborted_queries"] == 1
        (entry,) = [
            q for q in bundle["ledger"]["queries"] if q["aborted"]
        ]
        assert entry["aborted"] == "PowerCutError"
        for fieldname in RESOURCE_FIELDS:
            assert fieldname in entry
        kinds = [e["kind"] for e in bundle["flight"]["events"]]
        assert "query_begin" in kinds
        assert "fault" in kinds
        assert "query_abort" in kinds

    def test_same_seed_replay_reproduces_bundle(self, demo_data, tmp_path):
        def episode(tag: str) -> dict:
            session = build_session(
                demo_data, dump_on_fault=True,
                dump_dir=str(tmp_path / tag), fault_seed=11,
            )
            injector = session.set_faults("none", 11)
            injector.schedule_power_cut(at_flash_op=injector.flash_ops + 2)
            with pytest.raises(PowerCutError):
                session.query(demo_query())
            return load_bundle(str(tmp_path / tag / "DUMP_11.json"))

        first, second = episode("a"), episode("b")

        def strip_wall(bundle: dict):
            events = [
                {k: v for k, v in event.items() if k != "wall"}
                for event in bundle["flight"]["events"]
            ]
            ledger = [
                {k: v for k, v in q.items() if k != "wall_seconds"}
                for q in bundle["ledger"]["queries"]
            ]
            return events, ledger, bundle["device"]

        assert strip_wall(first) == strip_wall(second)


class TestChaosBundleFuzz:
    #: Split positions exercised by the boundary scan: a pattern
    #: straddling any of these must still be caught by the full-payload
    #: check that precedes the splits.
    SPLITS = 4

    def test_fifty_seed_dump_fuzz(self, demo_data, tmp_path):
        session = build_demo_session(demo_data)
        checker = LeakChecker(session.schema, demo_data)
        sql = demo_query()
        clean = 0
        for seed in range(50):
            session.set_faults(chaos_profile(seed), seed)
            try:
                for _ in range(MAX_ATTEMPTS):
                    try:
                        session.query(sql)
                        break
                    except GhostDBFaultError:
                        if session.needs_remount:
                            session.remount()
                # Dump while the injector is still attached so the
                # bundle carries the fault schedule (and the seed names
                # the file: one DUMP_<seed>.json per episode).
                path = session.dump_bundle(
                    reason="chaos", directory=str(tmp_path)
                )
            finally:
                session.clear_faults()
                if session.needs_remount:
                    session.remount()
            payload = open(path, "rb").read()
            report = checker.check_bytes(payload, kind="chaos-bundle")
            assert report.ok, f"seed {seed}: {report.summary()}"
            # Frame-boundary splits: re-scan the payload in chunks cut
            # at arbitrary offsets; every piece must also be CLEAN (no
            # hidden value hides by leaning on a neighbour's bytes).
            step = max(1, len(payload) // self.SPLITS)
            for start in range(0, len(payload), step):
                piece = checker.check_bytes(
                    payload[start : start + step], kind="chaos-chunk"
                )
                assert piece.ok, f"seed {seed} @ {start}: {piece.summary()}"
            clean += 1
        assert clean == 50
