"""Unit tests for the observability package (repro.obs)."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs import (
    MetricError,
    MetricsRegistry,
    Observability,
    Redactor,
    Tracer,
    chrome_trace_json,
    render_tree,
    to_chrome_trace,
)
from repro.obs.export import SIM_PID, WALL_PID
from repro.obs.log import ROOT, configure, get_logger
from repro.obs.redact import REDACTED


class FakeClock:
    """Stands in for SimClock: a settable ``now`` property."""

    def __init__(self):
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# Redactor
# ----------------------------------------------------------------------


class TestRedactor:
    def test_out_of_vocab_tokens_scrub(self):
        r = Redactor()
        assert r.scrub("query Dupont arrives") == f"query {REDACTED} {REDACTED}"

    def test_engine_vocabulary_survives(self):
        r = Redactor()
        assert r.scrub("climbing-select -> merge-intersect") == (
            "climbing-select -> merge-intersect"
        )

    def test_underscored_names_are_vetted_per_word(self):
        r = Redactor()
        assert r.scrub("flash_page_reads") == "flash_page_reads"
        assert r.scrub("flash_Dupont_reads") == f"flash_{REDACTED}_reads"

    def test_allow_extends_vocabulary(self):
        r = Redactor()
        assert r.scrub("Purpose") == REDACTED
        r.allow("Purpose")
        assert r.scrub("Purpose") == "Purpose"

    def test_scrub_counts_redactions(self):
        r = Redactor()
        before = r.redacted_tokens
        r.scrub("aaa bbb ccc")
        assert r.redacted_tokens == before + 3

    def test_value_passes_numbers_and_none(self):
        r = Redactor()
        assert r.value(None) is None
        assert r.value(True) is True
        assert r.value(42) == 42
        assert r.value(2.5) == 2.5

    def test_value_scrubs_strings_and_containers(self):
        r = Redactor()
        assert r.value("Dupont") == REDACTED
        assert r.value(["merge", "Dupont"]) == ["merge", REDACTED]
        assert r.value({"Dupont": "flash"}) == {REDACTED: "flash"}

    def test_value_reduces_arbitrary_objects(self):
        class Sneaky:
            def __str__(self):
                return "Dupont"

        assert Redactor().value(Sneaky()) == REDACTED

    def test_sql_constants_scrub_but_structure_survives(self):
        r = Redactor()
        r.allow("Visit", "Purpose")
        out = r.scrub("SELECT * FROM Visit WHERE Purpose = 'Sclerosis'")
        assert "Sclerosis" not in out
        assert "SELECT" in out and "Visit" in out and "'?'" in out


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------


class TestTracer:
    def test_nesting_and_both_timelines(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("query") as outer:
            clock.advance(0.5)
            with tracer.span("executor.execute") as inner:
                clock.advance(1.0)
        assert outer.children == [inner]
        assert inner.parent is outer
        assert outer.sim_seconds == pytest.approx(1.5)
        assert inner.sim_seconds == pytest.approx(1.0)
        assert outer.wall_seconds >= inner.wall_seconds >= 0

    def test_attributes_pass_through_redaction_gate(self):
        tracer = Tracer()
        with tracer.span("query") as span:
            span.set("rows", 3)
            span.set("sql", "WHERE name = 'Dupont'")
        assert span.attrs["rows"] == 3
        assert "Dupont" not in span.attrs["sql"]

    def test_span_names_pass_through_gate(self):
        tracer = Tracer()
        with tracer.span("Dupont"):
            pass
        assert tracer.roots[0].name == REDACTED

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("query"):
                raise ValueError("boom")
        span = tracer.roots[0]
        assert span.finished
        assert span.attrs["error"] == "ValueError"

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("query") as span:
            span.set("rows", 1)
        assert tracer.roots == []
        assert tracer.record("x", "y", 0, 1) is None

    def test_record_posthoc_nests_under_current(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("query") as outer:
            tracer.record(
                "op:project", "operator", start_sim=0.1, end_sim=0.4,
                attrs={"tuples_out": 7},
            )
        child = outer.children[0]
        assert child.name == "op:project"
        assert child.sim_seconds == pytest.approx(0.3)
        assert child.attrs["tuples_out"] == 7

    def test_clear_drops_finished_spans(self):
        tracer = Tracer()
        with tracer.span("query"):
            pass
        assert tracer.span_count() == 1
        tracer.clear()
        assert tracer.span_count() == 0


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------


class TestRegistry:
    def test_counter_accumulates_and_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("ghostdb_usb_bytes_total", "bytes")
        c.inc(10, direction="to_host")
        c.inc(5, direction="to_host")
        c.inc(3, direction="to_device")
        assert c.value(direction="to_host") == 15
        assert c.total() == 18

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("x_total")
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_gauge_set_max_keeps_peak(self):
        g = MetricsRegistry().gauge("ram_bytes")
        g.set_max(100)
        g.set_max(40)
        assert g.value() == 100

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("msg_bytes", buckets=(10, 100))
        h.observe(5)
        h.observe(50)
        h.observe(500)
        text = reg.expose_text()
        assert 'msg_bytes_bucket{le="10"} 1' in text
        assert 'msg_bytes_bucket{le="100"} 2' in text
        assert 'msg_bytes_bucket{le="+Inf"} 3' in text
        assert "msg_bytes_sum 555" in text
        assert "msg_bytes_count 3" in text

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing_total")
        with pytest.raises(MetricError):
            reg.gauge("thing_total")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricError):
            reg.counter("bad name")
        with pytest.raises(MetricError):
            reg.counter("ok_total").inc(1, **{"направление": "x"})

    def test_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("q_total", "queries run").inc(2)
        text = reg.expose_text()
        assert "# HELP q_total queries run\n" in text
        assert "# TYPE q_total counter\n" in text
        assert "\nq_total 2\n" in text

    def test_reset_zeroes_but_keeps_registrations(self):
        reg = MetricsRegistry()
        reg.counter("q_total", "queries run").inc(5)
        reg.reset()
        assert reg.counter("q_total").total() == 0
        assert "# HELP q_total queries run" in reg.expose_text()


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


def _sample_spans():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("query") as outer:
        outer.set("rows", 2)
        clock.advance(0.002)
        with tracer.span("op:project", category="operator"):
            clock.advance(0.001)
    return tracer.roots


class TestExport:
    def test_chrome_trace_has_both_tracks(self):
        doc = to_chrome_trace(_sample_spans())
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["pid"] for e in meta} == {SIM_PID, WALL_PID}
        complete = [e for e in events if e["ph"] == "X"]
        # each finished span appears once per track
        assert len(complete) == 4
        sim = [e for e in complete if e["pid"] == SIM_PID]
        assert {e["name"] for e in sim} == {"query", "op:project"}

    def test_timestamps_microseconds_and_args(self):
        doc = to_chrome_trace(_sample_spans())
        sim = {
            e["name"]: e
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e["pid"] == SIM_PID
        }
        assert sim["query"]["ts"] == 0
        assert sim["query"]["dur"] == pytest.approx(3000)
        assert sim["op:project"]["ts"] == pytest.approx(2000)
        assert sim["query"]["args"]["rows"] == 2
        assert sim["query"]["args"]["sim_ms"] == pytest.approx(3.0)

    def test_json_round_trip(self, tmp_path):
        spans = _sample_spans()
        path = tmp_path / "out.trace.json"
        from repro.obs import write_chrome_trace

        write_chrome_trace(spans, str(path))
        doc = json.loads(path.read_text())
        assert doc == json.loads(chrome_trace_json(spans))
        assert doc["displayTimeUnit"] == "ms"

    def test_render_tree_indents_children(self):
        text = render_tree(_sample_spans())
        lines = text.splitlines()
        assert lines[0].startswith("query [sim 3.000 ms")
        assert lines[1].startswith("  op:project [sim 1.000 ms")


# ----------------------------------------------------------------------
# Logging
# ----------------------------------------------------------------------


class TestLog:
    def test_get_logger_nests_under_root(self):
        assert get_logger("repro.engine.executor").name == "repro.engine.executor"
        assert get_logger("custom").name == f"{ROOT}.custom"

    def test_configure_is_idempotent(self):
        root = logging.getLogger(ROOT)
        managed_before = len(root.handlers)
        stream = io.StringIO()
        configure("debug", stream=stream)
        configure("info", stream=stream)
        try:
            # reconfiguring replaced, not stacked, the managed handler
            assert len(root.handlers) == managed_before + 1
            get_logger("repro.test_obs").info("shape only: %d rows", 3)
            assert "shape only: 3 rows" in stream.getvalue()
        finally:
            for h in list(root.handlers):
                if getattr(h, "_ghostdb_managed", False):
                    root.removeHandler(h)

    def test_configure_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            configure("chatty")


# ----------------------------------------------------------------------
# Observability bundle
# ----------------------------------------------------------------------


class TestObservability:
    def test_session_metrics_preregistered(self):
        obs = Observability()
        text = obs.registry.expose_text()
        assert "ghostdb_queries_total 0" in text
        assert "ghostdb_flash_page_reads_total 0" in text

    def test_tracer_and_redactor_are_shared(self):
        obs = Observability()
        assert obs.tracer.redactor is obs.redactor
