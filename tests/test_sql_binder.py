"""Semantic analysis: resolution, classification, normalisation."""

import datetime

import pytest

from repro.catalog.schema import Schema
from repro.catalog.tree import SchemaTree
from repro.sql.binder import EQ, NEQ, RANGE, Binder
from repro.sql.ddl import create_table
from repro.sql.errors import BindError
from repro.sql.parser import parse_statement
from repro.workload.queries import DEMO_SCHEMA_DDL, demo_query


@pytest.fixture(scope="module")
def binder():
    schema = Schema()
    for ddl in DEMO_SCHEMA_DDL:
        create_table(schema, parse_statement(ddl))
    return Binder(SchemaTree(schema))


def bind(binder, sql):
    return binder.bind(parse_statement(sql))


class TestDemoQuery:
    def test_classification(self, binder):
        """The paper's own annotations: Date VISIBLE, Purpose HIDDEN,
        Type VISIBLE."""
        bound = bind(binder, demo_query())
        by_column = {p.column: p for p in bound.predicates}
        assert not by_column["date"].hidden
        assert by_column["purpose"].hidden
        assert not by_column["type"].hidden

    def test_query_root(self, binder):
        bound = bind(binder, demo_query())
        assert bound.root == "prescription"

    def test_joins_validated_as_tree_edges(self, binder):
        bound = bind(binder, demo_query())
        edges = {(j.parent, j.child) for j in bound.joins}
        assert edges == {
            ("prescription", "medicine"),
            ("prescription", "visit"),
        }

    def test_projections_resolved(self, binder):
        bound = bind(binder, demo_query())
        assert [(t, c.name) for t, c in bound.projections] == [
            ("medicine", "Name"),
            ("prescription", "Quantity"),
            ("visit", "Date"),
        ]


class TestResolution:
    def test_unqualified_unambiguous_column(self, binder):
        bound = bind(binder, "SELECT Purpose FROM Visit")
        assert bound.projections[0][1].name == "Purpose"

    def test_ambiguous_column_rejected(self, binder):
        """VisID exists in Visit (PK) and Prescription (FK)."""
        with pytest.raises(BindError, match="ambiguous"):
            bind(
                binder,
                "SELECT VisID FROM Visit V, Prescription P "
                "WHERE P.VisID = V.VisID",
            )

    def test_unknown_column_rejected(self, binder):
        with pytest.raises(BindError, match="unknown column"):
            bind(binder, "SELECT nothing FROM Visit")

    def test_unknown_alias_rejected(self, binder):
        with pytest.raises(BindError, match="unknown table or alias"):
            bind(binder, "SELECT x.Date FROM Visit v")

    def test_duplicate_binding_rejected(self, binder):
        with pytest.raises(BindError, match="duplicate"):
            bind(binder, "SELECT Date FROM Visit, Visit")


class TestJoinValidation:
    def test_non_fk_join_rejected(self, binder):
        with pytest.raises(BindError, match="foreign-key"):
            bind(
                binder,
                "SELECT v.Date FROM Visit v, Prescription p "
                "WHERE v.VisID = p.PreID",
            )

    def test_missing_join_predicate_rejected(self, binder):
        with pytest.raises(BindError, match="missing join predicate"):
            bind(binder, "SELECT v.Date FROM Visit v, Prescription p")

    def test_disconnected_tables_rejected(self, binder):
        with pytest.raises(Exception):
            bind(
                binder,
                "SELECT d.Country FROM Doctor d, Medicine m",
            )

    def test_inequality_join_rejected(self, binder):
        with pytest.raises(BindError, match="equijoin"):
            bind(
                binder,
                "SELECT v.Date FROM Visit v, Prescription p "
                "WHERE p.VisID > v.VisID",
            )

    def test_join_direction_is_irrelevant(self, binder):
        a = bind(
            binder,
            "SELECT p.Quantity FROM Visit v, Prescription p "
            "WHERE p.VisID = v.VisID",
        )
        b = bind(
            binder,
            "SELECT p.Quantity FROM Visit v, Prescription p "
            "WHERE v.VisID = p.VisID",
        )
        assert a.joins == b.joins


class TestNormalisation:
    def test_two_inequalities_merge_to_range(self, binder):
        bound = bind(
            binder,
            "SELECT Quantity FROM Prescription "
            "WHERE Quantity >= 2 AND Quantity < 8",
        )
        pred = bound.predicates[0]
        assert pred.kind == RANGE
        assert pred.low == 2 and pred.low_inclusive
        assert pred.high == 8 and not pred.high_inclusive

    def test_tighter_bound_wins(self, binder):
        bound = bind(
            binder,
            "SELECT Quantity FROM Prescription "
            "WHERE Quantity > 2 AND Quantity > 5",
        )
        pred = bound.predicates[0]
        assert pred.low == 5

    def test_equality_absorbs_ranges(self, binder):
        bound = bind(
            binder,
            "SELECT Quantity FROM Prescription "
            "WHERE Quantity = 5 AND Quantity > 1",
        )
        assert len(bound.predicates) == 1
        assert bound.predicates[0].kind == EQ

    def test_contradictory_equalities_rejected(self, binder):
        with pytest.raises(BindError, match="contradictory"):
            bind(
                binder,
                "SELECT Quantity FROM Prescription "
                "WHERE Quantity = 5 AND Quantity = 6",
            )

    def test_neq_kept_separate(self, binder):
        bound = bind(
            binder,
            "SELECT Quantity FROM Prescription WHERE Quantity <> 3",
        )
        assert bound.predicates[0].kind == NEQ

    def test_type_checking(self, binder):
        with pytest.raises(BindError, match="does not fit"):
            bind(binder, "SELECT Date FROM Visit WHERE Date > 5")
        with pytest.raises(BindError, match="does not fit"):
            bind(binder, "SELECT Quantity FROM Prescription WHERE Quantity = 'x'")

    def test_int_literal_promoted_for_float_column(self, binder):
        bound = bind(
            binder,
            "SELECT Age FROM Patient WHERE BodyMassIndex > 30",
        )
        pred = bound.predicates[0]
        assert isinstance(pred.low, float)


class TestPredicateMatches:
    def test_eq(self, binder):
        bound = bind(binder, "SELECT Date FROM Visit WHERE Purpose = 'X'")
        pred = bound.predicates[0]
        assert pred.matches("X") and not pred.matches("Y")

    def test_range_inclusivity(self, binder):
        bound = bind(
            binder,
            "SELECT Quantity FROM Prescription "
            "WHERE Quantity >= 2 AND Quantity < 5",
        )
        pred = bound.predicates[0]
        assert pred.matches(2) and pred.matches(4)
        assert not pred.matches(1) and not pred.matches(5)

    def test_date_range(self, binder):
        bound = bind(
            binder, "SELECT Date FROM Visit WHERE Date > 05-11-2006"
        )
        pred = bound.predicates[0]
        assert pred.matches(datetime.date(2006, 11, 6))
        assert not pred.matches(datetime.date(2006, 11, 5))
