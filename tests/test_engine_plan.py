"""Logical plan node validation and rendering."""

import pytest

from repro.engine import plan as lp
from repro.workload.queries import demo_query


@pytest.fixture
def bound(demo_session):
    return demo_session.bind(demo_query())


def hidden_pred(bound):
    return next(p for p in bound.predicates if p.hidden)


def visible_pred(bound):
    return next(p for p in bound.predicates if not p.hidden)


class TestStreamKindValidation:
    def test_convert_requires_id_stream(self, bound):
        skt = lp.SktAccess(skt_root="prescription")
        with pytest.raises(lp.PlanError, match="ID-stream"):
            lp.ConvertIds(skt, target_table="prescription")

    def test_skt_access_requires_id_stream_child(self, bound):
        skt = lp.SktAccess(skt_root="prescription")
        with pytest.raises(lp.PlanError, match="ID-stream"):
            lp.SktAccess(skt_root="prescription", child=skt)

    def test_ids_to_tuples_requires_id_stream(self, bound):
        skt = lp.SktAccess(skt_root="prescription")
        with pytest.raises(lp.PlanError, match="ID-stream"):
            lp.IdsToTuples(skt)

    def test_bloom_requires_tuple_stream(self, bound):
        select = lp.VisibleSelect(visible_pred(bound))
        with pytest.raises(lp.PlanError, match="tuple-stream"):
            lp.BloomProbe(select, visible_pred(bound))

    def test_store_requires_tuple_stream(self, bound):
        select = lp.VisibleSelect(visible_pred(bound))
        with pytest.raises(lp.PlanError, match="tuple-stream"):
            lp.Store(select)

    def test_merge_union_same_table(self, bound):
        a = lp.ClimbingSelect(hidden_pred(bound), target_table="visit")
        b = lp.ClimbingSelect(hidden_pred(bound), target_table="prescription")
        with pytest.raises(lp.PlanError, match="one table"):
            lp.MergeUnion([a, b])


class TestRowNodeValidation:
    def project(self, bound):
        return lp.Project(
            child=lp.SktAccess(skt_root="prescription"),
            projections=list(bound.projections),
        )

    def test_aggregate_must_sit_on_project(self, bound):
        skt = lp.SktAccess(skt_root="prescription")
        with pytest.raises(lp.PlanError, match="above Project"):
            lp.Aggregate(
                child=skt, group_indexes=[], aggregates=[],
                output_items=[],
            )

    def test_order_by_needs_keys(self, bound):
        with pytest.raises(lp.PlanError, match="at least one key"):
            lp.OrderBy(child=self.project(bound), keys=[])

    def test_order_by_rejects_id_streams(self, bound):
        select = lp.VisibleSelect(visible_pred(bound))
        with pytest.raises(lp.PlanError):
            lp.OrderBy(child=select, keys=[(0, True)])

    def test_limit_rejects_negative(self, bound):
        with pytest.raises(lp.PlanError, match="negative"):
            lp.Limit(child=self.project(bound), count=-1)

    def test_limit_stacks_on_order_by(self, bound):
        order = lp.OrderBy(child=self.project(bound), keys=[(0, True)])
        limit = lp.Limit(child=order, count=5)
        assert limit.output_labels() == self.project(bound).output_labels()


class TestRendering:
    def test_walk_visits_every_node(self, demo_session, bound):
        plan = demo_session.optimizer.optimize(bound).plan
        nodes = list(plan.walk())
        assert nodes[0] is plan
        labels = {n.label() for n in nodes}
        assert any("Project" in l for l in labels)
        assert len(nodes) >= 4

    def test_render_indents_children(self, demo_session, bound):
        plan = demo_session.optimizer.optimize(bound).plan
        text = plan.render()
        lines = text.splitlines()
        assert lines[0].startswith("Project") or lines[0][0] != " "
        assert any(line.startswith("  ") for line in lines[1:])

    def test_labels_are_informative(self, bound):
        select = lp.VisibleSelect(visible_pred(bound))
        assert "date" in select.label() or "type" in select.label()
        climbing = lp.ClimbingSelect(
            hidden_pred(bound), target_table="prescription"
        )
        assert "purpose" in climbing.label()
        assert "prescription" in climbing.label()
