"""Crash atomicity of ``maintenance.append_rows`` (build-all-then-swap).

The rebuild discipline puts every flash write *before* the host-side
catalog swap, so a power cut at any flash operation of an append must
leave the device holding exactly the old state: after remount (which
runs the orphan sweep) the table reads back as if the append never
happened, the FTL map matches the catalog, and re-issuing the append
succeeds.  The sweep below proves it for every cut index.
"""

from __future__ import annotations

import datetime

import pytest

from repro.core.ghostdb import GhostDB
from repro.faults import PowerCutError
from repro.workload.datagen import DatasetConfig, MedicalDataGenerator
from repro.workload.queries import DEMO_SCHEMA_DDL

#: Tiny dataset: the sweep runs one fresh session per flash operation.
TINY = DatasetConfig(n_prescriptions=12)


@pytest.fixture(scope="module")
def tiny_data() -> dict[str, list]:
    return MedicalDataGenerator(TINY).generate()


def build_session(data) -> GhostDB:
    db = GhostDB()
    for ddl in DEMO_SCHEMA_DDL:
        db.execute(ddl)
    db.load(data)
    return db


def new_prescriptions(db: GhostDB, n: int = 3) -> list[tuple]:
    """Fresh rows with keys above the current maximum."""
    heap = db.hidden.heaps["prescription"]
    max_pk = heap.pk_of_rowid(heap.count - 1)
    visits = db.hidden.heaps["visit"]
    vis_pk = visits.pk_of_rowid(visits.count - 1)
    return [
        (
            max_pk + i,
            5 + i,
            "1x daily",
            datetime.date(2026, 1, 1),
            50,
            vis_pk,
        )
        for i in range(1, n + 1)
    ]


def device_rows(db: GhostDB, table: str) -> list[tuple]:
    """The table's device rows, read back off flash."""
    return list(db.hidden.heaps[table].scan())


def attach_spy(db: GhostDB):
    """A 'none' injector whose flash decisions are counted."""
    injector = db.set_faults("none", seed=0)
    ops: list[str] = []
    original = injector.flash_decision

    def spying(op, data_len=0):
        ops.append(op)
        return original(op, data_len)

    injector.flash_decision = spying
    return injector, ops


def count_append_ops(data) -> int:
    """Clean run: flash ops consumed by one append batch.

    Warms the page cache exactly like each sweep trial does (the
    pre-append snapshot scan), so the counted op sequence matches the
    trials' op sequence index for index.
    """
    db = build_session(data)
    device_rows(db, "prescription")
    injector, ops = attach_spy(db)
    db.append("prescription", new_prescriptions(db))
    assert "program" in ops, "append wrote nothing?"
    return injector.flash_ops


class TestAppendPowerCutSweep:
    def test_cut_at_every_flash_op_keeps_old_state(self, tiny_data):
        total = count_append_ops(tiny_data)
        assert total > 20, "append too small to be a meaningful sweep"
        for cut_at in range(total):
            db = build_session(tiny_data)
            before_rows = device_rows(db, "prescription")
            before_site = db.site.row_count("prescription")
            injector = db.set_faults("none", seed=0)
            injector.schedule_power_cut(at_flash_op=cut_at)
            rows = new_prescriptions(db)
            with pytest.raises(PowerCutError):
                db.append("prescription", rows)
            assert injector.events[-1].op_index == cut_at
            db.set_faults("none", seed=0)  # drop the consumed schedule
            db.remount()
            # Old state, never a torn mix: all append flash ops precede
            # the catalog swap, so the cut statement fully rolls back.
            assert device_rows(db, "prescription") == before_rows
            assert db.site.row_count("prescription") == before_site
            # The orphan sweep reclaimed every uncommitted page.
            assert (
                db.device.ftl.mapped_lpages()
                == db.hidden.referenced_pages()
            ), f"orphaned pages after cut at op {cut_at}"
            # The device accepts the same append again.
            report = db.append("prescription", rows)
            assert report.appended_rows == len(rows)
            assert device_rows(db, "prescription") == before_rows + sorted(
                [
                    tuple(
                        r[db.tree.table("prescription").column_index(c.name)]
                        for c in db.tree.table(
                            "prescription"
                        ).device_columns()
                    )
                    for r in rows
                ],
                key=lambda r: r[0],
            )


class TestAppendAbortCleanup:
    def test_failed_append_frees_built_pages(self, tiny_data):
        """A host-side build failure frees the new pages immediately."""
        db = build_session(tiny_data)
        mapped_before = set(db.device.ftl.mapped_lpages())
        rows = new_prescriptions(db)
        # Poison the last row so the heap load fails mid-build.
        bad = rows[:-1] + [(rows[-1][0] - 99,) + rows[-1][1:]]
        with pytest.raises(ValueError):
            db.append("prescription", bad)
        assert set(db.device.ftl.mapped_lpages()) == mapped_before
        assert (
            db.device.ftl.mapped_lpages() == db.hidden.referenced_pages()
        )

    def test_remount_after_clean_append_is_a_noop_sweep(self, tiny_data):
        db = build_session(tiny_data)
        db.append("prescription", new_prescriptions(db))
        before = device_rows(db, "prescription")
        db.remount()
        assert device_rows(db, "prescription") == before
        assert (
            db.device.ftl.mapped_lpages() == db.hidden.referenced_pages()
        )
