"""Flash translation layer: logical pages, out-of-place writes, GC."""

import pytest

from repro.hardware.clock import SimClock
from repro.hardware.flash import FlashError, NandFlash
from repro.hardware.ftl import DeviceReadOnlyError, FlashTranslationLayer
from repro.hardware.profiles import DEMO_DEVICE


def make_ftl(num_blocks=8, spare=2):
    profile = DEMO_DEVICE.with_overrides(num_blocks=num_blocks)
    flash = NandFlash(profile=profile, clock=SimClock())
    return FlashTranslationLayer(flash=flash, spare_blocks=spare), flash


def test_write_read_roundtrip():
    ftl, _ = make_ftl()
    lpage = ftl.allocate()
    ftl.write(lpage, b"payload")
    assert ftl.read(lpage, 0, 7) == b"payload"


def test_logical_overwrite_goes_out_of_place():
    ftl, flash = make_ftl()
    lpage = ftl.allocate()
    ftl.write(lpage, b"v1")
    ftl.write(lpage, b"v2")
    assert ftl.read(lpage, 0, 2) == b"v2"
    # Two physical programs happened; no erase was needed yet.
    assert flash.stats.page_writes == 2
    assert flash.stats.block_erases == 0


def test_read_of_never_written_page_fails():
    ftl, _ = make_ftl()
    lpage = ftl.allocate()
    with pytest.raises(FlashError, match="never been written"):
        ftl.read(lpage)


def test_free_recycles_logical_numbers():
    ftl, _ = make_ftl()
    a = ftl.allocate()
    ftl.write(a, b"a")
    ftl.free(a)
    b = ftl.allocate()
    assert b == a
    assert not ftl.is_mapped(b) or ftl.read(b, 0, 1) != b"a"


def test_gc_reclaims_overwritten_space():
    """Constant overwriting of one logical page must not fill the flash:
    GC erases blocks full of stale versions."""
    ftl, flash = make_ftl(num_blocks=6)
    lpage = ftl.allocate()
    writes = DEMO_DEVICE.pages_per_block * 10
    for i in range(writes):
        ftl.write(lpage, f"version {i}".encode())
    assert flash.stats.block_erases > 0
    assert ftl.stats.gc_runs > 0
    assert ftl.read(lpage, 0, 12).startswith(b"version")


def test_gc_relocates_live_pages():
    """A victim block with live pages gets them copied, not lost."""
    ftl, flash = make_ftl(num_blocks=6)
    per_block = DEMO_DEVICE.pages_per_block
    keepers = []
    # Interleave long-lived pages with churn so victims hold live data.
    churn = ftl.allocate()
    for i in range(per_block * 8):
        if i % 7 == 0:
            page = ftl.allocate()
            ftl.write(page, f"keep {i}".encode())
            keepers.append((page, f"keep {i}".encode()))
        else:
            ftl.write(churn, b"churn")
    assert ftl.stats.gc_relocations > 0
    for page, expected in keepers:
        assert ftl.read(page, 0, len(expected)) == expected


def test_read_only_when_all_data_is_live():
    """Filling the flash with live data latches the typed read-only
    mode -- never a bare FlashFullError escaping to the caller."""
    ftl, _ = make_ftl(num_blocks=4, spare=1)
    capacity = 4 * DEMO_DEVICE.pages_per_block
    written = []
    with pytest.raises(DeviceReadOnlyError):
        for _ in range(capacity + 1):
            page = ftl.allocate()
            ftl.write(page, b"live")
            written.append(page)
    assert ftl.read_only
    # Sticky: later writes fail immediately, reads still work.
    with pytest.raises(DeviceReadOnlyError):
        ftl.write(written[0], b"again")
    assert ftl.read(written[0], 0, 4) == b"live"


def test_logical_writes_counted():
    ftl, _ = make_ftl()
    lpage = ftl.allocate()
    ftl.write(lpage, b"1")
    ftl.write(lpage, b"2")
    assert ftl.stats.logical_writes == 2


def test_free_pages_estimate_decreases_with_use():
    ftl, _ = make_ftl(num_blocks=8)
    before = ftl.free_pages_estimate
    for _ in range(10):
        page = ftl.allocate()
        ftl.write(page, b"x")
    assert ftl.free_pages_estimate == before - 10
