"""Crash-consistent recovery: the power-cut sweep and its edge cases.

The central invariant (docs/ROBUSTNESS.md): cut power at *any* flash
operation of a write workload, remount, and the device holds exactly the
last committed state -- every completed ``write()`` reads back, no torn
page is visible, and the device accepts new writes.  The sweep test
below proves it exhaustively, one run per possible cut point.
"""

import pytest

from repro.faults import FAULT_PROFILES, FaultInjector, PowerCutError
from repro.hardware.clock import SimClock
from repro.hardware.flash import BadBlockError, NandFlash
from repro.hardware.ftl import FlashTranslationLayer
from repro.hardware.profiles import DEMO_DEVICE

#: Small geometry so the exhaustive sweep stays fast while still forcing
#: several GC cycles (relocations + erases) during the workload.
SMALL = DEMO_DEVICE.with_overrides(
    num_blocks=6, pages_per_block=4, page_size=64
)


def build():
    flash = NandFlash(profile=SMALL, clock=SimClock())
    ftl = FlashTranslationLayer(flash=flash)
    return flash, ftl


def content(step: int, lpage: int) -> bytes:
    return f"s{step:04d}-l{lpage:02d}".encode()


def run_workload(ftl, committed: dict[int, bytes]) -> None:
    """A deterministic overwrite-heavy workload.

    ``committed`` is updated *after* each successful write -- it mirrors
    what a caller is entitled to read back after a crash.
    """
    pages = [ftl.allocate() for _ in range(6)]
    step = 0
    for round_ in range(10):
        for lpage in pages:
            step += 1
            data = content(step, lpage)
            ftl.write(lpage, data)
            committed[lpage] = data
        # Read traffic so the sweep also cuts power mid-read.
        probe = pages[round_ % len(pages)]
        assert ftl.read(probe, 0, 9) == committed[probe]


def count_flash_ops() -> tuple[int, list[str]]:
    """Clean run: the op count and the op type at each index."""
    flash, ftl = build()
    injector = FaultInjector(FAULT_PROFILES["none"], seed=0)
    ops: list[str] = []
    original = injector.flash_decision

    def spying_decision(op, data_len=0):
        ops.append(op)
        return original(op, data_len)

    injector.flash_decision = spying_decision
    flash.faults = injector
    run_workload(ftl, {})
    return injector.flash_ops, ops


def assert_committed_state(flash, committed):
    """Recover a fresh FTL from flash and check the invariant."""
    recovered = FlashTranslationLayer.recover(flash)
    for lpage, data in committed.items():
        assert recovered.is_mapped(lpage), f"lost committed lpage {lpage}"
        assert recovered.read(lpage, 0, len(data)) == data
    # No torn page is reachable: every mapped page's CRC verifies.
    for lpage in committed:
        phys = recovered._map[lpage]
        assert flash.page_crc_ok(phys)
    # The device still accepts new writes after recovery.
    probe = recovered.allocate()
    recovered.write(probe, b"post-recovery")
    assert recovered.read(probe, 0, 13) == b"post-recovery"


class TestPowerCutSweep:
    def test_cut_at_every_flash_op_recovers_committed_state(self):
        total, ops = count_flash_ops()
        assert total > 60, "workload too small to be a meaningful sweep"
        # The overwrite churn must force GC: the sweep then covers cuts
        # mid-program, mid-read (relocation) AND mid-erase.
        assert "erase" in ops and "program" in ops and "read" in ops
        for cut_at in range(total):
            flash, ftl = build()
            injector = FaultInjector(FAULT_PROFILES["none"], seed=0)
            injector.schedule_power_cut(at_flash_op=cut_at)
            flash.faults = injector
            committed: dict[int, bytes] = {}
            with pytest.raises(PowerCutError):
                run_workload(ftl, committed)
            assert injector.events[-1].op_index == cut_at
            flash.faults = None
            assert_committed_state(flash, committed)


class TestRecoveryScan:
    def test_overwrites_resolved_by_sequence(self):
        flash, ftl = build()
        lpage = ftl.allocate()
        for step in range(7):
            ftl.write(lpage, content(step, lpage))
        recovered = FlashTranslationLayer.recover(flash)
        assert recovered.read(lpage, 0, 9) == content(6, lpage)
        # Superseded copies are stale, not mapped.
        assert recovered.mapped_pages == 1

    def test_torn_page_rolled_back_to_previous_commit(self):
        flash, ftl = build()
        injector = FaultInjector(FAULT_PROFILES["none"], seed=0)
        flash.faults = injector
        lpage = ftl.allocate()
        ftl.write(lpage, b"v1")
        injector.schedule_power_cut(at_flash_op=injector.flash_ops)
        with pytest.raises(PowerCutError):
            ftl.write(lpage, b"v2")
        flash.faults = None
        recovered = FlashTranslationLayer.recover(flash)
        assert recovered.read(lpage, 0, 2) == b"v1"

    def test_first_write_torn_leaves_page_unmapped(self):
        flash, ftl = build()
        injector = FaultInjector(FAULT_PROFILES["none"], seed=0)
        injector.schedule_power_cut(at_flash_op=0)
        flash.faults = injector
        lpage = ftl.allocate()
        with pytest.raises(PowerCutError):
            ftl.write(lpage, b"never committed")
        flash.faults = None
        recovered = FlashTranslationLayer.recover(flash)
        assert not recovered.is_mapped(lpage)

    def test_recovery_continues_sequence_and_logical_numbering(self):
        flash, ftl = build()
        a, b = ftl.allocate(), ftl.allocate()
        ftl.write(a, b"a")
        ftl.write(b, b"b")
        recovered = FlashTranslationLayer.recover(flash)
        fresh = recovered.allocate()
        assert fresh > b
        recovered.write(a, b"a2")  # must supersede the pre-crash copy
        assert recovered.read(a, 0, 2) == b"a2"
        again = FlashTranslationLayer.recover(flash)
        assert again.read(a, 0, 2) == b"a2"

    def test_freed_page_resurrects_after_crash(self):
        """Documented limitation: free() is volatile, so an unreused
        freed page comes back after recovery (harmless -- callers never
        read freed pages)."""
        flash, ftl = build()
        lpage = ftl.allocate()
        ftl.write(lpage, b"zombie")
        ftl.free(lpage)
        assert not ftl.is_mapped(lpage)
        recovered = FlashTranslationLayer.recover(flash)
        assert recovered.is_mapped(lpage)


class TestBadBlocks:
    def test_program_failure_remaps_to_next_block(self):
        flash, ftl = build()
        lpage = ftl.allocate()
        ftl.write(lpage, b"first")
        open_block = flash.block_of(ftl._map[lpage])
        flash.mark_bad(open_block)
        other = ftl.allocate()
        ftl.write(other, b"second")  # open block is bad: must remap
        assert flash.block_of(ftl._map[other]) != open_block
        # The bad block's programmed pages remain readable.
        assert ftl.read(lpage, 0, 5) == b"first"

    def test_recovery_excludes_bad_blocks_from_free_list(self):
        flash, ftl = build()
        lpage = ftl.allocate()
        ftl.write(lpage, b"x")
        flash.mark_bad(4)
        recovered = FlashTranslationLayer.recover(flash)
        assert 4 not in recovered._free_blocks

    def test_erase_failure_retires_block(self):
        flash, _ = build()
        flash.mark_bad(2)
        with pytest.raises(BadBlockError):
            flash.erase_block(2)


class TestMidEraseCut:
    def test_wiped_prefix_and_survivors(self):
        flash, _ = build()
        per_block = SMALL.pages_per_block
        for page in range(per_block):
            flash.program(page, content(page, 0), oob=(page, page))
        injector = FaultInjector(FAULT_PROFILES["none"], seed=1)
        injector.schedule_power_cut(at_flash_op=0)
        flash.faults = injector
        with pytest.raises(PowerCutError, match="erasing"):
            flash.erase_block(0)
        flash.faults = None
        wiped = injector.events[-1].length
        assert 0 <= wiped <= per_block
        for page in range(per_block):
            if page < wiped:
                assert not flash.is_programmed(page)
                assert flash.oob(page) is None
            else:
                assert flash.is_programmed(page)
                assert flash.page_crc_ok(page)

    def test_session_remount_after_unplug_restores_service(
        self, fresh_session
    ):
        """End-to-end: an unplug aborts the query typed, the session
        demands a remount, and the remounted device answers exactly."""
        from repro.faults import DeviceUnpluggedError, FaultProfile
        from repro.workload.queries import demo_query

        session = fresh_session
        session.reset_measurements()
        reference = session.query(demo_query())
        session.set_faults(
            FaultProfile(name="unplug", usb_unplug_rate=1.0), seed=0
        )
        with pytest.raises(DeviceUnpluggedError):
            session.query(demo_query())
        session.clear_faults()
        assert session.needs_remount
        from repro.core.ghostdb import SessionError

        with pytest.raises(SessionError, match="remount"):
            session.query(demo_query())
        session.remount()
        result = session.query(demo_query())
        assert result.rows == reference.rows
        remounts = session.obs.registry.counter(
            "ghostdb_recovery_remounts_total"
        )
        assert remounts.total() == 1
