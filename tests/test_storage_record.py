"""Fixed-width record codec."""

import datetime

import pytest
from hypothesis import given, strategies as st

from repro.storage.record import RecordCodec
from repro.storage.types import (
    CharType,
    DateType,
    FloatType,
    IntegerType,
    TypeError_,
)


@pytest.fixture
def codec():
    return RecordCodec(
        [IntegerType(), CharType(12), DateType(), FloatType()]
    )


def test_width_is_sum_of_field_widths(codec):
    assert codec.width == 8 + 12 + 4 + 8
    assert codec.arity == 4


def test_roundtrip(codec):
    row = (42, "sclerosis", datetime.date(2006, 11, 5), 27.5)
    assert codec.decode(codec.encode(row)) == row


def test_decode_single_field_without_others(codec):
    row = (42, "purpose", datetime.date(2006, 11, 5), 1.0)
    raw = codec.encode(row)
    assert codec.decode_field(raw, 0) == 42
    assert codec.decode_field(raw, 1) == "purpose"
    assert codec.decode_field(raw, 2) == datetime.date(2006, 11, 5)


def test_field_slice_matches_layout(codec):
    assert codec.field_slice(0) == (0, 8)
    assert codec.field_slice(1) == (8, 12)
    assert codec.field_slice(2) == (20, 4)
    assert codec.field_slice(3) == (24, 8)


def test_field_slice_decodes_standalone(codec):
    row = (7, "x", datetime.date(2000, 1, 1), 2.5)
    raw = codec.encode(row)
    off, width = codec.field_slice(3)
    assert codec.types[3].decode(raw[off : off + width]) == 2.5


def test_wrong_arity_rejected(codec):
    with pytest.raises(TypeError_, match="expects 4"):
        codec.encode((1, "a", datetime.date(2000, 1, 1)))


def test_wrong_length_decode_rejected(codec):
    with pytest.raises(TypeError_, match="does not match codec width"):
        codec.decode(b"\x00" * (codec.width - 1))


def test_empty_codec_rejected():
    with pytest.raises(TypeError_):
        RecordCodec([])


@given(
    st.tuples(
        st.integers(-(2**40), 2**40),
        st.text(
            alphabet=st.characters(codec="ascii", exclude_characters="\x00"),
            max_size=12,
        ),
        st.dates(),
        st.floats(allow_nan=False, allow_infinity=False),
    )
)
def test_roundtrip_property(row):
    codec = RecordCodec(
        [IntegerType(), CharType(12), DateType(), FloatType()]
    )
    assert codec.decode(codec.encode(row)) == row
