"""USB channel: timing, capture, fault injection."""

import pytest

from repro.hardware.clock import SimClock
from repro.hardware.profiles import DEMO_DEVICE, HIGH_SPEED_DEVICE
from repro.hardware.usb import Direction, UsbChannel, UsbError


@pytest.fixture
def channel():
    return UsbChannel(profile=DEMO_DEVICE, clock=SimClock())


def test_transfer_returns_payload(channel):
    delivered = channel.transfer(Direction.TO_DEVICE, "ids", b"\x00\x01")
    assert delivered == b"\x00\x01"


def test_transfer_time_matches_throughput(channel):
    payload = b"x" * 12_000
    t0 = channel.clock.now
    channel.transfer(Direction.TO_DEVICE, "ids", payload)
    elapsed = channel.clock.now - t0
    expected = DEMO_DEVICE.usb_setup_s + len(payload) * 8 / DEMO_DEVICE.usb_bits_per_s
    assert elapsed == pytest.approx(expected)


def test_high_speed_profile_is_40x_faster_per_byte():
    slow = UsbChannel(profile=DEMO_DEVICE, clock=SimClock())
    fast = UsbChannel(profile=HIGH_SPEED_DEVICE, clock=SimClock())
    payload = b"x" * 1_000_000
    slow.transfer(Direction.TO_DEVICE, "ids", payload)
    fast.transfer(Direction.TO_DEVICE, "ids", payload)
    slow_bytes_time = slow.clock.now - DEMO_DEVICE.usb_setup_s
    fast_bytes_time = fast.clock.now - HIGH_SPEED_DEVICE.usb_setup_s
    assert slow_bytes_time / fast_bytes_time == pytest.approx(40.0)


def test_every_message_is_captured(channel):
    channel.transfer(Direction.TO_HOST, "request", b"q1")
    channel.transfer(Direction.TO_DEVICE, "ids", b"\x00" * 8)
    assert channel.message_count == 2
    record = channel.log[0]
    assert record.direction is Direction.TO_HOST
    assert record.kind == "request"
    assert record.payload == b"q1"
    assert record.seq == 0


def test_direction_byte_accounting(channel):
    channel.transfer(Direction.TO_DEVICE, "ids", b"abcd")
    channel.transfer(Direction.TO_HOST, "request", b"xy")
    assert channel.bytes_to_device == 4
    assert channel.bytes_to_host == 2


def test_records_filtered_by_direction(channel):
    channel.transfer(Direction.TO_DEVICE, "ids", b"a")
    channel.transfer(Direction.TO_HOST, "request", b"b")
    to_host = channel.records(Direction.TO_HOST)
    assert len(to_host) == 1
    assert to_host[0].payload == b"b"


def test_non_bytes_payload_rejected(channel):
    with pytest.raises(UsbError, match="must be bytes"):
        channel.transfer(Direction.TO_DEVICE, "ids", "text")


def test_fault_injection_corrupts_deterministically(channel):
    from repro.faults import FaultInjector, FaultProfile

    channel.faults = FaultInjector(
        FaultProfile(name="all-corrupt", usb_corrupt_rate=1.0), seed=7
    )
    delivered = channel.transfer(Direction.TO_DEVICE, "ids", b"\x01\x02")
    assert delivered != b"\x01\x02"
    assert channel.log[0].faults == ("corrupt",)
    # Same seed, same payload: bit-identical corruption.
    replay = UsbChannel(profile=DEMO_DEVICE, clock=SimClock())
    replay.faults = FaultInjector(
        FaultProfile(name="all-corrupt", usb_corrupt_rate=1.0), seed=7
    )
    assert replay.transfer(Direction.TO_DEVICE, "ids", b"\x01\x02") == delivered


def test_fault_injection_drop_and_unplug_raise(channel):
    from repro.faults import (
        DeviceUnpluggedError,
        FaultInjector,
        FaultProfile,
    )
    from repro.hardware.usb import UsbDroppedError

    channel.faults = FaultInjector(
        FaultProfile(name="all-drop", usb_drop_rate=1.0), seed=0
    )
    with pytest.raises(UsbDroppedError):
        channel.transfer(Direction.TO_DEVICE, "ids", b"\x01")
    # The dropped message is still captured (the spy saw it leave).
    assert channel.log[-1].faults == ("drop",)
    channel.faults = FaultInjector(
        FaultProfile(name="all-unplug", usb_unplug_rate=1.0), seed=0
    )
    with pytest.raises(DeviceUnpluggedError):
        channel.transfer(Direction.TO_DEVICE, "ids", b"\x01")


def test_fault_injection_stall_charges_clock(channel):
    from repro.faults import FaultInjector, FaultProfile

    profile = FaultProfile(
        name="all-stall", usb_stall_rate=1.0, usb_stall_seconds=0.25
    )
    channel.faults = FaultInjector(profile, seed=0)
    t0 = channel.clock.now
    delivered = channel.transfer(Direction.TO_DEVICE, "ids", b"\x01\x02")
    assert delivered == b"\x01\x02"  # late but intact
    base = DEMO_DEVICE.usb_setup_s + 2 * 8 / DEMO_DEVICE.usb_bits_per_s
    assert channel.clock.now - t0 == pytest.approx(base + 0.25)


def test_clear_log_resets_capture_not_clock(channel):
    channel.transfer(Direction.TO_DEVICE, "ids", b"abc")
    t = channel.clock.now
    channel.clear_log()
    assert channel.message_count == 0
    assert channel.bytes_to_device == 0
    assert channel.clock.now == t
