"""Bloom filters: correctness, sizing, RAM accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.device import SmartUsbDevice
from repro.hardware.ram import RamExhaustedError
from repro.index.bloom import BloomFilter, bloom_parameters


class TestSizing:
    def test_textbook_parameters(self):
        bits, hashes = bloom_parameters(1000, 0.01)
        # m = -n ln p / ln2^2 ~ 9585 bits, k ~ 7 for 1% at n=1000.
        assert 9000 <= bits <= 10100
        assert hashes == 7

    def test_lower_fp_needs_more_bits(self):
        loose, _ = bloom_parameters(1000, 0.1)
        tight, _ = bloom_parameters(1000, 0.001)
        assert tight > loose * 2

    def test_degenerate_inputs(self):
        assert bloom_parameters(0, 0.01) == (8, 1)
        with pytest.raises(ValueError):
            bloom_parameters(100, 0.0)
        with pytest.raises(ValueError):
            bloom_parameters(100, 1.5)


class TestFilter:
    def test_no_false_negatives(self, device):
        with BloomFilter.for_expected(device, 500, 0.01) as bloom:
            keys = list(range(0, 5000, 10))
            for key in keys:
                bloom.insert(key)
            assert all(bloom.may_contain(key) for key in keys)

    def test_fp_rate_near_target(self, device):
        target = 0.02
        n = 2000
        with BloomFilter.for_expected(device, n, target) as bloom:
            for key in range(n):
                bloom.insert(key)
            probes = range(n, n + 20_000)
            fp = sum(bloom.may_contain(k) for k in probes) / 20_000
        assert fp <= target * 2.5
        assert bloom.expected_fp_rate() == pytest.approx(target, rel=0.5)

    def test_ram_is_a_real_allocation(self, device):
        base = device.ram.used
        bloom = BloomFilter(device, bits=8192, hashes=4)
        assert device.ram.used == base + 1024
        bloom.close()
        assert device.ram.used == base

    def test_oversized_filter_hits_the_budget(self, device):
        with pytest.raises(RamExhaustedError):
            BloomFilter(device, bits=device.ram.capacity * 8 + 64, hashes=4)

    def test_use_after_close_rejected(self, device):
        bloom = BloomFilter(device, bits=64, hashes=2)
        bloom.close()
        with pytest.raises(ValueError, match="released"):
            bloom.insert(1)
        with pytest.raises(ValueError, match="released"):
            bloom.may_contain(1)

    def test_cpu_charged_per_operation(self, device):
        bloom = BloomFilter(device, bits=1024, hashes=4)
        t0 = device.clock.now
        bloom.insert(1)
        bloom.may_contain(1)
        assert device.clock.now > t0
        bloom.close()

    def test_invalid_parameters_rejected(self, device):
        with pytest.raises(ValueError):
            BloomFilter(device, bits=4, hashes=1)
        with pytest.raises(ValueError):
            BloomFilter(device, bits=64, hashes=0)

    def test_fill_ratio_monotone(self, device):
        bloom = BloomFilter(device, bits=512, hashes=3)
        assert bloom.fill_ratio() == 0.0
        bloom.insert(1)
        low = bloom.fill_ratio()
        for key in range(2, 50):
            bloom.insert(key)
        assert bloom.fill_ratio() > low
        bloom.close()

    def test_deterministic_across_instances(self, device):
        a = BloomFilter(device, bits=1024, hashes=4)
        b = BloomFilter(device, bits=1024, hashes=4)
        for key in range(100):
            a.insert(key)
            b.insert(key)
        assert all(b.may_contain(k) for k in range(100))
        assert a._array == b._array
        a.close()
        b.close()


@settings(max_examples=30, deadline=None)
@given(
    st.sets(st.integers(0, 2**32 - 1), max_size=200),
    st.integers(8, 4096),
    st.integers(1, 8),
)
def test_never_a_false_negative_property(keys, bits, hashes):
    """Property: inserted keys are always 'maybe present', for any
    geometry -- the completeness guarantee Post-filtering relies on."""
    device = SmartUsbDevice()
    with BloomFilter(device, bits=bits, hashes=hashes) as bloom:
        for key in keys:
            bloom.insert(key)
        assert all(bloom.may_contain(key) for key in keys)
