"""Randomized end-to-end property testing.

For a batch of seeds: generate a random tree schema (random shapes,
types and HIDDEN flags), random data, and random SPJ queries; execute
every Pre/Post strategy on a fresh GhostDB session and require exact
agreement with the brute-force reference.  This is the net that catches
cross-module interactions no targeted test thought of.
"""

import datetime
import random

import pytest

from repro.core.ghostdb import GhostDB
from repro.optimizer.space import enumerate_strategies
from repro.privacy.leakcheck import LeakChecker
from repro.reference import evaluate_reference, same_rows

#: Disjoint vocabularies: identical strings in a hidden and a visible
#: column would be indistinguishable to the leak checker (an inherent
#: limit of content scanning), so the generator keeps the domains apart,
#: as disjoint real-world columns would be.
VISIBLE_WORDS = ["alpha", "beta", "gamma", "delta", "epsilon"]
HIDDEN_WORDS = ["secret1", "secret2", "secret3", "secret4", "secret5"]

TYPES = ("INTEGER", "CHAR(12)", "DATE", "FLOAT")


def random_value(rng: random.Random, type_name: str, hidden: bool = False):
    if type_name == "INTEGER":
        return rng.randint(0, 20)
    if type_name == "CHAR(12)":
        return rng.choice(HIDDEN_WORDS if hidden else VISIBLE_WORDS)
    if type_name == "DATE":
        return datetime.date(2006, 1, 1) + datetime.timedelta(
            days=rng.randint(0, 300)
        )
    return round(rng.uniform(0, 50), 1)


def literal(value) -> str:
    if isinstance(value, str):
        return f"'{value}'"
    if isinstance(value, datetime.date):
        return f"DATE '{value.isoformat()}'"
    return str(value)


class RandomSchema:
    """A random tree schema plus matching data and query generator."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        rng = self.rng
        n_tables = rng.randint(2, 5)
        self.names = [f"T{i}" for i in range(n_tables)]
        # parent_of[i] = index of the table that REFERENCES T_i (or None
        # for the schema root, which is T0).
        self.children: dict[int, list[int]] = {i: [] for i in range(n_tables)}
        for i in range(1, n_tables):
            parent = rng.randrange(0, i)
            self.children[parent].append(i)
        self.columns: dict[int, list[tuple[str, str, bool]]] = {}
        for i in range(n_tables):
            cols = []
            for c in range(rng.randint(1, 3)):
                cols.append(
                    (
                        f"a{c}",
                        rng.choice(TYPES),
                        rng.random() < 0.5,  # hidden?
                    )
                )
            self.columns[i] = cols

    # ------------------------------------------------------------------

    def ddl(self) -> list[str]:
        """CREATE TABLE statements, children (referenced) first."""
        statements = {}
        for i, name in enumerate(self.names):
            parts = [f"{name}ID INTEGER PRIMARY KEY"]
            for col, type_name, hidden in self.columns[i]:
                suffix = " HIDDEN" if hidden else ""
                parts.append(f"{col} {type_name}{suffix}")
            for child in self.children[i]:
                hidden = " HIDDEN" if self.rng.random() < 0.7 else ""
                parts.append(
                    f"fk{child} REFERENCES {self.names[child]}"
                    f"({self.names[child]}ID){hidden}"
                )
            statements[i] = (
                f"CREATE TABLE {name} ({', '.join(parts)})"
            )
        # Emit leaves first so REFERENCES targets exist.
        order = []
        emitted = set()

        def emit(i):
            for child in self.children[i]:
                emit(child)
            if i not in emitted:
                emitted.add(i)
                order.append(statements[i])

        emit(0)
        return order

    def data(self) -> dict[str, list[tuple]]:
        rng = self.rng
        counts = {
            i: rng.randint(20, 120) for i in range(len(self.names))
        }
        rows: dict[str, list[tuple]] = {}
        for i, name in enumerate(self.names):
            table_rows = []
            for pk in range(1, counts[i] + 1):
                row = [pk]
                for _col, type_name, hidden in self.columns[i]:
                    row.append(random_value(rng, type_name, hidden))
                for child in self.children[i]:
                    row.append(rng.randint(1, counts[child]))
                table_rows.append(tuple(row))
            rows[name.lower()] = table_rows
        return rows

    # ------------------------------------------------------------------

    def random_query(self, rng: random.Random) -> str:
        """A random SPJ query over a random connected subtree."""
        # Choose a root and a connected set of descendants.
        root = rng.randrange(len(self.names))
        selected = {root}
        frontier = list(self.children[root])
        while frontier:
            child = frontier.pop()
            if rng.random() < 0.7:
                selected.add(child)
                frontier.extend(self.children[child])
        tables = sorted(selected)
        froms = ", ".join(self.names[i] for i in tables)
        joins = []
        for i in tables:
            for child in self.children[i]:
                if child in selected:
                    joins.append(
                        f"{self.names[i]}.fk{child} = "
                        f"{self.names[child]}.{self.names[child]}ID"
                    )
        predicates = []
        for i in tables:
            for col, type_name, hidden in self.columns[i]:
                if rng.random() > 0.4:
                    continue
                qualified = f"{self.names[i]}.{col}"
                roll = rng.random()
                value = random_value(rng, type_name, hidden)
                if roll < 0.4:
                    predicates.append(f"{qualified} = {literal(value)}")
                elif roll < 0.7 and type_name != "CHAR(12)":
                    op = rng.choice(["<", "<=", ">", ">="])
                    predicates.append(
                        f"{qualified} {op} {literal(value)}"
                    )
                else:
                    values = ", ".join(
                        literal(random_value(rng, type_name, hidden))
                        for _ in range(rng.randint(1, 3))
                    )
                    predicates.append(f"{qualified} IN ({values})")
        items = []
        for i in tables:
            items.append(f"{self.names[i]}.{self.names[i]}ID")
            for col, _t, _h in self.columns[i][:2]:
                items.append(f"{self.names[i]}.{col}")
        where = " AND ".join(joins + predicates)
        sql = f"SELECT {', '.join(items)} FROM {froms}"
        if where:
            sql += f" WHERE {where}"
        return sql


@pytest.mark.parametrize("seed", range(1, 11))
def test_random_schema_all_strategies_match_reference(seed):
    schema = RandomSchema(seed)
    db = GhostDB()
    for ddl in schema.ddl():
        db.execute(ddl)
    data = schema.data()
    db.load(data)
    checker = LeakChecker(db.schema, data)
    query_rng = random.Random(seed * 1000)
    for _q in range(4):
        sql = schema.random_query(query_rng)
        bound = db.bind(sql)
        expected = evaluate_reference(db.tree, data, bound)
        for strategy in enumerate_strategies(bound):
            db.reset_measurements()
            result = db.query_with_strategy(sql, strategy)
            assert same_rows(result.rows, expected), (
                f"seed={seed} strategy={strategy.label(bound)}\n{sql}"
            )
            report = checker.check(db.usb_log)
            assert report.ok, (
                f"seed={seed} leak: {report.summary()}\n{sql}"
            )
