"""Packed posting files and bounded-fan-in stream unions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.device import SmartUsbDevice
from repro.index.posting import (
    PostingFileWriter,
    merge_posting_streams,
)


def build_file(device, lists):
    writer = PostingFileWriter(device, "t")
    refs = []
    for ids in lists:
        writer.begin_list()
        for value in ids:
            writer.append(value)
        refs.append(writer.end_list())
    return writer.close(), refs


def test_single_list_roundtrip(device):
    file, refs = build_file(device, [[1, 5, 9, 200]])
    with file.open("r") as reader:
        assert list(reader.read_list(refs[0])) == [1, 5, 9, 200]


def test_many_lists_packed_into_one_extent(device):
    lists = [[i, i + 1000, i + 2000] for i in range(100)]
    file, refs = build_file(device, lists)
    # 300 ids x 4 B = 1200 B: everything fits on a single page.
    assert len(file.pages) == 1
    with file.open("r") as reader:
        for ids, ref in zip(lists, refs):
            assert list(reader.read_list(ref)) == ids


def test_list_spanning_pages(device):
    per_page = device.profile.page_size // 4
    big = list(range(per_page * 2 + 50))
    file, refs = build_file(device, [[7], big, [9]])
    with file.open("r") as reader:
        assert list(reader.read_list(refs[1])) == big
        assert list(reader.read_list(refs[0])) == [7]
        assert list(reader.read_list(refs[2])) == [9]


def test_small_list_uses_partial_read(device):
    file, refs = build_file(device, [[1, 2, 3]])
    with file.open("r") as reader:
        before = device.flash.stats.snapshot()
        list(reader.read_list(refs[0]))
        after = device.flash.stats
        assert after.page_reads_partial == before.page_reads_partial + 1
        assert after.page_reads_full == before.page_reads_full


def test_empty_list(device):
    file, refs = build_file(device, [[]])
    assert refs[0].count == 0
    with file.open("r") as reader:
        assert list(reader.read_list(refs[0])) == []


def test_unsorted_list_rejected(device):
    writer = PostingFileWriter(device, "t")
    writer.begin_list()
    writer.append(5)
    with pytest.raises(ValueError, match="sorted"):
        writer.append(3)


def test_writer_protocol_enforced(device):
    writer = PostingFileWriter(device, "t")
    with pytest.raises(ValueError, match="no posting list open"):
        writer.append(1)
    writer.begin_list()
    with pytest.raises(ValueError, match="not finished"):
        writer.begin_list()
    writer.end_list()
    writer.begin_list()
    with pytest.raises(ValueError, match="still open"):
        writer.close()


def test_flash_bytes_reports_whole_pages(device):
    file, _refs = build_file(device, [[1, 2, 3]])
    assert file.flash_bytes == device.profile.page_size


class TestMergePostingStreams:
    @staticmethod
    def factories_for(device, lists):
        file, refs = build_file(device, lists)

        def make(ref):
            def open_stream():
                reader = file.open("m")
                return reader.read_list(ref), reader.close

            return open_stream

        return [make(ref) for ref in refs]

    def test_union_of_disjoint_lists(self, device):
        factories = self.factories_for(
            device, [[1, 4], [2, 5], [3, 6]]
        )
        out = list(merge_posting_streams(device, factories, "t", fan_in=8))
        assert out == [1, 2, 3, 4, 5, 6]

    def test_dedup_union(self, device):
        factories = self.factories_for(device, [[1, 2, 3], [2, 3, 4]])
        out = list(merge_posting_streams(device, factories, "t", fan_in=8))
        assert out == [1, 2, 3, 4]

    def test_dedup_disabled(self, device):
        factories = self.factories_for(device, [[1, 2], [2, 3]])
        out = list(
            merge_posting_streams(device, factories, "t", fan_in=8, dedup=False)
        )
        assert out == [1, 2, 2, 3]

    def test_fan_in_overflow_spills_to_flash(self, device):
        lists = [[i, i + 100] for i in range(20)]
        factories = self.factories_for(device, lists)
        writes_before = device.flash.stats.page_writes
        out = list(merge_posting_streams(device, factories, "t", fan_in=4))
        assert device.flash.stats.page_writes > writes_before
        expected = sorted({x for lst in lists for x in lst})
        assert out == expected

    def test_empty_input(self, device):
        assert list(merge_posting_streams(device, [], "t", fan_in=4)) == []

    def test_bad_fan_in_rejected(self, device):
        with pytest.raises(ValueError, match="fan-in"):
            list(merge_posting_streams(device, [], "t", fan_in=1))

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(0, 1000), max_size=40).map(
                lambda xs: sorted(set(xs))
            ),
            max_size=12,
        ),
        st.integers(2, 5),
    )
    def test_union_property(self, lists, fan_in):
        """Property: merged output equals the sorted set union, for any
        fan-in (single-pass or spilled)."""
        device = SmartUsbDevice()
        factories = self.factories_for(device, lists)
        out = list(
            merge_posting_streams(device, factories, "p", fan_in=fan_in)
        )
        assert out == sorted({x for lst in lists for x in lst})
