"""The benchmark regression harness: artifact, comparator, scorecard.

One real (tiny) bench run is shared module-wide; everything else works
on artifact dicts, so the comparator's edge cases are cheap to cover.
"""

import copy
import json

import pytest

from repro.bench import (
    GATED_METRICS,
    SCENARIOS,
    SCHEMA_VERSION,
    BenchConfig,
    compare_artifacts,
    load_artifact,
    run_bench,
    select_scenarios,
)
from repro.bench.runner import main as bench_main
from repro.bench.scorecard import render_scorecard
from repro.optimizer.explain import (
    MISESTIMATE_THRESHOLD,
    explain_analyze,
    self_estimate,
)
from repro.privacy.leakcheck import LeakChecker
from repro.workload.datagen import DatasetConfig, MedicalDataGenerator
from repro.workload.queries import QUERY_FAMILIES, demo_query

BENCH_TEST_SCALE = 300


@pytest.fixture(scope="module")
def bench_run():
    """One full (tiny) bench run: every scenario plus the scorecard."""
    return run_bench(BenchConfig(scale=BENCH_TEST_SCALE))


# ----------------------------------------------------------------------
# Scenario registry
# ----------------------------------------------------------------------


class TestScenarios:
    def test_registry_covers_ten_scenarios(self):
        assert len(SCENARIOS) >= 10
        assert len({s.name for s in SCENARIOS}) == len(SCENARIOS)

    def test_select_by_name_and_unknown(self):
        picked = select_scenarios(["fig1-demo-query"])
        assert [s.name for s in picked] == ["fig1-demo-query"]
        with pytest.raises(KeyError):
            select_scenarios(["no-such-scenario"])


# ----------------------------------------------------------------------
# Artifact schema + redaction
# ----------------------------------------------------------------------


class TestArtifact:
    def test_schema_and_coverage(self, bench_run):
        artifact = bench_run.artifact
        assert artifact["kind"] == "ghostdb-bench"
        assert artifact["schema_version"] == SCHEMA_VERSION
        assert artifact["config"]["scale"] == BENCH_TEST_SCALE
        assert len(artifact["scenarios"]) >= 10
        for record in artifact["scenarios"].values():
            for metric in GATED_METRICS:
                assert metric in record
            assert record["wall_seconds"] >= 0
            assert record["sim_seconds"] > 0

    def test_json_round_trip(self, bench_run, tmp_path):
        path = tmp_path / "artifacts" / "BENCH_test.json"
        bench_run.write(str(path))
        loaded = load_artifact(str(path))
        # The redaction gate only touches strings this code authored,
        # so everything the comparator needs survives byte-identically.
        assert loaded["scenarios"] == bench_run.artifact["scenarios"]
        assert loaded["scorecard"] == bench_run.artifact["scorecard"]

    def test_load_rejects_foreign_and_future_json(self, tmp_path):
        foreign = tmp_path / "foreign.json"
        foreign.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="not a ghostdb-bench"):
            load_artifact(str(foreign))
        future = tmp_path / "future.json"
        future.write_text(
            json.dumps(
                {"kind": "ghostdb-bench", "schema_version": SCHEMA_VERSION + 1}
            )
        )
        with pytest.raises(ValueError, match="schema_version"):
            load_artifact(str(future))

    def test_payload_passes_adversarial_leak_check(self, bench_run):
        """The redacted payload is re-checked here with an independent
        checker over an identically-generated dataset."""
        data = MedicalDataGenerator(
            DatasetConfig(n_prescriptions=BENCH_TEST_SCALE)
        ).generate()
        from repro.core.ghostdb import GhostDB
        from repro.workload.queries import DEMO_SCHEMA_DDL

        db = GhostDB()
        for ddl in DEMO_SCHEMA_DDL:
            db.execute(ddl)
        checker = LeakChecker(db.schema, data)
        assert checker.pattern_count > 0
        report = checker.check_bytes(bench_run.payload, kind="bench")
        assert report.ok, report.summary()
        assert "CLEAN" in report.summary()

    def test_no_redaction_holes(self, bench_run):
        """Every token the artifact needs is vocabulary; nothing should
        have scrubbed to '?'."""
        assert b'"?"' not in bench_run.payload
        text = bench_run.payload.decode("utf-8")
        assert "?" not in text


# ----------------------------------------------------------------------
# Comparator edges
# ----------------------------------------------------------------------


def _tiny_artifact(**overrides) -> dict:
    artifact = {
        "kind": "ghostdb-bench",
        "schema_version": SCHEMA_VERSION,
        "created": "t",
        "config": {"scale": 100, "profile": "demo"},
        "scenarios": {
            "alpha": {metric: 10.0 for metric in GATED_METRICS},
            "beta": {metric: 5.0 for metric in GATED_METRICS},
        },
        "scorecard": {},
    }
    artifact.update(overrides)
    return artifact


class TestComparator:
    def test_identical_passes(self):
        base = _tiny_artifact()
        report = compare_artifacts(base, copy.deepcopy(base))
        assert report.ok
        assert report.scenarios_compared == 2
        assert "PASS" in report.render()

    def test_exact_equal_is_not_a_regression(self):
        """Boundary: equality passes even at zero tolerance."""
        base = _tiny_artifact()
        report = compare_artifacts(
            base, copy.deepcopy(base), tolerance=0.0
        )
        assert report.ok

    def test_regression_beyond_tolerance_fails(self):
        base = _tiny_artifact()
        worse = copy.deepcopy(base)
        worse["scenarios"]["alpha"]["sim_seconds"] = 10.0 * 1.05
        report = compare_artifacts(base, worse, tolerance=0.02)
        assert not report.ok
        assert any(
            d.metric == "sim_seconds" and d.scenario == "alpha"
            for d in report.regressions
        )
        assert "REGRESSION" in report.render()

    def test_growth_within_tolerance_passes(self):
        base = _tiny_artifact()
        slightly = copy.deepcopy(base)
        slightly["scenarios"]["alpha"]["sim_seconds"] = 10.0 * 1.01
        assert compare_artifacts(base, slightly, tolerance=0.02).ok

    def test_improvement_never_fails(self):
        base = _tiny_artifact()
        better = copy.deepcopy(base)
        for metric in GATED_METRICS:
            better["scenarios"]["alpha"][metric] = 1.0
        report = compare_artifacts(base, better)
        assert report.ok
        assert report.improvements

    def test_missing_scenario_fails(self):
        base = _tiny_artifact()
        current = copy.deepcopy(base)
        del current["scenarios"]["beta"]
        report = compare_artifacts(base, current)
        assert not report.ok
        assert report.missing_scenarios == ["beta"]
        assert "missing scenario" in report.render()

    def test_new_scenario_warns_but_passes(self):
        base = _tiny_artifact()
        current = copy.deepcopy(base)
        current["scenarios"]["gamma"] = {
            metric: 1.0 for metric in GATED_METRICS
        }
        report = compare_artifacts(base, current)
        assert report.ok
        assert report.new_scenarios == ["gamma"]
        assert "new scenario" in report.render()

    def test_config_mismatch_fails(self):
        base = _tiny_artifact()
        other = _tiny_artifact()
        other["config"]["scale"] = 999
        report = compare_artifacts(base, other)
        assert not report.ok
        assert any("scale" in e for e in report.config_errors)

    def test_wall_time_is_never_gated(self):
        base = _tiny_artifact()
        base["scenarios"]["alpha"]["wall_seconds"] = 1.0
        slow = copy.deepcopy(base)
        slow["scenarios"]["alpha"]["wall_seconds"] = 1000.0
        assert compare_artifacts(base, slow).ok

    def test_baseline_zero_to_nonzero_regresses(self):
        base = _tiny_artifact()
        base["scenarios"]["alpha"]["flash_page_writes"] = 0
        worse = copy.deepcopy(base)
        worse["scenarios"]["alpha"]["flash_page_writes"] = 3
        assert not compare_artifacts(base, worse).ok


# ----------------------------------------------------------------------
# Determinism: the property the whole gate rests on
# ----------------------------------------------------------------------


def test_rerun_reproduces_gated_metrics_exactly(bench_run):
    again = run_bench(
        BenchConfig(scale=BENCH_TEST_SCALE, scorecard=False)
    )
    report = compare_artifacts(
        bench_run.artifact, again.artifact, tolerance=0.0
    )
    # The re-run skipped the scorecard but ran every scenario: exact
    # equality on every gated metric, at zero tolerance.
    assert report.scenarios_compared == len(SCENARIOS)
    assert not report.regressions and not report.improvements
    assert report.ok


# ----------------------------------------------------------------------
# Scorecard
# ----------------------------------------------------------------------


class TestScorecard:
    def test_covers_every_family(self, bench_run):
        card = bench_run.artifact["scorecard"]
        assert set(card) == set(QUERY_FAMILIES)
        for row in card.values():
            assert row["candidates"] >= 1
            assert 0 < row["est_over_meas_geomean"]
            assert (
                row["est_over_meas_min"]
                <= row["est_over_meas_geomean"]
                <= row["est_over_meas_max"]
            )
            assert row["chosen_vs_best"] >= 1.0
            assert 0 <= row["misestimates"] <= row["candidates"]

    def test_render_is_tabular(self, bench_run):
        text = render_scorecard(bench_run.artifact["scorecard"])
        assert "family" in text and "geomean" in text
        assert len(text.splitlines()) == len(QUERY_FAMILIES) + 1

    def test_bench_report_feeds_histogram(self, demo_session):
        demo_session.reset_measurements()
        card = demo_session.bench_report()
        assert set(card) == set(QUERY_FAMILIES)
        histogram = demo_session.obs.registry.histogram(
            "ghostdb_optimizer_est_over_meas"
        )
        assert histogram.count() >= sum(
            row["candidates"] for row in card.values()
        ) - len(card)  # families with immeasurably fast plans skip ratios
        assert "ghostdb_optimizer_est_over_meas_bucket" in (
            demo_session.metrics_text()
        )


# ----------------------------------------------------------------------
# EXPLAIN ANALYZE scorecard columns
# ----------------------------------------------------------------------


class TestExplainAnalyzeScorecard:
    def test_per_node_est_vs_actual_columns(self, demo_session):
        demo_session.reset_measurements()
        report, result = demo_session.explain_analyze(demo_query())
        for line in report.splitlines():
            assert "est ~" in line and "actual" in line
            assert "flash" in line and "usb" in line and "ram" in line

    def test_histogram_fed_by_explain_analyze(self, demo_session):
        demo_session.reset_measurements()
        demo_session.explain_analyze(demo_query())
        histogram = demo_session.obs.registry.histogram(
            "ghostdb_optimizer_est_over_meas"
        )
        assert histogram.count() == 1

    def test_self_estimate_is_clamped_nonnegative(self, demo_session):
        bound = demo_session.bind(demo_query())
        plan = demo_session.optimizer.optimize(bound).plan
        model = demo_session.optimizer.cost_model
        for node in plan.walk():
            own = self_estimate(node, model)
            assert own.seconds >= 0
            assert own.ram_bytes >= 0

    def test_known_misestimate_is_flagged(self, demo_session):
        """Inflate one node's measured time far past the threshold: the
        renderer must flag exactly that node."""
        demo_session.reset_measurements()
        bound = demo_session.bind(demo_query())
        plan = demo_session.optimizer.optimize(bound).plan
        result = demo_session.executor.execute(plan)
        assert result.rows is not None
        model = demo_session.optimizer.cost_model
        honest = explain_analyze(plan, model)
        top = plan._measured
        original = top.self_seconds
        try:
            top.self_seconds = (
                max(original, 1e-3) * MISESTIMATE_THRESHOLD * 50
            )
            flagged = explain_analyze(plan, model)
        finally:
            top.self_seconds = original
        assert "MISESTIMATE" in flagged.splitlines()[0]
        assert flagged.count("MISESTIMATE") >= honest.count("MISESTIMATE")


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


class TestBenchCli:
    def test_bench_out_and_baseline_gate(self, tmp_path, capsys):
        out = tmp_path / "nested" / "BENCH_a.json"
        args = [
            "--scale", "300", "--no-scorecard",
            "--scenario", "fig1-demo-query",
            "--scenario", "t1-hash-join",
        ]
        assert bench_main(args + ["--bench-out", str(out)]) == 0
        assert out.exists()
        # Identical re-run against the artifact as baseline: PASS.
        out2 = tmp_path / "BENCH_b.json"
        code = bench_main(
            args + ["--bench-out", str(out2), "--baseline", str(out)]
        )
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        out = tmp_path / "BENCH_c.json"
        args = [
            "--scale", "300", "--no-scorecard",
            "--scenario", "fig1-demo-query",
            "--bench-out", str(out),
        ]
        assert bench_main(args) == 0
        doctored = json.loads(out.read_text())
        doctored["scenarios"]["fig1-demo-query"]["sim_seconds"] *= 2
        baseline_path = tmp_path / "baseline.json"
        # The doctored file plays the *baseline* upside down: make the
        # fresh run look like a regression by shrinking the baseline.
        doctored["scenarios"]["fig1-demo-query"]["sim_seconds"] /= 4
        baseline_path.write_text(json.dumps(doctored))
        code = bench_main(
            [
                "--scale", "300", "--no-scorecard",
                "--scenario", "fig1-demo-query",
                "--bench-out", str(tmp_path / "BENCH_d.json"),
                "--baseline", str(baseline_path),
            ]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_unknown_scenario_errors_cleanly(self, tmp_path, capsys):
        code = bench_main(
            ["--scale", "300", "--scenario", "nope",
             "--bench-out", str(tmp_path / "x.json")]
        )
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().out
