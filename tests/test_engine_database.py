"""HiddenDatabase loading: placement, indexes, stats, storage report."""

import pytest

from repro.catalog.schema import Schema
from repro.catalog.tree import SchemaTree
from repro.engine.database import HiddenDatabase
from repro.hardware.device import SmartUsbDevice
from repro.sql.ddl import create_table
from repro.sql.parser import parse_statement
from repro.workload.datagen import DatasetConfig, MedicalDataGenerator
from repro.workload.queries import DEMO_SCHEMA_DDL


@pytest.fixture(scope="module")
def loaded():
    schema = Schema()
    for ddl in DEMO_SCHEMA_DDL:
        create_table(schema, parse_statement(ddl))
    tree = SchemaTree(schema)
    data = MedicalDataGenerator(DatasetConfig(n_prescriptions=600)).generate()
    device = SmartUsbDevice()
    db = HiddenDatabase.load(device, tree, data)
    return device, tree, db, data


def test_every_table_has_a_heap(loaded):
    _d, tree, db, data = loaded
    for table in tree.schema:
        name = table.name.lower()
        assert db.heaps[name].count == len(data[name])


def test_heap_holds_device_columns_only(loaded):
    _d, tree, db, data = loaded
    heap = db.heaps["visit"]
    # Visit device columns: VisID, Purpose, DocID, PatID (not Date).
    assert heap.codec.arity == 4
    row = heap.row(0)
    source = data["visit"][0]
    assert row == (source[0], source[2], source[3], source[4])


def test_default_index_columns_are_hidden_attributes(loaded):
    _d, _t, db, _data = loaded
    indexed = set(db.climbing)
    assert indexed == {
        ("patient", "name"),
        ("patient", "bodymassindex"),
        ("visit", "purpose"),
        ("prescription", "quantity"),
        ("prescription", "whenwritten"),
    }


def test_key_indexes_on_every_non_root_table(loaded):
    _d, _t, db, _data = loaded
    assert set(db.key_indexes) == {"doctor", "patient", "medicine", "visit"}


def test_skts_for_internal_nodes(loaded):
    _d, _t, db, _data = loaded
    assert set(db.skts) == {"prescription", "visit"}


def test_stats_cover_device_columns(loaded):
    _d, _t, db, data = loaded
    stats = db.table_stats("visit")
    assert stats.row_count == len(data["visit"])
    assert "purpose" in stats.columns
    assert "docid" in stats.columns
    assert "date" not in stats.columns  # visible-only column


def test_missing_table_rows_rejected():
    schema = Schema()
    for ddl in DEMO_SCHEMA_DDL:
        create_table(schema, parse_statement(ddl))
    tree = SchemaTree(schema)
    with pytest.raises(ValueError, match="no rows provided"):
        HiddenDatabase.load(SmartUsbDevice(), tree, {"visit": []})


def test_storage_report_accounts_every_structure(loaded):
    _d, _t, db, _data = loaded
    report = db.storage_report()
    assert set(report.heap_bytes) == set(db.heaps)
    assert report.base_total > 0
    assert report.index_total > 0
    assert "SKT_prescription" in report.skt_bytes
    assert "cidx:visit.purpose" in report.index_bytes
    assert "kidx:visit" in report.index_bytes


def test_explicit_index_columns_respected():
    schema = Schema()
    for ddl in DEMO_SCHEMA_DDL:
        create_table(schema, parse_statement(ddl))
    tree = SchemaTree(schema)
    data = MedicalDataGenerator(DatasetConfig(n_prescriptions=200)).generate()
    db = HiddenDatabase.load(
        SmartUsbDevice(), tree, data, index_columns=[("visit", "purpose")]
    )
    assert set(db.climbing) == {("visit", "purpose")}


def test_row_count_helper(loaded):
    _d, _t, db, data = loaded
    assert db.row_count("prescription") == len(data["prescription"])
