"""Multi-session split: leases, activation, admission, bit-identity.

The refactor's safety contract: sessions are an *interleaving* of the
same serial executions, never a change to them.  A full-RAM lease must
be indistinguishable from the classic single-session facade, and N
leased sessions interleaved by the scheduler must produce per-session
rows, hardware counters and leak signatures bit-identical to the same
sessions run serially.
"""

from __future__ import annotations

from functools import lru_cache

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ghostdb import AdmissionError, GhostDB, SessionConfig, SessionError
from repro.core.scheduler import Scheduler
from repro.engine.executor import ExecConfig
from repro.privacy.meter import profile_records
from repro.workload.datagen import DatasetConfig, MedicalDataGenerator
from repro.workload.queries import (
    DEMO_SCHEMA_DDL,
    QUERY_FAMILIES,
    demo_query,
)

SCALE = 200

#: Per-session statement mix: the paper demo plus one pure-visible and
#: one pure-hidden selection, so sessions exercise both site paths.
STATEMENTS = (
    demo_query(),
    QUERY_FAMILIES["visible-only"],
    QUERY_FAMILIES["hidden-only"],
)

#: Every deterministic per-query counter; ``elapsed_seconds`` rides
#: along because the session's private clock sees the same charge
#: sequence serial or interleaved.
METRIC_FIELDS = (
    "elapsed_seconds",
    "flash_page_reads",
    "flash_page_writes",
    "flash_block_erases",
    "usb_messages",
    "usb_bytes_to_device",
    "usb_bytes_to_host",
    "ram_high_water",
    "cache_hits",
    "cache_misses",
    "result_rows",
)


@lru_cache(maxsize=1)
def small_data() -> dict[str, list]:
    return MedicalDataGenerator(
        DatasetConfig(n_prescriptions=SCALE)
    ).generate()


def build_db(config: SessionConfig | None = None) -> GhostDB:
    db = GhostDB(config=config) if config is not None else GhostDB()
    for ddl in DEMO_SCHEMA_DDL:
        db.execute(ddl)
    db.load(small_data())
    return db


def metric_values(metrics) -> tuple:
    return tuple(getattr(metrics, name) for name in METRIC_FIELDS)


def session_fingerprint(ctx) -> tuple:
    """What a session observed: its USB capture's shape signature."""
    records = ctx.usb_log
    return (len(records), profile_records(records).signature_int)


# ---------------------------------------------------------------------------
# Identity: a full-RAM lease is the classic single session.
# ---------------------------------------------------------------------------


def test_full_ram_lease_matches_default_session():
    reference = build_db()
    outcomes = []
    for sql in STATEMENTS:
        result = reference.query(sql)
        outcomes.append((result.rows, metric_values(result.metrics)))

    db = build_db()
    ctx = db.open_session("solo", ram_bytes=db.profile.ram_bytes)
    for sql, (ref_rows, ref_metrics) in zip(STATEMENTS, outcomes):
        result = ctx.query(sql)
        assert result.rows == ref_rows
        assert metric_values(result.metrics) == ref_metrics
    db.close_session(ctx)
    assert db.core.leased_bytes == 0


def test_default_session_untouched_by_leased_traffic():
    db = build_db()
    sql = STATEMENTS[0]
    db.query(sql)  # warm the default buffer pool
    db.reset_measurements()
    reference = db.query(sql)

    ctx = db.open_session("tenant")
    for statement in STATEMENTS:
        ctx.query(statement)
    db.close_session(ctx)

    db.reset_measurements()
    again = db.query(sql)
    assert again.rows == reference.rows
    assert metric_values(again.metrics) == metric_values(reference.metrics)


# ---------------------------------------------------------------------------
# Property: interleaved == serial, at any fan-out and window size.
# ---------------------------------------------------------------------------


@settings(max_examples=9, deadline=None)
@given(n=st.sampled_from([1, 2, 4]), batch=st.sampled_from([1, 7, 256]))
def test_interleaved_sessions_bit_identical_to_serial(n, batch):
    config = SessionConfig(exec_config=ExecConfig(exec_batch=batch))
    partition = None  # the default quarter-RAM partition, n <= 4 fits
    names = [f"client-{i}" for i in range(n)]

    # Serial reference: each session runs its statements to completion
    # before the next session starts.
    serial_db = build_db()
    serial = {}
    for name in names:
        ctx = serial_db.open_session(name, ram_bytes=partition, config=config)
        runs = [ctx.query(sql) for sql in STATEMENTS]
        serial[name] = (
            [(r.rows, metric_values(r.metrics)) for r in runs],
            session_fingerprint(ctx),
        )
    for name in names:
        serial_db.close_session(serial_db.core.sessions[name])

    # Interleaved run: same sessions, all statements in flight at once.
    db = build_db()
    sessions = {
        name: db.open_session(name, ram_bytes=partition, config=config)
        for name in names
    }
    # One wave per statement index: every session has exactly one
    # statement in flight, so the interleaving is *across* sessions
    # while each session's own statement order is preserved (a session
    # is one client connection -- it sends its next statement after the
    # previous answer arrives).
    sched = Scheduler(db.core)
    tickets = []
    for sql in STATEMENTS:
        tickets.extend(sched.submit(sessions[name], sql) for name in names)
        sched.run()

    per_session: dict[str, list] = {name: [] for name in names}
    for ticket in tickets:
        assert ticket.error is None
        per_session[ticket.session].append(ticket.result)
    for name in names:
        ref_runs, ref_fingerprint = serial[name]
        got = [
            (r.rows, metric_values(r.metrics)) for r in per_session[name]
        ]
        assert got == ref_runs, f"{name} diverged under interleaving"
        assert session_fingerprint(sessions[name]) == ref_fingerprint

    # The spy's interleaved capture is exactly the union of the
    # per-session captures -- mirroring loses and invents nothing.
    assert len(db.usb_log) == sum(
        len(ctx.usb_log) for ctx in sessions.values()
    )
    # Partitions never collude past the secure budget.
    assert (
        sum(ctx.lease.ram.high_water for ctx in sessions.values())
        <= db.profile.ram_bytes
    )
    for name in names:
        ctx = sessions[name]
        assert ctx.lease.firm_ram_used == 0
        db.close_session(ctx)
    assert db.core.leased_bytes == 0


# ---------------------------------------------------------------------------
# Teardown: an abandoned mid-flight query releases its whole partition.
# ---------------------------------------------------------------------------


def test_aborted_query_releases_full_partition():
    db = build_db()
    ctx = db.open_session(
        "doomed",
        config=SessionConfig(exec_config=ExecConfig(exec_batch=1)),
    )
    # A full projection scan: hundreds of one-tuple windows, so the
    # generator is guaranteed to still be mid-flight after a few steps.
    gen = ctx.statement_steps(
        "SELECT Pre.Quantity, Pre.Frequency FROM Prescription Pre"
    )
    with db.core.activated(ctx.lease):
        for _ in range(3):
            next(gen)
    assert ctx.lease.ram.used > 0, "mid-flight plan should hold reservations"
    with db.core.activated(ctx.lease):
        gen.close()
    assert ctx.lease.firm_ram_used == 0
    db.close_session(ctx)
    assert db.core.leased_bytes == 0


# ---------------------------------------------------------------------------
# Admission control.
# ---------------------------------------------------------------------------


def test_open_session_requires_loaded_data():
    db = GhostDB()
    with pytest.raises(SessionError):
        db.open_session("early")


def test_duplicate_name_rejected():
    db = build_db()
    db.open_session("alice")
    with pytest.raises(AdmissionError):
        db.open_session("alice")
    rejections = db.obs.registry.counter("ghostdb_session_rejections_total")
    assert rejections.value(reason="duplicate_name") == 1


def test_session_cap_rejects_then_admits_after_close():
    db = build_db(SessionConfig(max_sessions=2))
    first = db.open_session("one", ram_bytes=4096)
    db.open_session("two", ram_bytes=4096)
    with pytest.raises(AdmissionError):
        db.open_session("three", ram_bytes=4096)
    db.close_session(first)
    db.open_session("three", ram_bytes=4096)
    rejections = db.obs.registry.counter("ghostdb_session_rejections_total")
    assert rejections.value(reason="session_cap") == 1


def test_ram_budget_is_a_hard_wall():
    db = build_db()
    budget = db.profile.ram_bytes
    db.open_session("hog", ram_bytes=budget)
    with pytest.raises(AdmissionError):
        db.open_session("starved", ram_bytes=1)
    rejections = db.obs.registry.counter("ghostdb_session_rejections_total")
    assert rejections.value(reason="ram_budget") == 1
    assert db.core.leased_bytes == budget


def test_close_releases_slot_and_double_close_raises():
    db = build_db()
    ctx = db.open_session("once")
    assert db.core.leased_bytes == ctx.lease.capacity
    db.close_session(ctx)
    assert db.core.leased_bytes == 0
    with pytest.raises(SessionError):
        db.close_session(ctx)
    with pytest.raises(SessionError):
        ctx.query(STATEMENTS[0])


def test_session_gauges_track_open_population():
    db = build_db()
    a = db.open_session("a")
    b = db.open_session("b")
    gauge = db.obs.registry.gauge("ghostdb_sessions_open")
    assert gauge.value() == 2
    db.close_session(a)
    assert gauge.value() == 1
    db.close_session(b)
    assert gauge.value() == 0
    opened = db.obs.registry.counter("ghostdb_sessions_opened_total")
    closed = db.obs.registry.counter("ghostdb_sessions_closed_total")
    assert opened.value() == closed.value() == 2


# ---------------------------------------------------------------------------
# Activation discipline.
# ---------------------------------------------------------------------------


def test_nested_foreign_activation_is_a_scheduling_bug():
    db = build_db()
    a = db.open_session("a")
    b = db.open_session("b")
    with db.core.activated(a.lease):
        with pytest.raises(SessionError):
            with db.core.activated(b.lease):
                pass  # pragma: no cover
        # Re-entry with the active lease and the default session are
        # both no-ops.
        with db.core.activated(a.lease):
            pass
        with db.core.activated(None):
            pass


def test_cannot_close_session_mid_step():
    db = build_db()
    ctx = db.open_session("busy")
    with db.core.activated(ctx.lease):
        with pytest.raises(SessionError):
            db.close_session(ctx)
    db.close_session(ctx)
