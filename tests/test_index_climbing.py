"""Climbing indexes: per-level postings cross-checked against brute force
(the Figure 4 semantics)."""

import pytest

from repro.catalog.schema import Schema
from repro.catalog.tree import SchemaTree
from repro.engine.database import HiddenDatabase
from repro.hardware.device import SmartUsbDevice
from repro.index.posting import merge_posting_streams
from repro.sql.ddl import create_table
from repro.sql.parser import parse_statement
from repro.workload.datagen import DatasetConfig, MedicalDataGenerator
from repro.workload.queries import DEMO_SCHEMA_DDL


@pytest.fixture(scope="module")
def loaded():
    schema = Schema()
    for ddl in DEMO_SCHEMA_DDL:
        create_table(schema, parse_statement(ddl))
    tree = SchemaTree(schema)
    data = MedicalDataGenerator(DatasetConfig(n_prescriptions=800)).generate()
    device = SmartUsbDevice()
    db = HiddenDatabase.load(
        device, tree, data,
        index_columns=[
            ("visit", "purpose"),
            ("prescription", "quantity"),
            ("patient", "bodymassindex"),
        ],
    )
    return device, tree, db, data


def brute_ids(data, purpose):
    """Ground truth for the Vis.Purpose index at each level."""
    vis_ids = sorted(r[0] for r in data["visit"] if r[2] == purpose)
    vis_set = set(vis_ids)
    pre_ids = sorted(r[0] for r in data["prescription"] if r[5] in vis_set)
    return vis_ids, pre_ids


def read_stream(factory):
    iterator, closer = factory()
    try:
        return list(iterator)
    finally:
        closer()


class TestAttributeIndex:
    def test_levels_follow_path_to_root(self, loaded):
        _d, _t, db, _data = loaded
        index = db.climbing[("visit", "purpose")]
        assert index.levels == ["visit", "prescription"]
        bmi = db.climbing[("patient", "bodymassindex")]
        assert bmi.levels == ["patient", "visit", "prescription"]

    def test_level0_postings_match_brute_force(self, loaded):
        _d, _t, db, data = loaded
        index = db.climbing[("visit", "purpose")]
        vis_ids, _pre = brute_ids(data, "Sclerosis")
        got = read_stream(index.stream_eq("Sclerosis", "visit"))
        assert got == vis_ids

    def test_root_postings_precompute_the_join(self, loaded):
        """The Figure 4 property: the entry for a value carries root IDs
        directly."""
        _d, _t, db, data = loaded
        index = db.climbing[("visit", "purpose")]
        _vis, pre_ids = brute_ids(data, "Sclerosis")
        got = read_stream(index.stream_eq("Sclerosis", "prescription"))
        assert got == pre_ids

    def test_two_level_climb(self, loaded):
        _d, _t, db, data = loaded
        index = db.climbing[("patient", "bodymassindex")]
        heavy = sorted(r[0] for r in data["patient"] if r[3] == data["patient"][0][3])
        got = read_stream(
            index.stream_eq(data["patient"][0][3], "patient")
        )
        assert got == heavy

    def test_absent_value_returns_none(self, loaded):
        _d, _t, db, _data = loaded
        index = db.climbing[("visit", "purpose")]
        assert index.stream_eq("No Such Purpose", "prescription") is None

    def test_unknown_level_rejected(self, loaded):
        _d, _t, db, _data = loaded
        index = db.climbing[("visit", "purpose")]
        with pytest.raises(KeyError, match="no level"):
            index.stream_eq("Sclerosis", "doctor")

    def test_range_lookup_matches_brute_force(self, loaded):
        _d, _t, db, data = loaded
        index = db.climbing[("prescription", "quantity")]
        expected = sorted(
            r[0] for r in data["prescription"] if 3 <= r[1] <= 5
        )
        factories = index.streams_range(3, True, 5, True, "prescription")
        got = list(
            merge_posting_streams(_d, factories, "t", fan_in=8)
        )
        assert got == expected

    def test_range_exclusive_bounds(self, loaded):
        _d, _t, db, data = loaded
        index = db.climbing[("prescription", "quantity")]
        expected = sorted(
            r[0] for r in data["prescription"] if 3 < r[1] < 5
        )
        factories = index.streams_range(3, False, 5, False, "prescription")
        got = list(merge_posting_streams(_d, factories, "t", fan_in=8))
        assert got == expected

    def test_open_range(self, loaded):
        _d, _t, db, data = loaded
        index = db.climbing[("prescription", "quantity")]
        expected = sorted(r[0] for r in data["prescription"] if r[1] >= 8)
        factories = index.streams_range(8, True, None, True, "prescription")
        got = list(merge_posting_streams(_d, factories, "t", fan_in=8))
        assert got == expected

    def test_empty_range(self, loaded):
        _d, _t, db, _data = loaded
        index = db.climbing[("prescription", "quantity")]
        assert index.streams_range(100, True, 200, True, "prescription") == []

    def test_directory_probe_charged(self, loaded):
        device, _t, db, _data = loaded
        index = db.climbing[("visit", "purpose")]
        before = device.flash.stats.page_reads_partial
        index.stream_eq("Sclerosis", "prescription")
        assert device.flash.stats.page_reads_partial > before


class TestKeyIndex:
    def test_key_index_flags(self, loaded):
        _d, _t, db, _data = loaded
        assert db.key_indexes["visit"].is_key_index
        assert not db.climbing[("visit", "purpose")].is_key_index

    def test_level0_is_identity(self, loaded):
        _d, _t, db, _data = loaded
        index = db.key_indexes["visit"]
        assert read_stream(index.stream_eq(17, "visit")) == [17]

    def test_conversion_matches_brute_force(self, loaded):
        _d, _t, db, data = loaded
        index = db.key_indexes["visit"]
        expected = sorted(
            r[0] for r in data["prescription"] if r[5] == 17
        )
        assert read_stream(index.stream_eq(17, "prescription")) == expected

    def test_two_edge_conversion(self, loaded):
        """Doctor -> Prescription via the key index on Doctor."""
        _d, _t, db, data = loaded
        index = db.key_indexes["doctor"]
        doc = data["doctor"][-1][0]
        vis = {r[0] for r in data["visit"] if r[3] == doc}
        expected = sorted(
            r[0] for r in data["prescription"] if r[5] in vis
        )
        assert read_stream(index.stream_eq(doc, "prescription")) == expected

    def test_posting_count(self, loaded):
        _d, _t, db, data = loaded
        index = db.key_indexes["visit"]
        expected = sum(1 for r in data["prescription"] if r[5] == 17)
        assert index.posting_count(17, "prescription") == expected
        assert index.posting_count(17, "visit") == 1
        assert index.posting_count(999_999, "prescription") == 0


class TestIntrospection:
    def test_level_stats_total_ids(self, loaded):
        _d, _t, db, data = loaded
        index = db.climbing[("visit", "purpose")]
        assert index.level_stats[0].total_ids == len(data["visit"])
        assert index.level_stats[1].total_ids == len(data["prescription"])

    def test_flash_bytes_positive(self, loaded):
        _d, _t, db, _data = loaded
        assert db.climbing[("visit", "purpose")].flash_bytes > 0

    def test_describe_mentions_levels(self, loaded):
        _d, _t, db, _data = loaded
        text = db.climbing[("patient", "bodymassindex")].describe()
        assert "level 0" in text and "level 2" in text
