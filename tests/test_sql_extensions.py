"""Extended SQL: IN lists, aggregates, GROUP BY, ORDER BY, LIMIT.

These go beyond the demo paper's SPJ focus (its companion system handles
aggregation); semantics are checked against the reference evaluator and,
for the device-side operators, against RAM-pressure behaviour.
"""

import pytest

from repro.core.ghostdb import GhostDB
from repro.hardware.profiles import TINY_DEVICE
from repro.reference import evaluate_reference, same_rows
from repro.sql import ast
from repro.sql.binder import IN
from repro.sql.errors import BindError, ParseError
from repro.sql.parser import parse_statement
from repro.workload.queries import DEMO_SCHEMA_DDL


def norm(rows):
    return sorted(
        tuple(round(v, 9) if isinstance(v, float) else v for v in row)
        for row in rows
    )


class TestParserExtensions:
    def test_in_list(self):
        stmt = parse_statement(
            "SELECT a FROM t WHERE a IN (1, 2, 3)"
        )
        condition = stmt.where[0]
        assert isinstance(condition, ast.InList)
        assert condition.values == (1, 2, 3)

    def test_in_requires_column(self):
        with pytest.raises(ParseError, match="column"):
            parse_statement("SELECT a FROM t WHERE 5 IN (1, 2)")

    def test_aggregates_parse(self):
        stmt = parse_statement(
            "SELECT count(*), SUM(x), avg(t.y) FROM t GROUP BY z"
        )
        assert stmt.items[0] == ast.AggregateRef("count", None)
        assert stmt.items[1] == ast.AggregateRef("sum", ast.ColumnRef("x"))
        assert stmt.items[2] == ast.AggregateRef(
            "avg", ast.ColumnRef("y", "t")
        )
        assert stmt.group_by == [ast.ColumnRef("z")]

    def test_star_only_for_count(self):
        with pytest.raises(ParseError, match="COUNT"):
            parse_statement("SELECT sum(*) FROM t")

    def test_column_named_like_function_still_works(self):
        stmt = parse_statement("SELECT count FROM t")
        assert stmt.items[0] == ast.ColumnRef("count")

    def test_order_by_and_limit(self):
        stmt = parse_statement(
            "SELECT a, b FROM t ORDER BY a DESC, b LIMIT 7"
        )
        assert stmt.order_by[0] == ast.OrderItem(ast.ColumnRef("a"), False)
        assert stmt.order_by[1] == ast.OrderItem(ast.ColumnRef("b"), True)
        assert stmt.limit == 7

    def test_limit_requires_integer(self):
        with pytest.raises(ParseError, match="integer"):
            parse_statement("SELECT a FROM t LIMIT 1.5")


class TestBinderExtensions:
    def test_in_predicate_normalised(self, demo_session):
        bound = demo_session.bind(
            "SELECT Date FROM Visit "
            "WHERE Purpose IN ('Sclerosis', 'Neuropathy', 'Sclerosis')"
        )
        pred = bound.predicates[0]
        assert pred.kind == IN
        assert pred.values == ("Neuropathy", "Sclerosis")
        assert pred.hidden
        assert pred.matches("Sclerosis") and not pred.matches("Checkup")

    def test_in_values_type_checked(self, demo_session):
        with pytest.raises(BindError, match="does not fit"):
            demo_session.bind(
                "SELECT Date FROM Visit WHERE Purpose IN ('a', 5)"
            )

    def test_ungrouped_column_rejected(self, demo_session):
        with pytest.raises(BindError, match="GROUP BY"):
            demo_session.bind(
                "SELECT Purpose, count(*) FROM Visit GROUP BY Date"
            )

    def test_sum_requires_numeric(self, demo_session):
        with pytest.raises(BindError, match="numeric"):
            demo_session.bind("SELECT sum(Purpose) FROM Visit")

    def test_order_by_must_be_selected(self, demo_session):
        with pytest.raises(BindError, match="select list"):
            demo_session.bind(
                "SELECT Date FROM Visit ORDER BY Purpose"
            )

    def test_output_metadata(self, demo_session):
        bound = demo_session.bind(
            "SELECT Purpose, count(*), avg(PatID) FROM Visit "
            "GROUP BY Purpose"
        )
        assert bound.is_grouped
        assert bound.output_labels == [
            "visit.Purpose", "count(*)", "avg(visit.PatID)",
        ]
        assert [kind for kind, _r in bound.output_items] == [
            "key", "agg", "agg",
        ]


class TestInExecution:
    def test_hidden_in_uses_climbing_union(self, demo_session, demo_data):
        sql = (
            "SELECT Pre.Quantity FROM Prescription Pre, Visit Vis "
            "WHERE Vis.Purpose IN ('Sclerosis', 'Neuropathy') "
            "AND Vis.VisID = Pre.VisID"
        )
        bound = demo_session.bind(sql)
        expected = evaluate_reference(demo_session.tree, demo_data, bound)
        result = demo_session.query(sql)
        assert same_rows(result.rows, expected)
        assert result.rows

    def test_visible_in_delegated(self, demo_session, demo_data):
        sql = (
            "SELECT Med.Name, Pre.Quantity FROM Medicine Med, "
            "Prescription Pre WHERE Med.Type IN ('Statin', 'Insulin') "
            "AND Med.MedID = Pre.MedID"
        )
        bound = demo_session.bind(sql)
        expected = evaluate_reference(demo_session.tree, demo_data, bound)
        for strategy in __import__(
            "repro.optimizer.space", fromlist=["enumerate_strategies"]
        ).enumerate_strategies(bound):
            demo_session.reset_measurements()
            result = demo_session.query_with_strategy(sql, strategy)
            assert same_rows(result.rows, expected)

    def test_hidden_int_in(self, demo_session, demo_data):
        sql = (
            "SELECT Quantity FROM Prescription WHERE Quantity IN (1, 9)"
        )
        bound = demo_session.bind(sql)
        expected = evaluate_reference(demo_session.tree, demo_data, bound)
        result = demo_session.query(sql)
        assert same_rows(result.rows, expected)


class TestAggregateExecution:
    CASES = {
        "count-per-purpose": """
            SELECT Vis.Purpose, count(*) FROM Prescription Pre, Visit Vis
            WHERE Vis.VisID = Pre.VisID GROUP BY Vis.Purpose""",
        "avg-and-sum": """
            SELECT Med.Type, sum(Pre.Quantity), avg(Pre.Quantity)
            FROM Medicine Med, Prescription Pre
            WHERE Med.MedID = Pre.MedID GROUP BY Med.Type""",
        "min-max-dates": """
            SELECT Pre.Quantity, min(Pre.WhenWritten), max(Pre.WhenWritten)
            FROM Prescription Pre GROUP BY Pre.Quantity""",
        "scalar-count": """
            SELECT count(*) FROM Visit WHERE Purpose = 'Sclerosis'""",
        "distinct-via-group": """
            SELECT Med.Type FROM Medicine Med, Prescription Pre
            WHERE Med.MedID = Pre.MedID GROUP BY Med.Type""",
        "grouped-with-hidden-filter": """
            SELECT Vis.Purpose, count(*) FROM Prescription Pre, Visit Vis
            WHERE Pre.Quantity > 7 AND Vis.VisID = Pre.VisID
            GROUP BY Vis.Purpose""",
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_matches_reference(self, demo_session, demo_data, name):
        sql = self.CASES[name]
        bound = demo_session.bind(sql)
        expected = evaluate_reference(demo_session.tree, demo_data, bound)
        demo_session.reset_measurements()
        result = demo_session.query(sql)
        assert norm(result.rows) == norm(expected), name

    def test_aggregation_stays_on_device(self, demo_session, demo_data):
        """An aggregate over hidden values must not push those values to
        the host: the spy sees requests and IDs only."""
        from repro.privacy.leakcheck import LeakChecker

        checker = LeakChecker(demo_session.schema, demo_data)
        demo_session.reset_measurements()
        demo_session.query(
            "SELECT Vis.Purpose, avg(Pre.Quantity) "
            "FROM Prescription Pre, Visit Vis "
            "WHERE Vis.VisID = Pre.VisID GROUP BY Vis.Purpose"
        )
        report = checker.check(demo_session.usb_log)
        assert report.ok, report.summary()

    def test_empty_input_yields_no_groups(self, demo_session):
        """Documented deviation: scalar aggregates over an empty input
        return zero rows (NULL-free dialect)."""
        result = demo_session.query(
            "SELECT count(*) FROM Visit WHERE Purpose = 'No Such'"
        )
        assert result.rows == []

    def test_spill_path_under_tiny_ram(self, demo_data):
        """Too many groups for 16 KB: the operator must spill to a
        key-ordered external sort and still aggregate correctly."""
        db = GhostDB(profile=TINY_DEVICE)
        for ddl in DEMO_SCHEMA_DDL:
            db.execute(ddl)
        db.load(demo_data)
        sql = (
            "SELECT Pre.WhenWritten, count(*) FROM Prescription Pre "
            "GROUP BY Pre.WhenWritten"
        )
        bound = db.bind(sql)
        expected = evaluate_reference(db.tree, demo_data, bound)
        db.reset_measurements()
        result = db.query(sql)
        assert norm(result.rows) == norm(expected)
        aggregate_ops = [
            op for op in result.metrics.operators if op.name == "aggregate"
        ]
        assert aggregate_ops
        assert result.metrics.flash_page_writes > 0  # the spill

    def test_hash_path_on_roomy_device(self, demo_session, demo_data):
        sql = (
            "SELECT Vis.Purpose, count(*) FROM Prescription Pre, "
            "Visit Vis WHERE Vis.VisID = Pre.VisID GROUP BY Vis.Purpose"
        )
        demo_session.reset_measurements()
        result = demo_session.query(sql)
        # Nine purposes: tiny hash state, no spill writes at all beyond
        # what the SPJ part of the plan needs.
        assert result.metrics.flash_page_writes == 0


class TestOrderByLimit:
    def test_order_by_date_desc(self, demo_session, demo_data):
        sql = (
            "SELECT Vis.Date, Pre.Quantity FROM Prescription Pre, "
            "Visit Vis WHERE Vis.Purpose = 'Sclerosis' "
            "AND Vis.VisID = Pre.VisID ORDER BY Vis.Date DESC"
        )
        result = demo_session.query(sql)
        dates = [row[0] for row in result.rows]
        assert dates == sorted(dates, reverse=True)
        bound = demo_session.bind(sql)
        expected = evaluate_reference(demo_session.tree, demo_data, bound)
        assert same_rows(result.rows, expected)

    def test_secondary_key(self, demo_session):
        sql = (
            "SELECT Pre.Quantity, Pre.PreID FROM Prescription Pre "
            "WHERE Pre.Quantity IN (3, 4) "
            "ORDER BY Pre.Quantity DESC, Pre.PreID ASC"
        )
        result = demo_session.query(sql)
        assert result.rows == sorted(
            result.rows, key=lambda r: (-r[0], r[1])
        )

    def test_limit_truncates_and_stops_early(self, demo_session):
        full = demo_session.query(
            "SELECT Quantity FROM Prescription WHERE Quantity = 5"
        )
        demo_session.reset_measurements()
        limited = demo_session.query(
            "SELECT Quantity FROM Prescription WHERE Quantity = 5 LIMIT 3"
        )
        assert len(limited.rows) == 3
        assert len(full.rows) > 3
        # Early stop: the limited run fetched fewer visible batches /
        # read less flash than the full one.
        assert (
            limited.metrics.flash_page_reads
            <= full.metrics.flash_page_reads
        )

    def test_limit_zero(self, demo_session):
        result = demo_session.query(
            "SELECT Quantity FROM Prescription LIMIT 0"
        )
        assert result.rows == []

    def test_order_by_on_aggregate_keys(self, demo_session, demo_data):
        sql = (
            "SELECT Med.Type, count(*) FROM Medicine Med, "
            "Prescription Pre WHERE Med.MedID = Pre.MedID "
            "GROUP BY Med.Type ORDER BY Med.Type DESC LIMIT 3"
        )
        bound = demo_session.bind(sql)
        expected = evaluate_reference(demo_session.tree, demo_data, bound)
        result = demo_session.query(sql)
        assert norm(result.rows) == norm(expected)
        types = [row[0] for row in result.rows]
        assert types == sorted(types, reverse=True)


class TestHaving:
    def test_having_on_aggregate(self, demo_session, demo_data):
        sql = """
            SELECT Vis.Purpose, count(*) FROM Prescription Pre, Visit Vis
            WHERE Vis.VisID = Pre.VisID GROUP BY Vis.Purpose
            HAVING count(*) > 200"""
        bound = demo_session.bind(sql)
        expected = evaluate_reference(demo_session.tree, demo_data, bound)
        result = demo_session.query(sql)
        assert norm(result.rows) == norm(expected)
        assert all(row[1] > 200 for row in result.rows)

    def test_having_aggregate_not_in_select(self, demo_session, demo_data):
        """HAVING may use an aggregate the select list omits."""
        sql = """
            SELECT Med.Type FROM Medicine Med, Prescription Pre
            WHERE Med.MedID = Pre.MedID GROUP BY Med.Type
            HAVING avg(Pre.Quantity) >= 5.4"""
        bound = demo_session.bind(sql)
        assert len(bound.aggregates) == 1  # registered, output-less
        expected = evaluate_reference(demo_session.tree, demo_data, bound)
        result = demo_session.query(sql)
        assert norm(result.rows) == norm(expected)

    def test_having_on_group_key(self, demo_session, demo_data):
        sql = """
            SELECT Vis.Purpose, count(*) FROM Visit Vis
            GROUP BY Vis.Purpose HAVING Vis.Purpose <> 'Sclerosis'"""
        result = demo_session.query(sql)
        assert result.rows
        assert all(row[0] != "Sclerosis" for row in result.rows)

    def test_having_conjunction(self, demo_session, demo_data):
        sql = """
            SELECT Med.Type, count(*) FROM Medicine Med, Prescription Pre
            WHERE Med.MedID = Pre.MedID GROUP BY Med.Type
            HAVING count(*) > 50 AND count(*) < 500"""
        bound = demo_session.bind(sql)
        expected = evaluate_reference(demo_session.tree, demo_data, bound)
        result = demo_session.query(sql)
        assert norm(result.rows) == norm(expected)
        assert all(50 < row[1] < 500 for row in result.rows)

    def test_having_reuses_select_aggregate(self, demo_session):
        bound = demo_session.bind(
            "SELECT Med.Type, count(*) FROM Medicine Med, Prescription "
            "Pre WHERE Med.MedID = Pre.MedID GROUP BY Med.Type "
            "HAVING count(*) > 10"
        )
        assert len(bound.aggregates) == 1  # not duplicated

    def test_having_without_group_rejected(self, demo_session):
        with pytest.raises(BindError, match="HAVING requires"):
            demo_session.bind(
                "SELECT Date FROM Visit HAVING count(*) > 1"
            )

    def test_having_on_non_key_column_rejected(self, demo_session):
        with pytest.raises(BindError, match="GROUP BY key"):
            demo_session.bind(
                "SELECT Purpose, count(*) FROM Visit GROUP BY Purpose "
                "HAVING Date > DATE '2006-01-01'"
            )

    def test_having_type_checked(self, demo_session):
        with pytest.raises(BindError, match="does not fit"):
            demo_session.bind(
                "SELECT Purpose, count(*) FROM Visit GROUP BY Purpose "
                "HAVING count(*) > 'many'"
            )
