"""Record-granular page I/O, RAM-charged buffers, read strategies."""

import pytest

from repro.hardware.flash import FlashError
from repro.hardware.ram import RamExhaustedError
from repro.storage.pagestore import PageStore


@pytest.fixture
def store(device):
    return PageStore(device)


def write_records(store, count, width=16):
    with store.writer(width, "test") as writer:
        for i in range(count):
            writer.append(i.to_bytes(4, "big") * (width // 4))
    return writer


def test_write_then_random_read(store):
    writer = write_records(store, 100)
    with store.reader(writer.pages, 16, 100, "r") as reader:
        assert reader.record(0)[:4] == (0).to_bytes(4, "big")
        assert reader.record(99)[:4] == (99).to_bytes(4, "big")


def test_scan_returns_all_records_in_order(store):
    writer = write_records(store, 500)
    with store.reader(writer.pages, 16, 500, "r") as reader:
        values = [int.from_bytes(raw[:4], "big") for raw in reader.scan()]
    assert values == list(range(500))


def test_scan_range(store):
    writer = write_records(store, 300)
    with store.reader(writer.pages, 16, 300, "r") as reader:
        values = [
            int.from_bytes(raw[:4], "big") for raw in reader.scan(100, 110)
        ]
    assert values == list(range(100, 110))


def test_records_never_span_pages(store, device):
    """A width that does not divide the page leaves tail waste; records
    stay whole."""
    width = 600  # 2048 // 600 = 3 per page
    with store.writer(width, "w") as writer:
        for i in range(7):
            writer.append(bytes([i]) * width)
    assert len(writer.pages) == 3  # 3 + 3 + 1
    with store.reader(writer.pages, width, 7, "r") as reader:
        assert reader.record(3) == bytes([3]) * width
        assert reader.record(6) == bytes([6]) * width


def test_record_uses_partial_read(store, device):
    writer = write_records(store, 100)
    with store.reader(writer.pages, 16, 100, "r") as reader:
        before = device.flash.stats.snapshot()
        reader.record(50)
        after = device.flash.stats
        assert after.page_reads_partial == before.page_reads_partial + 1
        assert after.page_reads_full == before.page_reads_full


def test_record_cached_amortises_full_reads(store, device):
    writer = write_records(store, 256)  # 128 records per page
    with store.reader(writer.pages, 16, 256, "r") as reader:
        before = device.flash.stats.snapshot()
        for rowid in range(0, 100):
            reader.record_cached(rowid)
        after = device.flash.stats
        # 100 hits on the same page: one full read total.
        assert after.page_reads_full == before.page_reads_full + 1


def test_field_reads_only_the_slice(store):
    writer = write_records(store, 10)
    with store.reader(writer.pages, 16, 10, "r") as reader:
        assert reader.field(3, 0, 4) == (3).to_bytes(4, "big")


def test_buffers_are_ram_charged(store, device):
    used_before = device.ram.used
    writer = store.writer(16, "w")
    assert device.ram.used == used_before + device.profile.page_size
    writer.close()
    assert device.ram.used == used_before


def test_reader_buffer_released_on_close(store, device):
    writer = write_records(store, 10)
    used_before = device.ram.used
    reader = store.reader(writer.pages, 16, 10, "r")
    assert device.ram.used > used_before
    reader.close()
    assert device.ram.used == used_before


def test_no_ram_left_means_no_reader(store, device):
    writer = write_records(store, 10)
    hog = device.ram.allocate(device.ram.available, "hog")
    with pytest.raises(RamExhaustedError):
        store.reader(writer.pages, 16, 10, "r")
    hog.release()


def test_out_of_range_rowid_rejected(store):
    writer = write_records(store, 10)
    with store.reader(writer.pages, 16, 10, "r") as reader:
        with pytest.raises(IndexError):
            reader.record(10)
        with pytest.raises(IndexError):
            reader.record(-1)


def test_record_wider_than_page_rejected(store, device):
    with pytest.raises(FlashError, match="exceeds"):
        store.writer(device.profile.page_size + 1, "w")


def test_wrong_width_append_rejected(store):
    writer = store.writer(16, "w")
    with pytest.raises(ValueError, match="does not match declared width"):
        writer.append(b"short")
    writer.close()


def test_closed_writer_rejects_appends(store):
    writer = store.writer(16, "w")
    writer.close()
    with pytest.raises(ValueError, match="closed"):
        writer.append(b"x" * 16)


def test_free_pages_returns_extent_to_ftl(store, device):
    writer = write_records(store, 500)
    mapped_before = device.ftl.mapped_pages
    store.free_pages(writer.pages)
    assert device.ftl.mapped_pages == mapped_before - len(writer.pages)
