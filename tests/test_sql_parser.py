"""Parser: the paper's DDL and query dialect."""

import datetime

import pytest

from repro.sql import ast
from repro.sql.errors import ParseError
from repro.sql.parser import parse_statement


class TestSelect:
    def test_minimal(self):
        stmt = parse_statement("SELECT a FROM t")
        assert isinstance(stmt, ast.Select)
        assert stmt.items == [ast.ColumnRef("a")]
        assert stmt.tables == [ast.TableRef("t")]
        assert stmt.where == []

    def test_qualified_columns_and_aliases(self):
        stmt = parse_statement(
            "SELECT v.Date, p.Quantity FROM Visit v, Prescription AS p"
        )
        assert stmt.items[0] == ast.ColumnRef("Date", "v")
        assert stmt.tables[1] == ast.TableRef("Prescription", "p")

    def test_where_conjunction(self):
        stmt = parse_statement(
            "SELECT a FROM t WHERE a > 5 AND b = 'x' AND c = d"
        )
        assert len(stmt.where) == 3
        assert stmt.where[0].op == ">"
        assert stmt.where[1].right == ast.Literal("x")
        assert stmt.where[2].right == ast.ColumnRef("d")

    def test_between_desugars(self):
        stmt = parse_statement("SELECT a FROM t WHERE a BETWEEN 3 AND 7")
        assert len(stmt.where) == 2
        assert stmt.where[0].op == ">=" and stmt.where[0].right.value == 3
        assert stmt.where[1].op == "<=" and stmt.where[1].right.value == 7

    def test_bang_equals_normalised(self):
        stmt = parse_statement("SELECT a FROM t WHERE a != 1")
        assert stmt.where[0].op == "<>"

    def test_typed_date_literal(self):
        stmt = parse_statement(
            "SELECT a FROM t WHERE d > DATE '2006-11-05'"
        )
        assert stmt.where[0].right.value == datetime.date(2006, 11, 5)

    def test_bare_date_literal(self):
        stmt = parse_statement("SELECT a FROM t WHERE d > 05-11-2006")
        assert stmt.where[0].right.value == datetime.date(2006, 11, 5)

    def test_date_as_column_name_still_works(self):
        stmt = parse_statement("SELECT Date FROM Visit WHERE Date > 1")
        assert stmt.items[0].name == "Date"

    def test_paper_query_parses_verbatim(self):
        stmt = parse_statement(
            """SELECT Med.Name, Pre.Quantity, Vis.Date
            FROM Medicine Med, Prescription Pre, Visit Vis
            WHERE Vis.Date > 05-11-2006 /*VISIBLE*/
            AND Vis.Purpose = "Sclerosis" /*HIDDEN*/
            AND Med.Type = "Antibiotic"  /*VISIBLE*/
            AND Med.MedID = Pre.MedID
            AND Vis.VisID = Pre.VisID;"""
        )
        assert len(stmt.items) == 3
        assert len(stmt.tables) == 3
        assert len(stmt.where) == 5

    def test_literal_on_left_side(self):
        stmt = parse_statement("SELECT a FROM t WHERE 5 < a")
        assert isinstance(stmt.where[0].left, ast.Literal)

    def test_missing_from_rejected(self):
        with pytest.raises(ParseError, match="FROM"):
            parse_statement("SELECT a")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_statement("SELECT a FROM t 42")

    def test_keyword_as_table_rejected(self):
        with pytest.raises(ParseError, match="keyword"):
            parse_statement("SELECT a FROM where")


class TestCreateTable:
    def test_paper_visit_table(self):
        """The exact CREATE TABLE from Section 2 of the paper."""
        stmt = parse_statement(
            """CREATE TABLE Visit (
            VisID INTEGER PRIMARY KEY,
            Date DATE,
            Purpose CHAR(100) HIDDEN,
            DocID REFERENCES Doctor(DocID) HIDDEN,
            PatID REFERENCES Patient(PatID) HIDDEN);"""
        )
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.name == "Visit"
        cols = {c.name: c for c in stmt.columns}
        assert cols["VisID"].primary_key
        assert not cols["VisID"].hidden
        assert cols["Purpose"].hidden
        assert cols["Purpose"].type_name == "CHAR"
        assert cols["Purpose"].type_length == 100
        assert cols["DocID"].ref_table == "Doctor"
        assert cols["DocID"].ref_column == "DocID"
        assert cols["DocID"].hidden
        assert cols["DocID"].type_name is None

    def test_typed_reference(self):
        stmt = parse_statement(
            "CREATE TABLE T (id INTEGER PRIMARY KEY, "
            "r INTEGER REFERENCES U(uid))"
        )
        col = stmt.columns[1]
        assert col.type_name == "INTEGER"
        assert col.ref_table == "U"

    def test_column_without_type_or_reference_rejected(self):
        with pytest.raises(ParseError, match="needs a type"):
            parse_statement("CREATE TABLE T (id PRIMARY KEY)")

    def test_non_integer_length_rejected(self):
        with pytest.raises(ParseError, match="length"):
            parse_statement("CREATE TABLE T (c CHAR(1.5))")


class TestInsert:
    def test_single_row(self):
        stmt = parse_statement(
            "INSERT INTO Visit VALUES (1, 2006-01-01, 'Checkup', 3, 4)"
        )
        assert isinstance(stmt, ast.Insert)
        assert stmt.table == "Visit"
        assert stmt.values == [
            [1, datetime.date(2006, 1, 1), "Checkup", 3, 4]
        ]

    def test_multi_row(self):
        stmt = parse_statement("INSERT INTO T VALUES (1, 'a'), (2, 'b')")
        assert len(stmt.values) == 2

    def test_non_literal_value_rejected(self):
        with pytest.raises(ParseError, match="literal"):
            parse_statement("INSERT INTO T VALUES (a)")


def test_unknown_statement_rejected():
    with pytest.raises(
        ParseError, match="SELECT, CREATE, INSERT, UPDATE or DELETE"
    ):
        parse_statement("DROP TABLE t")


class TestUpdateDelete:
    def test_update_single_assignment(self):
        stmt = parse_statement(
            "UPDATE Prescription SET Quantity = 9 WHERE Quantity = 7"
        )
        assert isinstance(stmt, ast.Update)
        assert stmt.table == "Prescription"
        assert len(stmt.assignments) == 1
        assert stmt.assignments[0].column.name == "Quantity"
        assert stmt.assignments[0].value == 9
        assert len(stmt.where) == 1

    def test_update_multiple_assignments_and_between(self):
        stmt = parse_statement(
            "UPDATE T SET a = 1, b = 'x' WHERE id BETWEEN 10 AND 20"
        )
        assert [a.column.name for a in stmt.assignments] == ["a", "b"]
        assert [a.value for a in stmt.assignments] == [1, "x"]
        assert len(stmt.where) == 2  # BETWEEN desugars to two comparisons

    def test_update_without_where(self):
        stmt = parse_statement("UPDATE T SET a = 1")
        assert stmt.where == []

    def test_update_requires_literal_value(self):
        with pytest.raises(ParseError, match="literal"):
            parse_statement("UPDATE T SET a = b")

    def test_delete_with_in_list(self):
        stmt = parse_statement("DELETE FROM T WHERE kind IN ('x', 'y')")
        assert isinstance(stmt, ast.Delete)
        assert stmt.table == "T"
        assert len(stmt.where) == 1

    def test_delete_without_where(self):
        stmt = parse_statement("DELETE FROM T")
        assert stmt.where == []

    def test_delete_requires_from(self):
        with pytest.raises(ParseError):
            parse_statement("DELETE T WHERE a = 1")
