"""ID-ordered heap tables: loading, access, PK resolution."""

import datetime

import pytest

from repro.storage.heap import HeapTable, KeyNotFoundError
from repro.storage.record import RecordCodec
from repro.storage.types import CharType, DateType, IntegerType


@pytest.fixture
def codec():
    return RecordCodec([IntegerType(), CharType(16), DateType()])


def make_rows(pks):
    return [
        (pk, f"purpose-{pk % 5}", datetime.date(2006, 1, 1 + pk % 28))
        for pk in pks
    ]


def load_table(device, codec, pks, name="t"):
    table = HeapTable(device, name, codec, pk_field=0)
    table.load(make_rows(pks))
    return table


def test_load_and_scan(device, codec):
    table = load_table(device, codec, range(1, 401))
    rows = list(table.scan())
    assert len(rows) == 400
    assert rows[0][0] == 1
    assert rows[-1][0] == 400


def test_dense_pk_detection(device, codec):
    dense = load_table(device, codec, range(1, 101), "dense")
    assert dense.is_dense
    sparse = load_table(device, codec, range(2, 500, 5), "sparse")
    assert not sparse.is_dense


def test_dense_rowid_resolution_is_arithmetic(device, codec):
    table = load_table(device, codec, range(10, 110))
    before = device.flash.stats.snapshot()
    assert table.rowid_for_pk(10) == 0
    assert table.rowid_for_pk(109) == 99
    # No flash reads for dense resolution.
    assert device.flash.stats.page_reads == before.page_reads


def test_sparse_rowid_binary_search(device, codec):
    pks = list(range(3, 3000, 7))
    table = load_table(device, codec, pks, "sparse")
    for i in (0, 1, len(pks) // 2, len(pks) - 1):
        assert table.rowid_for_pk(pks[i]) == i


def test_missing_pk_raises(device, codec):
    dense = load_table(device, codec, range(1, 101), "dense")
    with pytest.raises(KeyNotFoundError):
        dense.rowid_for_pk(101)
    with pytest.raises(KeyNotFoundError):
        dense.rowid_for_pk(0)
    sparse = load_table(device, codec, range(2, 100, 5), "sparse")
    with pytest.raises(KeyNotFoundError):
        sparse.rowid_for_pk(3)


def test_pk_of_rowid_inverts_rowid_for_pk(device, codec):
    pks = list(range(5, 900, 11))
    table = load_table(device, codec, pks, "sparse")
    for i in (0, 7, len(pks) - 1):
        assert table.pk_of_rowid(i) == pks[i]
        assert table.rowid_for_pk(pks[i]) == i


def test_row_and_field_access(device, codec):
    table = load_table(device, codec, range(1, 101))
    assert table.row(4) == (5, "purpose-0", datetime.date(2006, 1, 6))
    assert table.field(4, 1) == "purpose-0"


def test_field_access_is_partial_read(device, codec):
    table = load_table(device, codec, range(1, 101))
    before = device.flash.stats.snapshot()
    table.field(50, 1)
    after = device.flash.stats
    assert after.page_reads_partial == before.page_reads_partial + 1
    assert after.page_reads_full == before.page_reads_full


def test_unsorted_load_rejected(device, codec):
    table = HeapTable(device, "t", codec, pk_field=0)
    with pytest.raises(ValueError, match="sorted"):
        table.load(make_rows([3, 2, 1]))


def test_duplicate_pk_rejected(device, codec):
    table = HeapTable(device, "t", codec, pk_field=0)
    with pytest.raises(ValueError, match="sorted"):
        table.load(make_rows([1, 2, 2]))


def test_double_load_rejected(device, codec):
    table = load_table(device, codec, range(1, 10))
    with pytest.raises(ValueError, match="already loaded"):
        table.load(make_rows([100]))


def test_empty_table(device, codec):
    table = HeapTable(device, "t", codec, pk_field=0)
    table.load([])
    assert table.count == 0
    assert list(table.scan()) == []
    with pytest.raises(KeyNotFoundError):
        table.rowid_for_pk(1)


def test_negative_pk_rejected(device, codec):
    table = HeapTable(device, "t", codec, pk_field=0)
    with pytest.raises(ValueError, match="32-bit"):
        table.load(make_rows([-5]))
