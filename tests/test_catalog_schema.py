"""Schema model: HIDDEN columns, placement rules, validation."""

import pytest

from repro.catalog.schema import (
    ColumnDef,
    ForeignKey,
    Schema,
    SchemaError,
    TableDef,
)
from repro.storage.types import CharType, DateType, FloatType, IntegerType


def visit_table():
    return TableDef(
        name="Visit",
        columns=[
            ColumnDef("VisID", IntegerType(), primary_key=True),
            ColumnDef("Date", DateType()),
            ColumnDef("Purpose", CharType(100), hidden=True),
            ColumnDef(
                "DocID", IntegerType(), hidden=True,
                references=ForeignKey("Doctor", "DocID"),
            ),
        ],
    )


def doctor_table():
    return TableDef(
        name="Doctor",
        columns=[
            ColumnDef("DocID", IntegerType(), primary_key=True),
            ColumnDef("Country", CharType(20)),
        ],
    )


class TestPlacementRules:
    def test_hidden_column_is_device_only(self):
        col = ColumnDef("Purpose", CharType(100), hidden=True)
        assert col.on_device and not col.on_public

    def test_visible_column_is_public(self):
        col = ColumnDef("Date", DateType())
        assert col.on_public and not col.on_device

    def test_primary_key_is_replicated_on_device(self):
        col = ColumnDef("VisID", IntegerType(), primary_key=True)
        assert col.on_device and col.on_public

    def test_visible_fk_is_replicated_on_device(self):
        """FKs are SKT key material, so the device holds them even when
        the administrator left them visible."""
        col = ColumnDef(
            "DocID", IntegerType(), references=ForeignKey("Doctor", "DocID")
        )
        assert col.on_device and col.on_public

    def test_hidden_fk_is_device_only(self):
        col = ColumnDef(
            "DocID", IntegerType(), hidden=True,
            references=ForeignKey("Doctor", "DocID"),
        )
        assert col.on_device and not col.on_public


class TestTableDef:
    def test_exactly_one_primary_key_required(self):
        with pytest.raises(SchemaError, match="exactly one PRIMARY KEY"):
            TableDef("T", [ColumnDef("a", IntegerType())])
        with pytest.raises(SchemaError, match="exactly one PRIMARY KEY"):
            TableDef(
                "T",
                [
                    ColumnDef("a", IntegerType(), primary_key=True),
                    ColumnDef("b", IntegerType(), primary_key=True),
                ],
            )

    def test_non_integer_pk_rejected(self):
        with pytest.raises(SchemaError, match="INTEGER"):
            TableDef(
                "T", [ColumnDef("a", CharType(8), primary_key=True)]
            )

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            TableDef(
                "T",
                [
                    ColumnDef("a", IntegerType(), primary_key=True),
                    ColumnDef("A", FloatType()),
                ],
            )

    def test_column_lookup_is_case_insensitive(self):
        table = visit_table()
        assert table.column("purpose").name == "Purpose"
        assert table.column_index("PURPOSE") == 2
        assert table.has_column("date")

    def test_unknown_column_rejected(self):
        with pytest.raises(SchemaError, match="no column"):
            visit_table().column("nothing")

    def test_device_columns_pk_first_then_hidden_and_fks(self):
        names = [c.name for c in visit_table().device_columns()]
        assert names == ["VisID", "Purpose", "DocID"]

    def test_public_columns_exclude_hidden(self):
        names = [c.name for c in visit_table().public_columns()]
        assert names == ["VisID", "Date"]

    def test_device_codec_matches_device_columns(self):
        codec = visit_table().device_codec()
        assert codec.arity == 3
        assert codec.width == 8 + 100 + 8

    def test_device_column_index(self):
        table = visit_table()
        assert table.device_column_index("visid") == 0
        assert table.device_column_index("purpose") == 1
        with pytest.raises(SchemaError, match="not device-resident"):
            table.device_column_index("date")


class TestSchema:
    def test_add_and_lookup(self):
        schema = Schema()
        schema.add(doctor_table())
        assert schema.table("DOCTOR").name == "Doctor"
        assert schema.has_table("doctor")
        assert len(schema) == 1

    def test_duplicate_table_rejected(self):
        schema = Schema()
        schema.add(doctor_table())
        with pytest.raises(SchemaError, match="already exists"):
            schema.add(doctor_table())

    def test_unknown_table_rejected(self):
        with pytest.raises(SchemaError, match="unknown table"):
            Schema().table("ghost")

    def test_validate_catches_dangling_fk(self):
        schema = Schema()
        schema.add(visit_table())  # references Doctor, which is absent
        with pytest.raises(SchemaError, match="unknown table"):
            schema.validate()

    def test_validate_requires_fk_to_target_pk(self):
        schema = Schema()
        schema.add(doctor_table())
        bad = TableDef(
            "Visit",
            [
                ColumnDef("VisID", IntegerType(), primary_key=True),
                ColumnDef(
                    "DocCountry", CharType(20),
                    references=ForeignKey("Doctor", "Country"),
                ),
            ],
        )
        schema.add(bad)
        with pytest.raises(SchemaError, match="primary"):
            schema.validate()

    def test_validate_accepts_good_schema(self):
        schema = Schema()
        schema.add(doctor_table())
        schema.add(visit_table())
        schema.validate()
