"""The leakage meter: traffic-shape scorecards and the fingerprint gate.

Three layers under test: :func:`profile_records` (the per-trace
scorecard and its fault-invariant request-sequence signature), the
nearest-centroid fingerprinting attack (its accuracy is the leakage
number), and the ``leakage-regression`` gate (bit-identical artifacts,
comparator failing on injected regressions, CLI exit codes).
"""

import copy
import json

import pytest

from repro.hardware.usb import Direction
from repro.privacy.meter import (
    FEATURE_NAMES,
    LabeledTrace,
    LeakMeterConfig,
    compare_leakage,
    evaluate_fingerprinting,
    leakage_workbook,
    profile_records,
    render_profile,
    request_signature,
    run_leakage_meter,
)
from repro.privacy.meter import main as meter_main
from repro.workload.queries import demo_query

#: Meter runs in tests use a small dataset; the channel properties under
#: test (signatures, determinism, classifier separation) hold at any
#: scale.
METER_TEST_SCALE = 300


@pytest.fixture
def session(fresh_session):
    fresh_session.reset_measurements()
    return fresh_session


@pytest.fixture(scope="module")
def leak_run():
    """One shared metering run (the expensive part of this module)."""
    return run_leakage_meter(LeakMeterConfig(scale=METER_TEST_SCALE))


class TestTrafficProfile:
    def test_profile_accounts_for_every_message(self, session):
        session.query(demo_query())
        records = session.usb_log
        profile = profile_records(records)
        assert profile.messages == len(records)
        assert profile.observable_bytes == sum(r.size for r in records)
        assert (
            profile.bytes_to_device + profile.bytes_to_host
            == profile.observable_bytes
        )
        assert sum(profile.kind_messages.values()) == profile.messages
        assert sum(profile.kind_bytes.values()) == profile.observable_bytes

    def test_profile_reads_ids_and_request_ops(self, session):
        session.query(demo_query())
        profile = profile_records(session.usb_log)
        assert profile.ids_observed > 0
        assert profile.id_stats["ids"].total > 0
        assert profile.request_ops.get("select_ids", 0) > 0

    def test_entropy_and_shapes(self, session):
        session.query(demo_query())
        profile = profile_records(session.usb_log)
        assert profile.distinct_shapes >= 1
        assert profile.shape_entropy_bits >= 0.0
        # With several distinct shapes the distribution carries bits.
        assert profile.distinct_shapes > 1
        assert profile.shape_entropy_bits > 0.0

    def test_timing_fields_follow_the_simulated_clock(self, session):
        session.query(demo_query())
        records = session.usb_log
        profile = profile_records(records)
        assert profile.sim_duration_s == pytest.approx(
            records[-1].completed_at - records[0].completed_at
        )
        assert profile.gaps.count == len(records) - 1
        assert profile.gaps.max_s >= profile.gaps.mean_s >= 0.0

    def test_empty_trace_profiles_to_zero(self):
        profile = profile_records([])
        assert profile.messages == 0
        assert profile.observable_bytes == 0
        assert profile.shape_entropy_bits == 0.0
        assert profile.sim_duration_s == 0.0

    def test_signature_is_eight_hex_digits(self, session):
        session.query(demo_query())
        profile = profile_records(session.usb_log)
        assert len(profile.signature) == 8
        int(profile.signature, 16)  # parses as hex
        assert profile.signature_int == int(profile.signature, 16)

    def test_feature_vector_matches_names(self, session):
        session.query(demo_query())
        profile = profile_records(session.usb_log)
        vector = profile.feature_vector()
        assert len(vector) == len(FEATURE_NAMES)
        assert all(isinstance(v, float) for v in vector)

    def test_render_is_shape_only_text(self, session):
        session.query(demo_query())
        profile = profile_records(session.usb_log)
        text = render_profile(profile)
        assert "request signature" in text
        assert profile.signature in text
        assert str(profile.messages) in text


class TestSignatureInvariance:
    """The property the classifier keys on: faults move timing, never
    the logical request sequence."""

    def _run(self, session, fault_profile=None, seed=0):
        session.reset_measurements()
        if fault_profile:
            session.set_faults(fault_profile, seed)
        try:
            result = session.query(demo_query())
        finally:
            session.clear_faults()
        return result, profile_records(session.usb_log)

    def test_usb_faults_keep_signature_move_timing(self, fresh_session):
        _, clean = self._run(fresh_session)
        saw_retransmission = False
        for seed in (1, 2, 3, 4):
            result, faulted = self._run(fresh_session, "usb", seed)
            assert faulted.signature == clean.signature, (
                f"seed {seed}: signature drifted under usb faults"
            )
            if faulted.retransmissions:
                saw_retransmission = True
                assert faulted.messages > clean.messages
                assert faulted.sim_duration_s > clean.sim_duration_s
        assert saw_retransmission, (
            "no seed manifested a retransmission; the test lost its teeth"
        )

    def test_signature_changes_when_the_conversation_changes(self, session):
        session.query(demo_query())
        first = profile_records(session.usb_log)
        session.reset_measurements()
        session.query(
            "SELECT Med.Name FROM Medicine Med WHERE Med.Type = 'Statin'"
        )
        second = profile_records(session.usb_log)
        assert first.signature != second.signature

    def test_lost_copies_are_excluded_but_counted(self, session, device):
        # Two captures of the "same" message: a mangled copy, then the
        # intact retransmission.  The signature must only see the clean
        # copy; the retransmission count must see the mangled one.
        device.usb.transfer(Direction.TO_HOST, "request", b'{"op": "x"}')
        clean_sig = request_signature(device.usb.records())
        mangled = device.usb.records()[0]
        faulted_records = [
            type(mangled)(
                seq=0, direction=mangled.direction, kind=mangled.kind,
                payload=mangled.payload[:4], completed_at=0.0,
                description="", faults=("corrupt",),
            ),
            mangled,
        ]
        assert request_signature(faulted_records) == clean_sig
        assert profile_records(faulted_records).retransmissions == 1


class TestFingerprinting:
    def test_classifier_separates_separable_labels(self):
        traces = [
            LabeledTrace("big", (100.0, 10.0)),
            LabeledTrace("big", (110.0, 11.0)),
            LabeledTrace("big", (90.0, 9.0)),
            LabeledTrace("small", (5.0, 1.0)),
            LabeledTrace("small", (6.0, 2.0)),
            LabeledTrace("small", (4.0, 1.5)),
        ]
        outcome = evaluate_fingerprinting(traces)
        assert outcome["accuracy"] == 1.0
        assert outcome["chance_accuracy"] == 0.5
        assert outcome["confusion"]["big"] == {"big": 3}

    def test_attack_beats_chance_on_the_workbook(self, leak_run):
        classifier = leak_run.artifact["classifier"]
        assert classifier["accuracy"] > classifier["chance_accuracy"] * 2, (
            "the fingerprinting attack should re-identify query families "
            "well above chance -- if it stopped working, the leakage "
            "number lost its meaning"
        )
        assert classifier["traces"] == len(leakage_workbook())
        assert set(classifier["per_label_accuracy"]) <= set(
            classifier["labels"]
        )

    def test_workbook_covers_families_and_bands(self):
        trials = leakage_workbook()
        labels = {t.label for t in trials}
        assert len(labels) >= 4
        for label in labels:
            count = sum(1 for t in trials if t.label == label)
            assert count >= 2, f"{label} needs trials to train AND test"


class TestLeakArtifact:
    def test_artifact_is_deterministic_bit_identical(self, leak_run):
        again = run_leakage_meter(
            LeakMeterConfig(scale=METER_TEST_SCALE)
        )
        assert again.payload == leak_run.payload

    def test_payload_has_no_redaction_holes(self, leak_run):
        # A '?' would mean a string value fell through the allowlist --
        # either a leak (scrubbed, good, but then the artifact is
        # broken) or a vocabulary gap.  Either way: fix at the source.
        assert b'"?"' not in leak_run.payload
        payload = json.loads(leak_run.payload.decode("utf-8"))
        assert payload["kind"] == "ghostdb-leakage"
        assert payload["leak_check"] == "CLEAN"

    def test_artifact_carries_channel_rows_per_label(self, leak_run):
        families = leak_run.artifact["families"]
        assert families
        for row in families.values():
            assert row["observable_bytes"] > 0
            assert row["messages"] > 0
            assert row["signatures"] == sorted(set(row["signatures"]))

    def test_leak_summary_is_clean(self, leak_run):
        assert "CLEAN" in leak_run.leak_summary


class TestLeakageGate:
    def test_identical_artifacts_pass(self, leak_run):
        report = compare_leakage(leak_run.artifact, leak_run.artifact)
        assert report.ok
        assert "PASS" in report.render()

    def test_widened_channel_fails(self, leak_run):
        current = copy.deepcopy(leak_run.artifact)
        name = next(iter(current["families"]))
        current["families"][name]["observable_bytes"] += 1
        report = compare_leakage(leak_run.artifact, current)
        assert not report.ok
        assert any("observable_bytes" in line for line in report.widened)
        assert "CHANNEL WIDENED" in report.render()

    def test_narrowed_channel_passes_but_reports(self, leak_run):
        current = copy.deepcopy(leak_run.artifact)
        name = next(iter(current["families"]))
        current["families"][name]["messages"] -= 1
        report = compare_leakage(leak_run.artifact, current)
        assert report.ok
        assert report.narrowed

    def test_signature_change_fails(self, leak_run):
        current = copy.deepcopy(leak_run.artifact)
        name = next(iter(current["families"]))
        current["families"][name]["signatures"] = ["deadbeef"]
        report = compare_leakage(leak_run.artifact, current)
        assert not report.ok
        assert report.signature_changes

    def test_more_accurate_attack_fails(self, leak_run):
        current = copy.deepcopy(leak_run.artifact)
        current["classifier"]["accuracy"] = min(
            1.0, leak_run.artifact["classifier"]["accuracy"] + 0.2
        )
        report = compare_leakage(leak_run.artifact, current)
        assert not report.ok
        assert report.accuracy_regression

    def test_missing_family_fails(self, leak_run):
        current = copy.deepcopy(leak_run.artifact)
        name = next(iter(current["families"]))
        del current["families"][name]
        report = compare_leakage(leak_run.artifact, current)
        assert not report.ok
        assert name in report.missing_families

    def test_cli_gate_exits_nonzero_on_injected_regression(
        self, leak_run, tmp_path, capsys
    ):
        # Doctor a baseline claiming the channel used to be narrower;
        # the gate must fail exactly the way CI would.
        doctored = copy.deepcopy(leak_run.artifact)
        for row in doctored["families"].values():
            row["observable_bytes"] -= 1
        baseline_path = tmp_path / "leakage_baseline.json"
        baseline_path.write_text(json.dumps(doctored))
        code = meter_main(
            [
                "--scale", str(METER_TEST_SCALE),
                "--leak-out", str(tmp_path / "LEAK_test.json"),
                "--baseline", str(baseline_path),
            ]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_cli_gate_passes_against_its_own_run(
        self, leak_run, tmp_path, capsys
    ):
        baseline_path = tmp_path / "leakage_baseline.json"
        baseline_path.write_bytes(leak_run.payload)
        code = meter_main(
            [
                "--scale", str(METER_TEST_SCALE),
                "--leak-out", str(tmp_path / "LEAK_test.json"),
                "--baseline", str(baseline_path),
            ]
        )
        assert code == 0
        assert "PASS" in capsys.readouterr().out


class TestSessionSurfaces:
    """The metering hooks threaded through the session and registry."""

    def test_query_span_carries_leak_annotations(self, session):
        traced = session.trace(demo_query())
        query_spans = [s for s in traced.spans if s.name == "query"]
        assert query_spans
        attrs = query_spans[0].attrs
        assert attrs["leak_messages"] > 0
        assert attrs["leak_bytes"] > 0
        assert isinstance(attrs["leak_signature"], int)

    def test_leak_metric_families_populate(self, session):
        session.query(demo_query())
        text = session.metrics_text()
        assert "ghostdb_leak_queries_profiled_total 1" in text
        assert 'ghostdb_leak_observable_bytes_total{direction="to_host"}' in text
        assert 'ghostdb_leak_messages_total{kind="ids"}' in text
        assert "ghostdb_leak_shape_entropy_bits" in text

    def test_leak_scorecard_tracks_last_query(self, session):
        session.query(demo_query())
        profile = session.leak_scorecard()
        assert profile is not None
        assert profile.signature == profile_records(session.usb_log).signature
        session.reset_measurements()
        assert session.leak_scorecard() is None
