"""The link protocol: traffic shape, batching, timing, fault handling."""

import datetime
import json

import pytest

from repro.faults import FaultProfile, UsbTransferError
from repro.hardware.usb import Direction
from repro.visible.frame import FRAME_OVERHEAD, payload_of
from repro.visible.link import (
    ProtocolError,
    decode_value,
    encode_value,
    predicate_matches_wire,
    predicate_to_wire,
)


@pytest.fixture
def session(fresh_session):
    fresh_session.reset_measurements()
    return fresh_session


def date_pred(session, cutoff):
    return session.bind(
        f"SELECT Date FROM Visit WHERE Date > DATE '{cutoff}'"
    ).predicates[0]


class TestWireEncoding:
    def test_dates_marked(self):
        wire = encode_value(datetime.date(2006, 11, 5))
        assert wire == {"__date__": "2006-11-05"}
        assert decode_value(wire) == datetime.date(2006, 11, 5)

    def test_scalars_pass_through(self):
        for value in (5, 2.5, "text", None):
            assert decode_value(encode_value(value)) == value

    def test_predicate_roundtrip_evaluates(self, session):
        pred = date_pred(session, "2006-06-01")
        wire = json.loads(json.dumps(predicate_to_wire(pred)))
        assert predicate_matches_wire(wire, datetime.date(2006, 7, 1))
        assert not predicate_matches_wire(wire, datetime.date(2006, 5, 1))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError):
            predicate_matches_wire({"kind": "like"}, "x")


class TestSelectIds:
    def test_stream_is_sorted_and_complete(self, session):
        pred = date_pred(session, "2006-06-01")
        got = list(session.link.select_ids("visit", pred))
        expected = session.site.select_ids("visit", pred)
        assert got == expected
        assert got == sorted(got)

    def test_request_crosses_to_host_first(self, session):
        pred = date_pred(session, "2006-06-01")
        list(session.link.select_ids("visit", pred))
        log = session.usb_log
        assert log[0].direction is Direction.TO_HOST
        assert log[0].kind == "request"
        body = json.loads(payload_of(log[0].payload))
        assert body["op"] == "select_ids"
        assert body["predicate"]["column"] == "date"

    def test_ids_batched(self, session):
        # Matches nearly all 2000 prescriptions: several 256-ID batches.
        pred = session.bind(
            "SELECT Frequency FROM Prescription WHERE Frequency <> 'nope'"
        ).predicates[0]
        expected = session.site.select_ids("prescription", pred)
        got = list(session.link.select_ids("prescription", pred))
        assert got == expected
        batches = [r for r in session.usb_log if r.kind == "ids"]
        assert len(batches) > 1
        assert all(
            r.size <= session.link.id_batch * 4 + FRAME_OVERHEAD
            for r in batches
        )

    def test_end_marker_sent(self, session):
        pred = date_pred(session, "2006-06-01")
        list(session.link.select_ids("visit", pred))
        kinds = [r.kind for r in session.usb_log]
        assert kinds[-1] == "ids_end"

    def test_usb_time_charged(self, session):
        pred = date_pred(session, "2006-06-01")
        t0 = session.device.clock.breakdown().usb
        list(session.link.select_ids("visit", pred))
        assert session.device.clock.breakdown().usb > t0


class TestFetchValues:
    def test_values_roundtrip(self, session):
        got = session.link.fetch_values("visit", [1, 2, 3], ["date"])
        raw = {
            pk: (row[1],)
            for pk, row in zip(
                [1, 2, 3],
                [session.site._tables["visit"].rows[i] for i in (1, 2, 3)],
            )
        }
        assert got == {pk: raw[pk] for pk in got}
        assert set(got) == {1, 2, 3}

    def test_fetch_batches(self, session):
        pks = list(range(1, 300))
        session.link.fetch_values("visit", pks, ["date"])
        headers = [
            r for r in session.usb_log
            if r.kind == "request" and b"fetch_values" in r.payload
        ]
        assert len(headers) == 3  # 128 + 128 + 43

    def test_requested_ids_visible_on_wire(self, session):
        """The accepted revelation: the spy sees which IDs were fetched."""
        session.link.fetch_values("visit", [7, 9], ["date"])
        id_messages = [r for r in session.usb_log if r.kind == "fetch_ids"]
        assert len(id_messages) == 1
        payload = payload_of(id_messages[0].payload)
        assert payload == (7).to_bytes(4, "big") + (9).to_bytes(4, "big")

    def test_recheck_drops_failing_ids(self, session):
        pred = date_pred(session, "2006-06-01")
        all_ids = [1, 2, 3, 4, 5]
        got = session.link.fetch_values(
            "visit", all_ids, ["date"], recheck=[pred]
        )
        for pk, (date,) in got.items():
            assert date > datetime.date(2006, 6, 1)

    def test_corruption_retried_transparently(self, session):
        """A corrupted frame fails its CRC and is retransmitted; the
        caller sees correct data plus a retry counted in metrics."""
        profile = FaultProfile(name="some-corrupt", usb_corrupt_rate=0.5)
        session.set_faults(profile, seed=0)
        try:
            got = session.link.fetch_values("visit", [1, 2, 3], ["date"])
        finally:
            session.clear_faults()
        assert set(got) == {1, 2, 3}
        mangled = [r for r in session.usb_log if "corrupt" in r.faults]
        assert mangled, "seed 0 at 50% should corrupt at least one frame"
        retries = session.obs.registry.counter("ghostdb_usb_retries_total")
        assert retries.value(reason="corrupt") == len(mangled)

    def test_unrecoverable_corruption_raises_typed_error(self, session):
        """When every attempt is mangled, the bounded retry budget runs
        out and the transfer fails with a typed GhostDB error -- never
        silently wrong data."""
        profile = FaultProfile(name="all-corrupt", usb_corrupt_rate=1.0)
        session.set_faults(profile, seed=0)
        try:
            with pytest.raises(UsbTransferError, match="retries"):
                session.link.fetch_values("visit", [1], ["date"])
        finally:
            session.clear_faults()
        # The device is still consistent: the next query works.
        got = session.link.fetch_values("visit", [1], ["date"])
        assert set(got) == {1}
