"""Chaos sweep: many random fault seeds over the demo workload.

The property (docs/ROBUSTNESS.md): under any fault schedule, a query
either returns exactly the clean reference answer or raises a typed
GhostDB error; the device is always consistent afterwards (remounting
when power was lost); and every byte of fault-run USB traffic --
retransmissions and aborted transfers included -- still leak-checks
CLEAN.  CI replays this file on every push (fixed seeds: the sweep is
deterministic end to end).
"""

from repro.core.ghostdb import GhostDB
from repro.faults import FAULT_PROFILES, GhostDBFaultError
from repro.privacy.leakcheck import LeakChecker
from repro.workload.queries import demo_query

from tests.conftest import build_demo_session

#: 50 seeds cycling through every fault regime, rates scaled up so each
#: run sees real fault pressure.
SEEDS = range(50)
REGIMES = ("usb", "flash", "mixed", "powercut")
SCALE = 4.0

MAX_ATTEMPTS = 6


def chaos_profile(seed: int):
    return FAULT_PROFILES[REGIMES[seed % len(REGIMES)]].scaled(SCALE)


def run_under_faults(session: GhostDB, sql: str, seed: int):
    """One chaos episode; returns the result (or None if every attempt
    failed) and the set of typed errors seen."""
    session.set_faults(chaos_profile(seed), seed)
    errors: list[BaseException] = []
    result = None
    try:
        for _ in range(MAX_ATTEMPTS):
            try:
                result = session.query(sql)
                break
            except GhostDBFaultError as exc:
                errors.append(exc)
                if session.needs_remount:
                    session.remount()
    finally:
        session.clear_faults()
        if session.needs_remount:
            session.remount()
    return result, errors


class TestChaosSweep:
    def test_fifty_seeds_answer_or_typed_error(self, demo_data):
        session = build_demo_session(demo_data)
        checker = LeakChecker(session.schema, demo_data)
        sql = demo_query()
        session.reset_measurements()
        reference = session.query(sql)
        outcomes = {"answered": 0, "failed_all_attempts": 0}
        fault_total = 0
        for seed in SEEDS:
            session.reset_measurements()
            result, errors = run_under_faults(session, sql, seed)
            fault_total += len(session.fault_injector.events) if (
                session.fault_injector
            ) else 0
            if result is not None:
                assert result.rows == reference.rows, f"seed {seed}"
                outcomes["answered"] += 1
            else:
                assert errors, f"seed {seed}: no result and no error"
                outcomes["failed_all_attempts"] += 1
            # Every error was typed; nothing escaped as a raw exception.
            assert all(
                isinstance(e, GhostDBFaultError) for e in errors
            ), f"seed {seed}"
            # All traffic of the episode -- retries, mangled frames,
            # aborted transfers -- is CLEAN.
            report = checker.check(session.usb_log)
            assert report.ok, f"seed {seed}: {report.summary()}"
            # The device is consistent: a clean re-query answers exactly.
            check = session.query(sql)
            assert check.rows == reference.rows, f"seed {seed}"
        # The sweep must not have silently degenerated into no-fault
        # runs: the vast majority of seeds answer, and at least a few
        # exercise the retry/abort machinery.
        assert outcomes["answered"] >= 40, outcomes

    def test_same_seed_twice_is_bit_identical(self, demo_data):
        """Two fresh sessions, same seed: identical fault schedule,
        identical retry counts, identical simulated time."""
        sql = demo_query()
        seed = 9
        observed = []
        for _ in range(2):
            session = build_demo_session(demo_data)
            session.reset_measurements()
            injector = session.set_faults(chaos_profile(seed), seed)
            try:
                try:
                    result = session.query(sql)
                    rows = tuple(map(tuple, result.rows))
                except GhostDBFaultError as exc:
                    rows = ("error", type(exc).__name__)
            finally:
                session.clear_faults()
            retries = session.obs.registry.counter(
                "ghostdb_usb_retries_total"
            )
            observed.append((
                injector.schedule_signature(),
                injector.usb_ops,
                injector.flash_ops,
                retries.total(),
                session.device.clock.now,
                rows,
            ))
        assert observed[0] == observed[1]

    def test_powercut_regime_exercises_remount(self, demo_data):
        """At scaled rates at least one powercut-regime seed must lose
        power, proving the remount path runs inside the sweep."""
        session = build_demo_session(demo_data)
        sql = demo_query()
        remounts = 0
        for seed in range(0, 16):
            session.reset_measurements()
            session.set_faults(FAULT_PROFILES["powercut"].scaled(8), seed)
            try:
                try:
                    session.query(sql)
                except GhostDBFaultError:
                    pass
            finally:
                session.clear_faults()
            if session.needs_remount:
                session.remount()
                remounts += 1
                # Counted since this seed's reset_measurements().
                counter = session.obs.registry.counter(
                    "ghostdb_recovery_remounts_total"
                )
                assert counter.total() >= 1
        assert remounts > 0
