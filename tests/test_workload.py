"""Synthetic dataset: determinism, shape, referential integrity."""

import datetime

import pytest

from repro.workload.datagen import DatasetConfig, MedicalDataGenerator
from repro.workload.queries import DEMO_SCHEMA_DDL, demo_query
from repro.workload import vocab


@pytest.fixture(scope="module")
def data():
    return MedicalDataGenerator(
        DatasetConfig(n_prescriptions=3_000)
    ).generate()


def test_deterministic_for_a_seed():
    a = MedicalDataGenerator(DatasetConfig(n_prescriptions=500)).generate()
    b = MedicalDataGenerator(DatasetConfig(n_prescriptions=500)).generate()
    assert a == b


def test_different_seeds_differ():
    a = MedicalDataGenerator(
        DatasetConfig(n_prescriptions=500, seed=1)
    ).generate()
    b = MedicalDataGenerator(
        DatasetConfig(n_prescriptions=500, seed=2)
    ).generate()
    assert a != b


def test_cardinalities_follow_config(data):
    config = DatasetConfig(n_prescriptions=3_000)
    assert len(data["prescription"]) == 3_000
    assert len(data["visit"]) == config.n_visits
    assert len(data["patient"]) == config.n_patients
    assert len(data["doctor"]) == config.n_doctors
    assert len(data["medicine"]) == config.n_medicines


def test_primary_keys_dense_and_sorted(data):
    for table, rows in data.items():
        pks = [row[0] for row in rows]
        assert pks == list(range(1, len(rows) + 1)), table


def test_referential_integrity(data):
    doctors = {r[0] for r in data["doctor"]}
    patients = {r[0] for r in data["patient"]}
    visits = {r[0] for r in data["visit"]}
    medicines = {r[0] for r in data["medicine"]}
    for visit in data["visit"]:
        assert visit[3] in doctors
        assert visit[4] in patients
    for pre in data["prescription"]:
        assert pre[4] in medicines
        assert pre[5] in visits


def test_dates_within_configured_window(data):
    config = DatasetConfig(n_prescriptions=3_000)
    for visit in data["visit"]:
        assert config.date_start <= visit[1] <= config.date_end


def test_purposes_from_vocabulary_with_sclerosis_rare(data):
    allowed = {p for p, _w in vocab.PURPOSES}
    counts = {}
    for visit in data["visit"]:
        assert visit[2] in allowed
        counts[visit[2]] = counts.get(visit[2], 0) + 1
    total = len(data["visit"])
    # Sclerosis is the selective value the demo relies on (~2%).
    assert 0 < counts.get("Sclerosis", 0) < 0.08 * total


def test_rows_fit_the_declared_schema(data):
    """Every generated value must satisfy its declared column type."""
    from repro.catalog.schema import Schema
    from repro.sql.ddl import create_table
    from repro.sql.parser import parse_statement

    schema = Schema()
    for ddl in DEMO_SCHEMA_DDL:
        create_table(schema, parse_statement(ddl))
    for table_name, rows in data.items():
        table = schema.table(table_name)
        for row in rows[:50]:
            for column, value in zip(table.columns, row):
                column.dtype.encode(value)  # raises on misfit


def test_demo_query_has_nonempty_answer(data):
    """The paper's demo query should actually select something at any
    reasonable scale, or the demo falls flat."""
    cutoff = datetime.date(2006, 11, 5)
    sclerosis_visits = {
        r[0] for r in data["visit"]
        if r[2] == "Sclerosis" and r[1] > cutoff
    }
    antibiotics = {r[0] for r in data["medicine"] if r[3] == "Antibiotic"}
    matches = [
        r for r in data["prescription"]
        if r[5] in sclerosis_visits and r[4] in antibiotics
    ]
    assert matches


def test_demo_query_text_round_trips():
    sql = demo_query()
    assert "Sclerosis" in sql and "Antibiotic" in sql
    sql2 = demo_query(med_type="Insulin")
    assert "Insulin" in sql2
