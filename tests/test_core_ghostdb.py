"""GhostDB session API: lifecycle, DDL/DML, querying, observability."""

import datetime

import pytest

from repro.core.ghostdb import GhostDB, SessionError
from repro.engine.executor import QueryResult
from repro.hardware.profiles import TINY_DEVICE
from repro.workload.queries import DEMO_SCHEMA_DDL, demo_query


class TestLifecycle:
    def test_query_before_load_rejected(self):
        db = GhostDB()
        db.execute(DEMO_SCHEMA_DDL[0])
        with pytest.raises(SessionError, match="load data"):
            db.query("SELECT Country FROM Doctor")

    def test_ddl_after_load_rejected(self, fresh_session):
        with pytest.raises(SessionError, match="frozen"):
            fresh_session.execute(
                "CREATE TABLE Extra (id INTEGER PRIMARY KEY)"
            )

    def test_double_load_rejected(self, fresh_session, demo_data):
        with pytest.raises(SessionError, match="already loaded"):
            fresh_session.load(demo_data)

    def test_load_resets_measurements(self, fresh_session):
        """Load-time I/O (huge) must not pollute query metrics."""
        assert fresh_session.device.clock.now == 0.0
        assert fresh_session.usb_log == []


class TestInsertPath:
    def test_inserts_buffer_and_load(self):
        db = GhostDB()
        db.execute(
            "CREATE TABLE Person (PID INTEGER PRIMARY KEY, "
            "Name CHAR(20) HIDDEN, City CHAR(20))"
        )
        assert db.execute(
            "INSERT INTO Person VALUES (2, 'Bob', 'Paris'), "
            "(1, 'Eve', 'Lyon')"
        ) == 2
        db.load()
        result = db.query("SELECT Name, City FROM Person WHERE PID = 1")
        assert result.rows == [("Eve", "Lyon")]

    def test_insert_arity_checked(self):
        db = GhostDB()
        db.execute("CREATE TABLE T (id INTEGER PRIMARY KEY, x INTEGER)")
        with pytest.raises(Exception, match="arity"):
            db.execute("INSERT INTO T VALUES (1)")

    def test_insert_type_checked(self):
        db = GhostDB()
        db.execute("CREATE TABLE T (id INTEGER PRIMARY KEY, x DATE)")
        with pytest.raises(Exception):
            db.execute("INSERT INTO T VALUES (1, 'not a date')")

    def test_insert_after_load_rejected(self, fresh_session):
        with pytest.raises(SessionError, match="secure setting"):
            fresh_session.execute(
                "INSERT INTO Medicine VALUES (9999, 'X', 'Y', 'Z')"
            )


class TestQueryApi:
    def test_query_returns_queryresult(self, demo_session):
        result = demo_session.query(demo_query())
        assert isinstance(result, QueryResult)
        assert result.row_count == len(result.rows)

    def test_execute_dispatches_select(self, demo_session):
        result = demo_session.execute("SELECT Country FROM Doctor")
        assert isinstance(result, QueryResult)

    def test_query_rejects_ddl(self, demo_session):
        with pytest.raises(SessionError):
            demo_session.query("CREATE TABLE X (id INTEGER PRIMARY KEY)")

    def test_bind_rejects_non_select(self, demo_session):
        with pytest.raises(SessionError, match="SELECT"):
            demo_session.bind("INSERT INTO T VALUES (1)")

    def test_query_text_announced_on_usb(self, fresh_session):
        fresh_session.reset_measurements()
        fresh_session.query(demo_query())
        first = fresh_session.usb_log[0]
        assert first.kind == "query"
        assert b"SELECT" in first.payload

    def test_rank_plans_counts_strategies(self, demo_session):
        ranked = demo_session.rank_plans(demo_query())
        assert len(ranked) == 4

    def test_reset_between_queries_isolates_metrics(self, fresh_session):
        fresh_session.query(demo_query())
        fresh_session.reset_measurements()
        assert fresh_session.device.clock.now == 0.0
        result = fresh_session.query(demo_query())
        assert result.metrics.elapsed_seconds > 0


class TestDateLiterals:
    def test_results_contain_real_dates(self, demo_session):
        result = demo_session.query(
            "SELECT Date FROM Visit WHERE Date > DATE '2007-06-01'"
        )
        assert result.rows
        for (date,) in result.rows:
            assert isinstance(date, datetime.date)
            assert date > datetime.date(2007, 6, 1)


class TestTinyDevice:
    def test_loads_and_queries_under_16kb(self, demo_data):
        """The whole pipeline works in a quarter of the demo RAM."""
        db = GhostDB(profile=TINY_DEVICE)
        for ddl in DEMO_SCHEMA_DDL:
            db.execute(ddl)
        db.load(demo_data)
        result = db.query(demo_query())
        assert result.metrics.ram_high_water <= TINY_DEVICE.ram_bytes
        assert result.rows is not None
