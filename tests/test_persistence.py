"""Session persistence: save, unplug, replug."""

import pytest

from repro.core.ghostdb import GhostDB
from repro.core.persistence import PersistenceError, load_session
from repro.reference import same_rows
from repro.workload.queries import demo_query


@pytest.fixture
def saved_path(fresh_session, tmp_path):
    path = tmp_path / "device.ghostdb"
    fresh_session.save(str(path))
    return fresh_session, str(path)


def test_round_trip_preserves_results(saved_path):
    original, path = saved_path
    restored = GhostDB.restore(path)
    a = original.query(demo_query())
    b = restored.query(demo_query())
    assert same_rows(a.rows, b.rows)
    assert a.columns == b.columns


def test_round_trip_preserves_simulated_costs(saved_path):
    """The restored device has identical storage layout, so identical
    simulated costs."""
    original, path = saved_path
    restored = GhostDB.restore(path)
    original.reset_measurements()
    restored.reset_measurements()
    a = original.query(demo_query())
    b = restored.query(demo_query())
    assert a.metrics.flash_page_reads == b.metrics.flash_page_reads
    assert a.metrics.elapsed_seconds == pytest.approx(
        b.metrics.elapsed_seconds
    )


def test_wear_counters_survive(fresh_session, tmp_path, demo_data):
    import datetime

    next_doc = len(demo_data["doctor"]) + 1
    for i in range(5):
        fresh_session.append(
            "doctor",
            [(next_doc + i, f"Dr {i}", "General", 10000, "France")],
        )
    writes = fresh_session.device.ftl.stats.logical_writes
    path = tmp_path / "worn.ghostdb"
    fresh_session.save(str(path))
    restored = GhostDB.restore(str(path))
    assert restored.device.ftl.stats.logical_writes == writes


def test_restored_session_accepts_appends(saved_path, demo_data):
    import datetime

    _original, path = saved_path
    restored = GhostDB.restore(path)
    next_med = len(demo_data["medicine"]) + 1
    restored.append(
        "medicine", [(next_med, "PostRestore", "None", "Panacea")]
    )
    result = restored.query(
        "SELECT Name FROM Medicine WHERE Type = 'Panacea'"
    )
    assert result.rows == [("PostRestore",)]


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "junk.bin"
    path.write_bytes(b"not a session at all")
    with pytest.raises(PersistenceError, match="not a GhostDB session"):
        load_session(str(path))


def test_wrong_version_rejected(tmp_path):
    from repro.core.persistence import MAGIC

    path = tmp_path / "future.bin"
    path.write_bytes(MAGIC + (99).to_bytes(2, "big") + b"x")
    with pytest.raises(PersistenceError, match="version"):
        load_session(str(path))


def test_truncated_file_rejected_before_unpickling(saved_path):
    _original, path = saved_path
    blob = open(path, "rb").read()
    open(path, "wb").write(blob[: len(blob) - 64])
    with pytest.raises(PersistenceError, match="truncated"):
        load_session(path)


def test_truncated_header_rejected(saved_path):
    from repro.core.persistence import MAGIC, VERSION

    _original, path = saved_path
    open(path, "wb").write(MAGIC + VERSION.to_bytes(2, "big") + b"\x00\x03")
    with pytest.raises(PersistenceError, match="header"):
        load_session(path)


def test_bit_flip_fails_checksum(saved_path):
    _original, path = saved_path
    blob = bytearray(open(path, "rb").read())
    blob[len(blob) // 2] ^= 0x40  # one flipped bit mid-payload
    open(path, "wb").write(bytes(blob))
    with pytest.raises(PersistenceError, match="checksum"):
        load_session(path)


def test_trailing_garbage_rejected(saved_path):
    _original, path = saved_path
    with open(path, "ab") as f:
        f.write(b"\x00")
    with pytest.raises(PersistenceError, match="truncated or padded"):
        load_session(path)


def test_failed_save_leaves_previous_file_intact(saved_path):
    """The temp-file + atomic-rename discipline: a save that dies must
    not clobber (or leave droppings next to) the committed file."""
    import os

    original, path = saved_path
    before = open(path, "rb").read()
    with pytest.raises(PersistenceError):
        # Not a GhostDB session: save refuses before touching the path.
        from repro.core.persistence import save_session

        save_session(object(), path)
    assert open(path, "rb").read() == before
    droppings = [
        name for name in os.listdir(os.path.dirname(path))
        if name.startswith(".ghostdb-session-")
    ]
    assert droppings == []
    restored = GhostDB.restore(path)
    assert same_rows(
        restored.query(demo_query()).rows, original.query(demo_query()).rows
    )
