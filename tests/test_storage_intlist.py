"""Packed integer lists on flash."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.device import SmartUsbDevice
from repro.storage.intlist import (
    IntListReader,
    IntListWriter,
    MAX_ID,
    free_intlist,
)


def write_list(device, values):
    writer = IntListWriter(device, "t")
    writer.extend(values)
    writer.close()
    return writer


def test_roundtrip(device):
    values = list(range(0, 5000, 3))
    writer = write_list(device, values)
    with IntListReader(device, writer.pages, writer.count, "r") as reader:
        assert reader.read_all() == values


def test_empty_list(device):
    writer = write_list(device, [])
    assert writer.pages == []
    with IntListReader(device, [], 0, "r") as reader:
        assert reader.read_all() == []


def test_spans_multiple_pages(device):
    per_page = device.profile.page_size // 4
    values = list(range(per_page * 3 + 7))
    writer = write_list(device, values)
    assert len(writer.pages) == 4
    with IntListReader(device, writer.pages, writer.count, "r") as reader:
        assert reader.read_all() == values


def test_boundary_ids(device):
    writer = write_list(device, [0, 1, MAX_ID])
    with IntListReader(device, writer.pages, writer.count, "r") as reader:
        assert reader.read_all() == [0, 1, MAX_ID]


def test_out_of_range_rejected(device):
    writer = IntListWriter(device, "t")
    with pytest.raises(ValueError):
        writer.append(-1)
    with pytest.raises(ValueError):
        writer.append(MAX_ID + 1)
    writer.close()


def test_closed_writer_rejects(device):
    writer = IntListWriter(device, "t")
    writer.close()
    with pytest.raises(ValueError, match="closed"):
        writer.append(1)


def test_buffers_charged_and_released(device):
    base = device.ram.used
    writer = IntListWriter(device, "t")
    assert device.ram.used == base + device.profile.page_size
    writer.close()
    assert device.ram.used == base
    reader = IntListReader(device, writer.pages, 0, "r")
    assert device.ram.used == base + device.profile.page_size
    reader.close()
    assert device.ram.used == base


def test_free_intlist_releases_flash(device):
    writer = write_list(device, list(range(3000)))
    before = device.ftl.mapped_pages
    free_intlist(device, writer.pages)
    assert device.ftl.mapped_pages == before - len(writer.pages)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, MAX_ID), max_size=2000))
def test_roundtrip_property(values):
    device = SmartUsbDevice()
    writer = write_list(device, values)
    with IntListReader(device, writer.pages, writer.count, "r") as reader:
        assert reader.read_all() == values
