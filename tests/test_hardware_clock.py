"""SimClock accounting."""

import pytest

from repro.hardware.clock import CATEGORIES, SimClock, TimeBreakdown


def test_clock_starts_at_zero():
    clock = SimClock()
    assert clock.now == 0.0
    assert clock.breakdown().total == 0.0


def test_advance_accumulates_per_category():
    clock = SimClock()
    clock.advance(0.5, "flash_read")
    clock.advance(0.25, "flash_read")
    clock.advance(1.0, "usb")
    breakdown = clock.breakdown()
    assert breakdown.flash_read == pytest.approx(0.75)
    assert breakdown.usb == pytest.approx(1.0)
    assert clock.now == pytest.approx(1.75)


def test_every_declared_category_is_chargeable():
    clock = SimClock()
    for category in CATEGORIES:
        clock.advance(0.1, category)
    assert clock.now == pytest.approx(0.1 * len(CATEGORIES))


def test_unknown_category_rejected():
    clock = SimClock()
    with pytest.raises(ValueError, match="unknown clock category"):
        clock.advance(1.0, "quantum")


def test_negative_charge_rejected():
    clock = SimClock()
    with pytest.raises(ValueError, match="negative"):
        clock.advance(-0.1, "cpu")


def test_breakdown_is_a_snapshot():
    clock = SimClock()
    clock.advance(1.0, "cpu")
    snap = clock.breakdown()
    clock.advance(1.0, "cpu")
    assert snap.cpu == pytest.approx(1.0)
    assert clock.breakdown().cpu == pytest.approx(2.0)


def test_breakdown_subtraction():
    a = TimeBreakdown(flash_read=2.0, usb=1.0)
    b = TimeBreakdown(flash_read=0.5, usb=1.0)
    diff = a - b
    assert diff.flash_read == pytest.approx(1.5)
    assert diff.usb == pytest.approx(0.0)
    assert diff.total == pytest.approx(1.5)


def test_breakdown_as_dict_covers_all_categories():
    assert set(TimeBreakdown().as_dict()) == set(CATEGORIES)


def test_reset_zeroes_everything():
    clock = SimClock()
    clock.advance(1.0, "flash_write")
    clock.reset()
    assert clock.now == 0.0
    assert clock.breakdown().flash_write == 0.0
