"""The device-side buffer pool (LRU page cache).

Three layers of guarantees:

* **Policy** (unit, direct :class:`PageCache`): admission and LRU
  promotion happen only on full-page reads; partial probes are served
  for free but never mutate cache state; invalidation, shedding and
  resizing keep the RAM-budget accounting exact.
* **Transparency** (hypothesis sweep): rows and observable USB traffic
  are bit-identical across every cache size x batch size combination --
  the pool is a device-private optimisation the wire must not betray.
* **Attribution and lifetime** (demo session): cold fills stamp the
  reading operator; the pool drops everything across remount and
  power-cut recovery (cached contents are volatile RAM).
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ghostdb import GhostDB, SessionConfig
from repro.engine.executor import ExecConfig
from repro.faults import PowerCutError
from repro.hardware.pagecache import CACHE_LABEL, PageCache
from repro.hardware.profiles import DEMO_DEVICE
from repro.hardware.ram import RamBudget, RamExhaustedError
from repro.optimizer.space import enumerate_strategies
from repro.workload.queries import QUERY_FAMILIES, demo_query

from tests.test_engine_batches import hardware_counters
from tests.test_property_random import RandomSchema

PAGE = 512  # small unit-test page size; real profiles use 2048


def make_pool(capacity_pages, budget_pages=8):
    budget = RamBudget(capacity=budget_pages * PAGE)
    return PageCache(budget, PAGE, capacity_pages), budget


def fill(pool, lpages):
    for lpage in lpages:
        pool.admit(lpage, bytes([lpage % 251]) * PAGE)


# ---------------------------------------------------------------------------
# Policy: LRU over full-page reads only.
# ---------------------------------------------------------------------------


class TestPolicy:
    def test_miss_admit_hit(self):
        pool, _ = make_pool(capacity_pages=4)
        assert pool.lookup(7, promote=True) is None
        fill(pool, [7])
        assert pool.lookup(7, promote=True) == bytes([7]) * PAGE
        assert (pool.stats.hits, pool.stats.misses) == (1, 1)
        assert pool.stats.hit_rate == 0.5

    def test_full_read_promotes_lru(self):
        pool, _ = make_pool(capacity_pages=2)
        fill(pool, [1, 2])
        pool.lookup(1, promote=True)  # 1 becomes MRU
        fill(pool, [3])  # evicts 2, not 1
        assert pool.lookup(1, promote=True) is not None
        assert pool.lookup(2, promote=True) is None
        assert pool.stats.evictions == 1

    def test_partial_probe_never_reorders(self):
        pool, _ = make_pool(capacity_pages=2)
        fill(pool, [1, 2])
        # A partial probe is served but must not refresh page 1 ...
        assert pool.lookup(1, promote=False) is not None
        fill(pool, [3])  # ... so page 1 is still LRU and gets evicted
        assert pool.lookup(1, promote=False) is None
        assert pool.lookup(2, promote=False) is not None

    def test_admit_is_idempotent(self):
        pool, budget = make_pool(capacity_pages=4)
        fill(pool, [5])
        used = budget.used
        fill(pool, [5])
        assert pool.page_count == 1
        assert budget.used == used

    def test_admit_beyond_capacity_evicts_lru_first(self):
        pool, _ = make_pool(capacity_pages=3)
        fill(pool, [1, 2, 3, 4])
        assert pool.page_count == 3
        assert pool.lookup(1, promote=False) is None  # the LRU page went
        assert pool.lookup(4, promote=False) is not None

    def test_disabled_pool_never_caches(self):
        pool, budget = make_pool(capacity_pages=0)
        assert not pool.enabled
        fill(pool, [1])
        assert pool.page_count == 0
        assert budget.used == 0
        assert pool.lookup(1, promote=True) is None
        # A disabled pool does not even count misses: lookups would
        # otherwise differ cache-on vs cache-off in per-query metrics.
        assert pool.stats.lookups == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            make_pool(capacity_pages=-1)
        pool, _ = make_pool(capacity_pages=2)
        with pytest.raises(ValueError):
            pool.resize(-3)


# ---------------------------------------------------------------------------
# Invalidation, shedding, resizing: RAM accounting stays exact.
# ---------------------------------------------------------------------------


class TestRamAccounting:
    def test_invalidate_frees_budget(self):
        pool, budget = make_pool(capacity_pages=4)
        fill(pool, [1, 2])
        assert budget.used == 2 * PAGE
        pool.invalidate(1)
        assert pool.page_count == 1
        assert budget.used == PAGE
        assert pool.stats.invalidations == 1
        pool.invalidate(99)  # absent page: a no-op
        assert pool.stats.invalidations == 1

    def test_clear_drops_everything(self):
        pool, budget = make_pool(capacity_pages=4)
        fill(pool, [1, 2, 3])
        pool.clear()
        assert pool.page_count == 0
        assert budget.used == 0
        assert pool.stats.invalidations == 3

    def test_resize_down_evicts_lru_first(self):
        pool, budget = make_pool(capacity_pages=4)
        fill(pool, [1, 2, 3, 4])
        pool.resize(2)
        assert pool.page_count == 2
        assert budget.used == 2 * PAGE
        assert pool.lookup(1, promote=False) is None
        assert pool.lookup(4, promote=False) is not None

    def test_resize_zero_disables_and_clears(self):
        pool, budget = make_pool(capacity_pages=4)
        fill(pool, [1, 2])
        pool.resize(0)
        assert not pool.enabled
        assert pool.page_count == 0
        assert budget.used == 0

    def test_unbounded_pool_is_bounded_by_the_budget(self):
        pool, budget = make_pool(capacity_pages=None, budget_pages=4)
        fill(pool, range(6))
        assert pool.page_count == 4  # all the budget allows
        assert budget.used == budget.capacity
        assert pool.stats.evictions == 2  # LRU made room for the rest
        assert pool.lookup(0, promote=False) is None
        assert pool.lookup(5, promote=False) is not None

    def test_capacity_for_costing(self):
        pool, _ = make_pool(capacity_pages=3)
        assert pool.capacity_for_costing == 3
        pool.resize(0)
        assert pool.capacity_for_costing == 0
        pool.resize(None)
        assert pool.capacity_for_costing == 8  # budget // page size

    def test_cached_pages_excluded_from_high_water(self):
        pool, budget = make_pool(capacity_pages=None, budget_pages=4)
        fill(pool, range(4))
        assert budget.used == 4 * PAGE
        assert budget.high_water == 0  # reclaimable use is not working set
        with budget.allocate(PAGE, "operator"):
            assert budget.high_water == PAGE

    def test_firm_allocation_sheds_lru_pages(self):
        pool, budget = make_pool(capacity_pages=None, budget_pages=4)
        fill(pool, range(4))
        alloc = budget.allocate(2 * PAGE, "operator")  # pressure-hook shed
        assert pool.stats.shed_pages == 2
        assert pool.page_count == 2
        assert pool.lookup(0, promote=False) is None  # LRU went first
        assert pool.lookup(3, promote=False) is not None
        assert budget.used == budget.capacity
        alloc.release()

    def test_shedding_everything_still_raises_when_short(self):
        pool, budget = make_pool(capacity_pages=None, budget_pages=4)
        fill(pool, range(4))
        with pytest.raises(RamExhaustedError):
            budget.allocate(5 * PAGE, "operator")
        assert pool.page_count == 0  # the pool gave all it had
        assert pool.stats.shed_pages == 4
        assert budget.by_label[CACHE_LABEL] == 0


# ---------------------------------------------------------------------------
# Device integration: the FTL admits, serves and invalidates.
# ---------------------------------------------------------------------------


class TestFtlIntegration:
    def test_full_read_admits_and_rereads_hit(self, device):
        lpage = device.ftl.allocate()
        device.ftl.write(lpage, b"\xab" * device.profile.page_size)
        device.ftl.read(lpage)  # cold: flash pays, pool fills
        reads_after_cold = device.flash.stats.page_reads
        assert device.page_cache.page_count == 1
        data = device.ftl.read(lpage)  # warm: flash untouched
        assert data == b"\xab" * device.profile.page_size
        assert device.flash.stats.page_reads == reads_after_cold
        assert device.page_cache.stats.hits == 1

    def test_partial_read_served_from_pool_without_admitting(self, device):
        cold = device.ftl.allocate()
        device.ftl.write(cold, b"\xcd" * device.profile.page_size)
        # Partial probe of an uncached page: flash pays, pool stays empty.
        assert device.ftl.read(cold, 4, 8) == b"\xcd" * 8
        assert device.page_cache.page_count == 0
        # After a full read the same probe is free.
        device.ftl.read(cold)
        reads = device.flash.stats.page_reads
        assert device.ftl.read(cold, 4, 8) == b"\xcd" * 8
        assert device.flash.stats.page_reads == reads

    def test_write_invalidates_stale_content(self, device):
        lpage = device.ftl.allocate()
        device.ftl.write(lpage, b"\x01" * device.profile.page_size)
        device.ftl.read(lpage)
        device.ftl.write(lpage, b"\x02" * device.profile.page_size)
        assert device.page_cache.stats.invalidations == 1
        assert device.ftl.read(lpage) == (
            b"\x02" * device.profile.page_size
        )

    def test_free_invalidates(self, device):
        lpage = device.ftl.allocate()
        device.ftl.write(lpage, b"\x03" * device.profile.page_size)
        device.ftl.read(lpage)
        assert device.page_cache.page_count == 1
        device.ftl.free(lpage)
        assert device.page_cache.page_count == 0


# ---------------------------------------------------------------------------
# Transparency: cache size never changes rows or the wire; batch size
# never changes hardware behaviour at any cache size.
# ---------------------------------------------------------------------------

#: ``None`` in a spec means "resize to unbounded after load".
CACHE_SPECS = (0, 1, 8, None)
SWEEP_BATCHES = (1, 7, 256)


def _session(cache_spec, batch: int) -> GhostDB:
    db = GhostDB(
        config=SessionConfig(
            exec_config=ExecConfig(exec_batch=batch),
            cache_pages=cache_spec if cache_spec is not None else 0,
        )
    )
    return db


def _apply_unbounded(db: GhostDB) -> None:
    db.device.page_cache.resize(None)
    db.optimizer.cost_model.cache_pages = (
        db.device.page_cache.capacity_for_costing
    )


def usb_counters(metrics) -> tuple:
    return (
        metrics.usb_messages,
        metrics.usb_bytes_to_device,
        metrics.usb_bytes_to_host,
    )


@settings(max_examples=2, deadline=None)
@given(seed=st.integers(min_value=1, max_value=500))
def test_cache_and_batch_sweep_on_random_queries(seed):
    """Rows and USB traffic are invariant across {cache x batch}; all
    hardware counters and the simulated clock are invariant across batch
    sizes within a cache size.

    The execution strategy is pinned to the first enumerated candidate:
    the cost model legitimately prefers different plans at different
    cache sizes, and USB bit-identity is a per-plan guarantee.
    """
    schema = RandomSchema(seed)
    ddl = schema.ddl()
    data = schema.data()
    query_rng = random.Random(seed * 1000)
    queries = [schema.random_query(query_rng) for _ in range(2)]

    runs = {}
    for cache_spec in CACHE_SPECS:
        for batch in SWEEP_BATCHES:
            db = _session(cache_spec, batch)
            for statement in ddl:
                db.execute(statement)
            db.load(data)
            if cache_spec is None:
                _apply_unbounded(db)
            outcomes = []
            for sql in queries:
                db.reset_measurements()
                bound = db.bind(sql)
                strategy = enumerate_strategies(bound)[0]
                result = db.query_with_strategy(sql, strategy)
                outcomes.append((result.rows, result.metrics))
            runs[(cache_spec, batch)] = outcomes

    ref_rows, ref_usb = None, None
    for (cache_spec, batch), outcomes in runs.items():
        for q, (rows, metrics) in enumerate(outcomes):
            label = f"seed={seed} cache={cache_spec} batch={batch} q#{q}"
            if ref_rows is None:
                ref_rows, ref_usb = {}, {}
            if q not in ref_rows:
                ref_rows[q], ref_usb[q] = rows, usb_counters(metrics)
            assert rows == ref_rows[q], label
            assert usb_counters(metrics) == ref_usb[q], label

    for cache_spec in CACHE_SPECS:
        reference = runs[(cache_spec, SWEEP_BATCHES[0])]
        for batch in SWEEP_BATCHES[1:]:
            for q, ((_, ref_m), (_, m)) in enumerate(
                zip(reference, runs[(cache_spec, batch)])
            ):
                label = f"seed={seed} cache={cache_spec} batch={batch} q#{q}"
                assert hardware_counters(m) == hardware_counters(ref_m), label
                assert (m.cache_hits, m.cache_misses) == (
                    ref_m.cache_hits,
                    ref_m.cache_misses,
                ), label
                assert math.isclose(
                    m.elapsed_seconds,
                    ref_m.elapsed_seconds,
                    rel_tol=1e-9,
                    abs_tol=1e-12,
                ), label


def test_disabled_cache_records_no_lookups(fresh_session):
    fresh_session.set_cache(0)
    fresh_session.reset_measurements()
    result = fresh_session.query(demo_query())
    assert result.metrics.cache_hits == 0
    assert result.metrics.cache_misses == 0


# ---------------------------------------------------------------------------
# Attribution: cold fills stamp the operator that did the reading.
# ---------------------------------------------------------------------------


def _walk(node):
    yield node
    for child in node.children():
        yield from _walk(child)


def _run_measured(session, sql):
    bound = session.bind(sql)
    ranked = session.optimizer.optimize(bound)
    result = session.executor.execute(ranked.plan)
    return ranked.plan, result


def test_cache_lookups_attributed_to_reading_operators(fresh_session):
    sql = QUERY_FAMILIES["hidden-range"]
    fresh_session.reset_measurements()
    plan, result = _run_measured(fresh_session, sql)
    assert result.metrics.cache_hits > 0, "query must exercise the pool"

    node_hits = node_misses = 0
    for node in _walk(plan):
        measured = getattr(node, "_measured", None)
        if measured is None:
            continue
        node_hits += measured.cache_hits
        node_misses += measured.cache_misses
        # A cold fill is a flash read: any operator stamped with misses
        # must also be stamped with the reads that filled the pool.
        if measured.cache_misses:
            assert measured.flash_page_reads >= 1, node.label()
    assert node_hits == result.metrics.cache_hits
    assert node_misses == result.metrics.cache_misses


def test_no_cache_attribution_with_pool_disabled(fresh_session):
    fresh_session.set_cache(0)
    fresh_session.reset_measurements()
    plan, result = _run_measured(fresh_session, QUERY_FAMILIES["hidden-range"])
    for node in _walk(plan):
        measured = getattr(node, "_measured", None)
        if measured is None:
            continue
        assert measured.cache_hits == 0, node.label()
        assert measured.cache_misses == 0, node.label()


# ---------------------------------------------------------------------------
# Lifetime: cached pages are volatile RAM and die with the power.
# ---------------------------------------------------------------------------


def _warm_pool(session, n_pages=3):
    """Fill the pool with full reads of real heap pages.

    Queries may legitimately end with nothing resident (their own firm
    reservations shed the pool), so lifetime tests warm it directly.
    """
    heap = session.hidden.heaps["prescription"]
    for lpage in heap.pages[:n_pages]:
        session.device.ftl.read(lpage)
    assert session.device.page_cache.page_count > 0


def test_remount_drops_the_pool(fresh_session):
    session = fresh_session
    reference = session.query(demo_query())
    _warm_pool(session)
    session.remount()
    assert session.device.page_cache.page_count == 0
    result = session.query(demo_query())
    assert result.rows == reference.rows


def test_power_cut_recovery_invalidates_the_pool(fresh_session):
    session = fresh_session
    reference = session.query(demo_query())
    _warm_pool(session)

    injector = session.set_faults("none", seed=0)
    injector.schedule_power_cut(at_flash_op=8)
    with pytest.raises(PowerCutError):
        session.query(demo_query())
    session.clear_faults()
    session.remount()
    assert session.device.page_cache.page_count == 0

    result = session.query(demo_query())
    assert result.rows == reference.rows


def test_reset_measurements_starts_cold(fresh_session):
    session = fresh_session
    session.query(demo_query())
    _warm_pool(session)
    session.reset_measurements()
    assert session.device.page_cache.page_count == 0
    assert session.device.page_cache.stats.lookups == 0
