"""Privacy integration: every query family leaves the boundary clean,
and the quantitative claims of Figure 1 hold."""

import pytest

from repro.hardware.usb import Direction
from repro.privacy.leakcheck import LeakChecker
from repro.privacy.spy import SpyView
from tests.test_integration_queries import QUERIES


@pytest.fixture(scope="module")
def checker(demo_session, demo_data):
    return LeakChecker(demo_session.schema, demo_data)


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_no_leaks_for_any_query(demo_session, checker, name):
    demo_session.reset_measurements()
    demo_session.query(QUERIES[name])
    report = checker.check(demo_session.usb_log)
    assert report.ok, f"{name}: {report.summary()}"


def test_outbound_traffic_is_only_requests_and_ids(demo_session):
    demo_session.reset_measurements()
    demo_session.query(QUERIES["paper-demo"])
    outbound = [
        r for r in demo_session.usb_log
        if r.direction is Direction.TO_HOST
    ]
    assert outbound
    assert {r.kind for r in outbound} <= {"request", "fetch_ids"}


def test_spy_learns_only_queries_and_visible_data(demo_session):
    """Figure 1's contract, checked quantitatively: the spy's transcript
    consists of the query, visible predicate requests, ID lists and
    visible values -- and nothing else."""
    demo_session.reset_measurements()
    demo_session.query(QUERIES["paper-demo"])
    spy = SpyView(demo_session.usb_log)
    kinds = {(s.direction, s.kind) for s in spy.summary()}
    allowed = {
        ("host->device", "query"),
        ("host->device", "ids"),
        ("host->device", "ids_end"),
        ("host->device", "count"),
        ("host->device", "values"),
        ("device->host", "request"),
        ("device->host", "fetch_ids"),
    }
    assert kinds <= allowed


def test_hidden_selection_result_size_not_revealed_directly(demo_session):
    """A hidden-only query reveals the IDs it projects, but no ID list
    for the hidden predicate itself ever crosses."""
    demo_session.reset_measurements()
    demo_session.query(QUERIES["hidden-only"])
    inbound_id_lists = [
        r for r in demo_session.usb_log
        if r.kind == "ids" and r.direction is Direction.TO_DEVICE
    ]
    # No visible selection in this query: nothing streams in.
    assert inbound_id_lists == []


def test_intermediate_results_never_leave(demo_session, demo_data):
    """The SKT tuples flowing between device operators must not appear
    on the bus: outbound payload volume stays far below the intermediate
    result volume for an unselective query."""
    demo_session.reset_measurements()
    result = demo_session.query(QUERIES["no-predicates"])
    outbound_bytes = sum(
        r.size for r in demo_session.usb_log
        if r.direction is Direction.TO_HOST
    )
    intermediate_bytes = len(demo_data["prescription"]) * 5 * 4
    assert outbound_bytes < intermediate_bytes / 2
    assert result.rows
