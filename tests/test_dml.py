"""First-class UPDATE / DELETE: binding, execution, constraints, leakage.

DML rides the crash-safe rebuild discipline of ``maintenance`` and
travels the secure channel: statements may name hidden values, so they
generate *zero* observable USB traffic (unlike SELECT, which announces
its text to the device over the spied link).
"""

from __future__ import annotations

import pytest

from repro.core.ghostdb import GhostDB, SessionError
from repro.engine.dml import DmlError
from repro.engine.executor import DmlResult
from repro.reference import evaluate_reference, same_rows
from repro.sql.errors import BindError
from repro.workload.datagen import DatasetConfig, MedicalDataGenerator
from repro.workload.queries import DEMO_SCHEMA_DDL

SCALE = 200


@pytest.fixture(scope="module")
def dml_data() -> dict[str, list]:
    return MedicalDataGenerator(
        DatasetConfig(n_prescriptions=SCALE)
    ).generate()


@pytest.fixture
def session(dml_data) -> GhostDB:
    db = GhostDB()
    for ddl in DEMO_SCHEMA_DDL:
        db.execute(ddl)
    db.load(dml_data)
    return db


def apply_update_to_reference(rows, tree, table, assign, match):
    """Host-side reference: apply ``assign`` where ``match(row)``."""
    tdef = tree.table(table)
    out = []
    for row in rows:
        if match(row, tdef):
            new = list(row)
            for name, value in assign.items():
                new[tdef.column_index(name)] = value
            out.append(tuple(new))
        else:
            out.append(row)
    return out


JOIN_SQL = (
    "SELECT Patient.Name, Quantity FROM Patient, Visit, Prescription "
    "WHERE Patient.PatID = Visit.PatID "
    "AND Visit.VisID = Prescription.VisID AND Quantity > 5"
)


class TestUpdate:
    def test_update_hidden_column_matches_reference(
        self, session, dml_data
    ):
        before = session.query(
            "SELECT Quantity FROM Prescription WHERE Quantity = 7"
        ).row_count
        assert before > 0
        result = session.execute(
            "UPDATE Prescription SET Quantity = 9 WHERE Quantity = 7"
        )
        assert isinstance(result, DmlResult)
        assert result.kind == "update"
        assert result.matched == before
        assert result.changed == before
        assert (
            session.query(
                "SELECT Quantity FROM Prescription WHERE Quantity = 7"
            ).row_count
            == 0
        )
        # Full-join parity against the host-side reference model.
        ref = {name: list(rows) for name, rows in dml_data.items()}
        qi = session.tree.table("prescription").column_index("Quantity")
        ref["prescription"] = [
            tuple(9 if (i == qi and v == 7) else v for i, v in enumerate(r))
            for r in ref["prescription"]
        ]
        bound = session.bind(JOIN_SQL)
        expected = evaluate_reference(session.tree, ref, bound)
        assert same_rows(session.query(JOIN_SQL).rows, expected)

    def test_update_visible_column_syncs_site(self, session):
        result = session.execute(
            "UPDATE Patient SET Age = 55 WHERE PatID = 1"
        )
        assert result.matched == 1
        assert session.site.fetch_values("patient", [1], ["age"]) == {
            1: (55,)
        }
        assert session.query(
            "SELECT Age FROM Patient WHERE PatID = 1"
        ).rows == [(55,)]

    def test_update_float_promotion(self, session):
        result = session.execute(
            "UPDATE Patient SET BodyMassIndex = 25 WHERE PatID = 1"
        )
        assert result.matched == 1
        got = session.query(
            "SELECT BodyMassIndex FROM Patient WHERE PatID = 1"
        ).rows
        assert got == [(25.0,)]
        assert isinstance(got[0][0], float)

    def test_no_match_is_a_noop(self, session):
        result = session.execute(
            "UPDATE Prescription SET Quantity = 1 WHERE Quantity = 424242"
        )
        assert result.matched == 0
        assert result.changed == 0
        assert result.metrics.flash_page_writes == 0

    def test_same_value_update_skips_rebuild(self, session):
        row = session.query(
            "SELECT Quantity FROM Prescription WHERE PreID = 1"
        ).rows
        quantity = row[0][0]
        result = session.execute(
            f"UPDATE Prescription SET Quantity = {quantity} "
            f"WHERE PreID = 1"
        )
        assert result.matched == 1
        assert result.changed == 0
        assert result.metrics.flash_page_writes == 0

    def test_update_charges_device_time(self, session):
        result = session.execute(
            "UPDATE Prescription SET Quantity = 8 WHERE Quantity = 6"
        )
        assert result.matched > 0
        assert result.metrics.flash_page_writes > 0
        assert result.metrics.elapsed_seconds > 0


class TestDelete:
    def test_delete_leaf_rows(self, session, dml_data):
        before = session.query(
            "SELECT Quantity FROM Prescription WHERE Quantity = 3"
        ).row_count
        assert before > 0
        result = session.execute(
            "DELETE FROM Prescription WHERE Quantity = 3"
        )
        assert result.kind == "delete"
        assert result.matched == before
        assert (
            session.query(
                "SELECT Quantity FROM Prescription WHERE Quantity = 3"
            ).row_count
            == 0
        )
        ref = {name: list(rows) for name, rows in dml_data.items()}
        qi = session.tree.table("prescription").column_index("Quantity")
        ref["prescription"] = [
            r for r in ref["prescription"] if r[qi] != 3
        ]
        bound = session.bind(JOIN_SQL)
        expected = evaluate_reference(session.tree, ref, bound)
        assert same_rows(session.query(JOIN_SQL).rows, expected)

    def test_delete_referenced_parent_restricted(self, session, dml_data):
        tdef = session.tree.table("prescription")
        med = dml_data["prescription"][0][tdef.column_index("MedID")]
        count_before = session.hidden.row_count("medicine")
        with pytest.raises(DmlError, match="referenced by"):
            session.execute(f"DELETE FROM Medicine WHERE MedID = {med}")
        # RESTRICT left everything untouched.
        assert session.hidden.row_count("medicine") == count_before
        assert session.site.row_count("medicine") == count_before

    def test_delete_unreferenced_parent_allowed(self, session, dml_data):
        tdef = session.tree.table("prescription")
        mi = tdef.column_index("MedID")
        used = {r[mi] for r in dml_data["prescription"]}
        free = sorted(
            {r[0] for r in dml_data["medicine"]} - used
        )
        assert free, "dataset has no unreferenced medicine"
        result = session.execute(
            f"DELETE FROM Medicine WHERE MedID = {free[0]}"
        )
        assert result.matched == 1
        assert (
            session.hidden.row_count("medicine")
            == len(dml_data["medicine"]) - 1
        )

    def test_delete_no_match_is_a_noop(self, session):
        result = session.execute(
            "DELETE FROM Prescription WHERE Quantity = 424242"
        )
        assert result.matched == 0
        assert result.metrics.flash_page_writes == 0

    def test_delete_all_rows(self, session):
        total = session.hidden.row_count("prescription")
        result = session.execute("DELETE FROM Prescription")
        assert result.matched == total
        assert session.hidden.row_count("prescription") == 0
        assert session.site.row_count("prescription") == 0
        # The empty table stays consistent across a remount.
        session.remount()
        assert (
            session.device.ftl.mapped_lpages()
            == session.hidden.referenced_pages()
        )
        assert session.hidden.row_count("prescription") == 0


class TestBindingErrors:
    def test_primary_key_assignment_rejected(self, session):
        with pytest.raises(BindError, match="primary key"):
            session.execute("UPDATE Prescription SET PreID = 1")

    def test_foreign_key_assignment_rejected(self, session):
        with pytest.raises(BindError, match="foreign key"):
            session.execute("UPDATE Prescription SET VisID = 1")

    def test_type_mismatch_rejected(self, session):
        with pytest.raises(BindError, match="does not fit"):
            session.execute("UPDATE Prescription SET Quantity = 'many'")

    def test_double_assignment_rejected(self, session):
        with pytest.raises(BindError, match="assigned twice"):
            session.execute(
                "UPDATE Prescription SET Quantity = 1, Quantity = 2"
            )

    def test_column_to_column_where_rejected(self, session):
        with pytest.raises(BindError, match="single-table"):
            session.execute(
                "DELETE FROM Prescription WHERE Quantity = VisID"
            )

    def test_query_rejects_dml(self, session):
        with pytest.raises(SessionError):
            session.query("DELETE FROM Prescription WHERE Quantity = 3")


class TestDmlLeakage:
    def test_dml_generates_no_usb_traffic(self, session):
        """The spied USB link sees nothing: DML uses the secure channel.

        This is what keeps every read scenario's leak signature
        byte-identical whether or not the workload also mutates data.
        """
        mark = len(session.device.usb.log)
        session.execute(
            "UPDATE Prescription SET Quantity = 11 WHERE Quantity = 4"
        )
        session.execute("DELETE FROM Prescription WHERE Quantity = 11")
        assert len(session.device.usb.log) == mark

    def test_select_after_dml_still_announces(self, session):
        session.execute(
            "UPDATE Prescription SET Quantity = 11 WHERE Quantity = 4"
        )
        mark = len(session.device.usb.log)
        session.query("SELECT Quantity FROM Prescription WHERE Quantity = 11")
        assert len(session.device.usb.log) > mark
