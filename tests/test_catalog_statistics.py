"""Column statistics and selectivity estimation."""

import datetime

import pytest
from hypothesis import given, strategies as st

from repro.catalog.statistics import (
    EXACT_THRESHOLD,
    StatisticsCollector,
)
from repro.storage.types import CharType, DateType, IntegerType


def collect(values, dtype=None, name="c"):
    dtype = dtype or IntegerType()
    collector = StatisticsCollector("t", [name], [dtype])
    for value in values:
        collector.add((value,))
    return collector.finish().column(name)


class TestExactFrequencies:
    def test_low_cardinality_keeps_exact_counts(self):
        col = collect(["a", "b", "a", "a"], CharType(4))
        assert col.frequencies == {"a": 3, "b": 1}
        assert col.n_distinct == 2
        assert col.row_count == 4

    def test_eq_selectivity_exact(self):
        col = collect(["a"] * 30 + ["b"] * 70, CharType(4))
        assert col.selectivity_eq("a") == pytest.approx(0.3)
        assert col.selectivity_eq("b") == pytest.approx(0.7)
        assert col.selectivity_eq("missing") == 0.0

    def test_range_selectivity_exact(self):
        col = collect([1, 2, 3, 4, 5] * 10)
        assert col.selectivity_range(2, 4) == pytest.approx(0.6)
        assert col.selectivity_range(None, 3) == pytest.approx(0.6)
        assert col.selectivity_range(3, None) == pytest.approx(0.6)
        assert col.selectivity_range(
            2, 4, include_low=False, include_high=False
        ) == pytest.approx(0.2)


class TestHistogram:
    def test_high_cardinality_uses_histogram(self):
        col = collect(list(range(1000)))
        assert col.frequencies is None
        assert col.histogram is not None
        assert col.n_distinct == 1000

    def test_uniform_range_estimate_close(self):
        col = collect(list(range(1000)))
        estimated = col.selectivity_range(250, 500)
        assert estimated == pytest.approx(0.25, abs=0.05)

    def test_open_range_estimates(self):
        col = collect(list(range(1000)))
        assert col.selectivity_range(None, None) == pytest.approx(1.0, abs=0.01)
        assert col.selectivity_range(900, None) == pytest.approx(0.1, abs=0.05)

    def test_date_histogram(self):
        values = [
            datetime.date(2006, 1, 1) + datetime.timedelta(days=i)
            for i in range(365)
        ]
        col = collect(values, DateType())
        estimated = col.selectivity_range(
            datetime.date(2006, 10, 1), None
        )
        assert estimated == pytest.approx(92 / 365, abs=0.05)

    def test_eq_on_histogram_uses_distinct_count(self):
        col = collect(list(range(500)))
        assert col.selectivity_eq(42) == pytest.approx(1 / 500)


class TestEdgeCases:
    def test_empty_column(self):
        col = collect([])
        assert col.selectivity_eq(1) == 0.0
        assert col.selectivity_range(None, None) == 0.0
        assert col.min_value is None

    def test_single_value(self):
        col = collect([7] * 10)
        assert col.min_value == 7 and col.max_value == 7
        assert col.selectivity_eq(7) == pytest.approx(1.0)
        assert col.selectivity_range(0, 100) == pytest.approx(1.0)
        assert col.selectivity_range(8, 100) == 0.0

    def test_min_max_tracked(self):
        col = collect([5, -3, 18, 0])
        assert col.min_value == -3
        assert col.max_value == 18

    def test_threshold_boundary(self):
        exact = collect(list(range(EXACT_THRESHOLD)))
        assert exact.frequencies is not None
        histo = collect(list(range(EXACT_THRESHOLD + 1)))
        assert histo.frequencies is None


@given(
    st.lists(st.integers(0, 100), min_size=1, max_size=300),
    st.integers(0, 100),
    st.integers(0, 100),
)
def test_range_selectivity_is_a_probability(values, a, b):
    """Property: every estimate lies in [0, 1], whatever the data."""
    low, high = min(a, b), max(a, b)
    col = collect(values)
    sel = col.selectivity_range(low, high)
    assert 0.0 <= sel <= 1.0


@given(st.lists(st.integers(0, 20), min_size=1, max_size=200))
def test_eq_selectivities_sum_to_one(values):
    """Property: exact frequencies sum to 1 over observed values."""
    col = collect(values)
    if col.frequencies is not None:
        total = sum(col.selectivity_eq(v) for v in set(values))
        assert total == pytest.approx(1.0)
