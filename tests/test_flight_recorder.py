"""The always-on flight recorder (`repro.obs.flight`).

Three properties carry the design:

1. **Bounded**: the ring never holds more than its capacity, whatever
   the event volume -- older events are dropped (and counted), never
   the bound exceeded (hypothesis sweeps capacities and volumes).
2. **Deterministic**: the same (workload, profile, seed) journals the
   bit-identical event sequence once wall-clock stamps are stripped.
3. **Observationally inert**: recording never touches the simulated
   clock, the RAM budget, or the wire, so switching the recorder off
   changes no result row, no simulated cost, and no byte of traffic.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ghostdb import GhostDB, SessionConfig
from repro.obs.flight import (
    DEFAULT_CAPACITY,
    FlightRecorder,
    fingerprint_hex,
    plan_fingerprint,
)
from repro.workload.queries import DEMO_SCHEMA_DDL, demo_query

from tests.conftest import build_demo_session


def build_session(data, **config_kwargs) -> GhostDB:
    db = GhostDB(config=SessionConfig(**config_kwargs))
    for ddl in DEMO_SCHEMA_DDL:
        db.execute(ddl)
    db.load(data)
    return db


class TestRingBounds:
    def test_defaults(self):
        recorder = FlightRecorder()
        assert recorder.capacity == DEFAULT_CAPACITY
        assert recorder.enabled
        assert len(recorder) == 0
        assert recorder.total_recorded == 0
        assert recorder.dropped == 0

    @settings(max_examples=60, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=64),
        volume=st.integers(min_value=0, max_value=200),
    )
    def test_ring_never_exceeds_capacity(self, capacity: int, volume: int):
        recorder = FlightRecorder(capacity=capacity)
        for i in range(volume):
            recorder.record("event", index=i)
        assert len(recorder) == min(volume, capacity)
        assert recorder.total_recorded == volume
        assert recorder.dropped == max(0, volume - capacity)
        # The ring holds exactly the *last* `capacity` events, in order.
        kept = recorder.events()
        assert [dict(e.data)["index"] for e in kept] == list(
            range(max(0, volume - capacity), volume)
        )
        assert [e.seq for e in kept] == list(
            range(max(1, volume - capacity + 1), volume + 1)
        )

    def test_disabled_recorder_is_a_noop(self):
        recorder = FlightRecorder(capacity=8, enabled=False)
        recorder.record("event", index=1)
        assert len(recorder) == 0
        assert recorder.total_recorded == 0

    def test_clear_keeps_lifetime_counters(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.record("event", index=i)
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.total_recorded == 10

    def test_resize_keeps_newest(self):
        recorder = FlightRecorder(capacity=8)
        for i in range(8):
            recorder.record("event", index=i)
        recorder.resize(3)
        assert recorder.capacity == 3
        assert [dict(e.data)["index"] for e in recorder.events()] == [5, 6, 7]

    def test_signature_strips_wall_clock(self):
        a = FlightRecorder(capacity=8)
        b = FlightRecorder(capacity=8)
        for recorder in (a, b):
            recorder.record("query_begin", query=1)
            recorder.record("query_end", query=1, rows=3)
        assert a.signature() == b.signature()
        # The full snapshots differ (wall stamps), the signatures don't.
        assert [e.kind for e in a.events()] == ["query_begin", "query_end"]


class TestPlanFingerprint:
    def test_stable_and_32bit(self, demo_session):
        plan = demo_session.rank_plans(demo_query())[0].plan
        fp = plan_fingerprint(plan)
        assert isinstance(fp, int)
        assert 0 <= fp <= 0xFFFFFFFF
        again = demo_session.rank_plans(demo_query())[0].plan
        assert plan_fingerprint(again) == fp
        assert fingerprint_hex(fp) == f"{fp:08x}"

    def test_distinguishes_plan_shapes(self, demo_session):
        a = demo_session.rank_plans(demo_query())[0].plan
        b = demo_session.rank_plans(
            "SELECT Patient.Name FROM Patient WHERE Patient.Age > 50"
        )[0].plan
        assert plan_fingerprint(a) != plan_fingerprint(b)


class TestDeterminism:
    def test_same_seed_same_event_sequence(self, demo_data):
        signatures = []
        for _ in range(2):
            session = build_demo_session(demo_data)
            session.set_faults("mixed", 7)
            session.query(demo_query())
            signatures.append(session.obs.flight.signature())
        assert signatures[0] == signatures[1]
        assert any(event[2] == "fault" for event in signatures[0])

    def test_recorder_off_changes_nothing_observable(self, demo_data):
        outcomes = []
        for enabled in (True, False):
            session = build_session(demo_data, flight_enabled=enabled)
            session.set_faults("mixed", 3)
            result = session.query(demo_query())
            outcomes.append(
                (
                    result.rows,
                    session.device.clock.now,
                    len(session.device.usb.log),
                    session.device.usb.bytes_to_device,
                    session.device.usb.bytes_to_host,
                    session.fault_injector.schedule_signature(),
                )
            )
        assert outcomes[0] == outcomes[1]
        # ... and the recorder really was off in the second run.
        session_off = build_session(demo_data, flight_enabled=False)
        session_off.query(demo_query())
        assert session_off.obs.flight.total_recorded == 0

    def test_recorder_invariant_across_batch_and_cache(self, demo_data):
        """The journalled *simulated* sequence does not depend on
        host-side tunables that promise observational equivalence."""
        baseline = None
        for batch in (1, 64):
            session = build_session(
                demo_data, exec_config=None, cache_pages=None
            )
            session.executor.config.exec_batch = batch
            session.query(demo_query())
            signature = session.obs.flight.signature()
            if baseline is None:
                baseline = signature
            else:
                assert signature == baseline


class TestSessionWiring:
    def test_query_brackets_and_ledger(self, fresh_session):
        flight = fresh_session.obs.flight
        before = flight.total_recorded
        result = fresh_session.query(demo_query())
        kinds = [e.kind for e in flight.events() if e.seq > before]
        assert kinds[0] == "query_begin"
        assert kinds[-1] == "query_end"
        end = flight.events()[-1]
        assert dict(end.data)["rows"] == result.row_count
        entry = fresh_session.obs.ledger.last()
        assert entry is not None
        assert entry.result_rows == result.row_count
        assert entry.aborted is None
        assert entry.fingerprint == dict(end.data)["fingerprint"]

    def test_flight_metric_counts_events(self, fresh_session):
        fresh_session.query(demo_query())
        flight = fresh_session.obs.flight
        exposed = fresh_session.metrics_text()
        assert (
            f"ghostdb_flight_events_total {flight.total_recorded}" in exposed
        )

    def test_capacity_config_plumbs_through(self, demo_data):
        session = build_session(demo_data, flight_capacity=16)
        assert session.obs.flight.capacity == 16
        session.query(demo_query())
        assert len(session.obs.flight) <= 16
