"""External sorting and bounded-fan-in merging."""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.device import SmartUsbDevice
from repro.storage.runs import (
    RunMerger,
    RunReader,
    RunWriter,
    external_merge,
    make_runs,
)

_PACK = struct.Struct(">I")


def pack_all(values):
    return [_PACK.pack(v) for v in values]


def unpack_run(device, run):
    with RunReader(device, run, "check") as reader:
        return [_PACK.unpack(raw)[0] for raw in reader]


def test_run_writer_reader_roundtrip(device):
    writer = RunWriter(device, 4, "t")
    for value in range(100):
        writer.append(_PACK.pack(value))
    run = writer.finish()
    assert run.count == 100
    assert unpack_run(device, run) == list(range(100))


def test_make_runs_partitions_and_sorts(device):
    records = pack_all([5, 3, 8, 1, 9, 2, 7, 4, 6, 0])
    runs = make_runs(
        device, records, 4, key=lambda r: r, sort_buffer_bytes=16, label="t"
    )
    assert len(runs) == 3  # 4 + 4 + 2 records
    for run in runs:
        values = unpack_run(device, run)
        assert values == sorted(values)


def test_make_runs_respects_ram_budget(device):
    """The sort buffer is a real allocation; an absurd request fails."""
    from repro.hardware.ram import RamExhaustedError

    with pytest.raises(RamExhaustedError):
        make_runs(
            device, [], 4, key=lambda r: r,
            sort_buffer_bytes=device.ram.capacity + 4, label="t",
        )


def test_external_merge_single_pass(device):
    runs = make_runs(
        device,
        pack_all([9, 1, 5, 3, 7, 2, 8, 4, 6, 0]),
        4, key=lambda r: r, sort_buffer_bytes=12, label="t",
    )
    merged = external_merge(device, runs, key=lambda r: r, label="t", fan_in=8)
    assert unpack_run(device, merged) == list(range(10))


def test_external_merge_multi_pass(device):
    """More runs than fan-in forces intermediate passes with spills."""
    values = list(range(199, -1, -1))
    runs = make_runs(
        device, pack_all(values), 4,
        key=lambda r: r, sort_buffer_bytes=8, label="t",  # 2 records/run
    )
    assert len(runs) == 100
    merger = RunMerger(device, key=lambda r: r, label="t", fan_in=3)
    writes_before = device.flash.stats.page_writes
    merged = merger.merge(runs)
    assert merger.passes > 1
    assert device.flash.stats.page_writes > writes_before
    assert unpack_run(device, merged) == sorted(values)


def test_merge_with_dedup(device):
    runs = make_runs(
        device, pack_all([1, 1, 2, 3, 3, 3, 4]), 4,
        key=lambda r: r, sort_buffer_bytes=100, label="t",
    )
    merged = external_merge(
        device, runs, key=lambda r: r, label="t", fan_in=4, dedup=True
    )
    assert unpack_run(device, merged) == [1, 2, 3, 4]


def test_merge_empty_input(device):
    merged = external_merge(device, [], key=lambda r: r, label="t", fan_in=4)
    assert merged.count == 0


def test_fan_in_below_two_rejected(device):
    with pytest.raises(ValueError, match="fan-in"):
        RunMerger(device, key=lambda r: r, label="t", fan_in=1)


def test_merge_frees_input_runs(device):
    runs = make_runs(
        device, pack_all(list(range(50))), 4,
        key=lambda r: r, sort_buffer_bytes=40, label="t",
    )
    mapped_with_runs = device.ftl.mapped_pages
    external_merge(device, runs, key=lambda r: r, label="t", fan_in=2)
    # Inputs were freed; only the final run remains (plus other state).
    assert device.ftl.mapped_pages < mapped_with_runs + len(runs)


def test_borrowed_runs_not_freed(device):
    writer = RunWriter(device, 4, "t")
    for value in range(10):
        writer.append(_PACK.pack(value))
    run = writer.finish()
    run.free(device)
    # Freeing an already-freed page set must not corrupt the FTL: pages
    # were returned once; a Run is single-owner by convention.
    assert True


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.integers(0, 2**32 - 1), max_size=500),
    st.integers(2, 6),
)
def test_external_sort_property(values, fan_in):
    """Property: make_runs + merge == sorted, for any input and fan-in."""
    device = SmartUsbDevice()
    runs = make_runs(
        device, pack_all(values), 4,
        key=lambda r: r, sort_buffer_bytes=64, label="p",
    )
    merged = external_merge(
        device, runs, key=lambda r: r, label="p", fan_in=fan_in
    )
    assert unpack_run(device, merged) == sorted(values)
