"""Deficit-round-robin scheduler: fairness, determinism, fault teardown.

The scheduler interleaves leased sessions at batch-window boundaries on
the simulated clock only -- no wall time, no randomness -- so the same
(sessions, statements, seed) must replay to the identical grant
sequence, and device time (the contended resource) must come out evenly
split across a uniform load.
"""

from __future__ import annotations

import pytest

from repro.core.ghostdb import GhostDB, SessionConfig, SessionError
from repro.core.scheduler import Scheduler, jain_index
from repro.engine.executor import ExecConfig
from repro.faults import PowerCutError
from tests.test_sessions import STATEMENTS, build_db


# ---------------------------------------------------------------------------
# Jain's index.
# ---------------------------------------------------------------------------


def test_jain_index_degenerate_inputs_count_as_fair():
    assert jain_index([]) == 1.0
    assert jain_index([0.0, 0.0, 0.0]) == 1.0


def test_jain_index_even_and_one_hot():
    assert jain_index([3.0, 3.0, 3.0, 3.0]) == pytest.approx(1.0)
    assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)


# ---------------------------------------------------------------------------
# Submission discipline.
# ---------------------------------------------------------------------------


def test_submit_refuses_the_default_session():
    db = build_db()
    sched = Scheduler(db.core)
    with pytest.raises(SessionError):
        sched.submit(db.session, STATEMENTS[0])


def test_submit_refuses_sessions_from_another_device():
    db = build_db()
    other = build_db()
    stranger = other.open_session("stranger")
    sched = Scheduler(db.core)
    with pytest.raises(SessionError):
        sched.submit(stranger, STATEMENTS[0])


def test_unsupported_statement_fails_at_submit():
    db = build_db()
    ctx = db.open_session("client")
    sched = Scheduler(db.core)
    with pytest.raises(SessionError):
        sched.submit(ctx, "CREATE TABLE Nope (A INTEGER)")
    assert sched.pending == 0


# ---------------------------------------------------------------------------
# Determinism: same build, same grant sequence, same latencies.
# ---------------------------------------------------------------------------


def _scheduled_run(db: GhostDB):
    sessions = [db.open_session(f"client-{i}") for i in range(2)]
    sched = Scheduler(db.core)
    for sql in STATEMENTS:
        for ctx in sessions:
            sched.submit(ctx, sql)
    sched.run()
    return sched.tickets


def test_same_seed_replays_to_identical_schedule():
    first = _scheduled_run(build_db())
    second = _scheduled_run(build_db())
    assert [t.session for t in first] == [t.session for t in second]
    assert [t.steps for t in first] == [t.steps for t in second]
    assert [t.latency_s for t in first] == [t.latency_s for t in second]
    assert [t.submitted_at for t in first] == [t.submitted_at for t in second]


def test_grant_sequence_is_journalled():
    db = build_db()
    ctx = db.open_session("journalled")
    sched = Scheduler(db.core)
    ticket = sched.submit(ctx, STATEMENTS[0])
    sched.run()
    kinds = [e.kind for e in db.obs.flight.events()]
    for expected in ("sched_submit", "sched_start", "sched_done"):
        assert expected in kinds
    assert ticket.done and ticket.error is None


# ---------------------------------------------------------------------------
# Fairness: uniform load, even split of simulated device time.
# ---------------------------------------------------------------------------


#: A scan of every prescription at a one-tuple window: ~200 preemption
#: points per query, so the DRR loop actually gets to interleave (the
#: short demo statements fit inside a single quantum at test scale).
SCAN = "SELECT Pre.Quantity, Pre.Frequency FROM Prescription Pre"

WINDOWED = SessionConfig(exec_config=ExecConfig(exec_batch=1))


def test_uniform_load_is_scheduled_fairly():
    db = build_db()
    sessions = [
        db.open_session(f"tenant-{i}", config=WINDOWED) for i in range(4)
    ]
    sched = Scheduler(db.core)
    tickets = [sched.submit(ctx, SCAN) for ctx in sessions]
    sched.run()
    # Identical work submitted together: every session's completion
    # must land within a quantum or two of the others.
    latencies = [t.latency_s for t in tickets]
    assert jain_index(latencies) >= 0.99, latencies
    # Pure service time (each session's private clock) is even too.
    service = [ctx.lease.clock.now for ctx in sessions]
    assert jain_index(service) >= 0.99, service
    # Each query was preempted many times, so this was interleaving,
    # not accidental serial execution.
    assert min(t.steps for t in tickets) > 10


def test_dml_is_one_atomic_step():
    db = build_db()
    ctx = db.open_session("writer")
    sched = Scheduler(db.core)
    ticket = sched.submit(
        ctx, "UPDATE Prescription SET Quantity = 1 WHERE Quantity = 424242"
    )
    sched.run()
    assert ticket.error is None
    assert ticket.steps == 1
    assert ticket.result.matched == 0


# ---------------------------------------------------------------------------
# Power loss: the device dies under everyone.
# ---------------------------------------------------------------------------


def test_power_cut_aborts_every_inflight_ticket_and_recovers():
    db = build_db()
    sessions = [
        db.open_session(f"victim-{i}", config=WINDOWED) for i in range(2)
    ]
    injector = db.set_faults("none", seed=0)
    injector.schedule_power_cut(at_flash_op=3)
    sched = Scheduler(db.core)
    tickets = [sched.submit(ctx, SCAN) for ctx in sessions]
    sched.run()

    assert all(isinstance(t.error, PowerCutError) for t in tickets)
    assert db.needs_remount
    for ctx in sessions:
        assert ctx.lease.firm_ram_used == 0, ctx.name
    kinds = [e.kind for e in db.obs.flight.events()]
    assert kinds.count("sched_abort") == len(tickets)
    aborts = db.obs.registry.counter("ghostdb_session_aborts_total")
    for ctx in sessions:
        assert aborts.value(session=ctx.name) == 1

    # Plug the key back in: the same sessions resume cleanly.
    db.clear_faults()
    db.remount()
    replay = [sched.submit(ctx, SCAN) for ctx in sessions]
    sched.run()
    for ticket in replay:
        assert ticket.error is None
    assert replay[0].result.rows == replay[1].result.rows
