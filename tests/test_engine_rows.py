"""Value-row operators in isolation: aggregate, order-by, limit."""

import datetime

from hypothesis import given, settings, strategies as st

from repro.engine.operators import ExecContext
from repro.engine.operators.rows import AggregateOp, LimitOp, OrderByOp
from repro.hardware.device import SmartUsbDevice
from repro.hardware.profiles import DEMO_DEVICE
from repro.sql.binder import BoundAggregate
from repro.storage.types import CharType, DateType, FloatType, IntegerType
from tests.test_engine_operators import ListSource, bare_context


def make_aggregate(ctx, rows, dtypes, group_indexes, aggregates,
                   output_items, having=None):
    return AggregateOp(
        ctx,
        ListSource(ctx, rows),
        group_indexes=group_indexes,
        aggregates=aggregates,
        output_items=output_items,
        input_dtypes=dtypes,
        having=having,
    )


def count_star():
    return BoundAggregate(func="count", table=None, column=None,
                          input_index=None)


def agg(func, input_index, dtype=None):
    from repro.catalog.schema import ColumnDef

    column = ColumnDef(name=f"c{input_index}", dtype=dtype or IntegerType())
    return BoundAggregate(
        func=func, table="t", column=column, input_index=input_index
    )


class TestAggregateOp:
    def test_count_per_group(self):
        ctx = bare_context()
        rows = [("a", 1), ("b", 2), ("a", 3), ("a", 4)]
        op = make_aggregate(
            ctx, rows, [CharType(4), IntegerType()],
            group_indexes=[0],
            aggregates=[count_star()],
            output_items=[("key", 0), ("agg", 0)],
        )
        assert list(op.rows()) == [("a", 3), ("b", 1)]

    def test_sum_avg_min_max(self):
        ctx = bare_context()
        rows = [("a", 1), ("a", 5), ("b", 2)]
        aggregates = [
            agg("sum", 1), agg("avg", 1), agg("min", 1), agg("max", 1),
        ]
        op = make_aggregate(
            ctx, rows, [CharType(4), IntegerType()],
            group_indexes=[0],
            aggregates=aggregates,
            output_items=[("key", 0)] + [("agg", i) for i in range(4)],
        )
        assert list(op.rows()) == [
            ("a", 6, 3.0, 1, 5),
            ("b", 2, 2.0, 2, 2),
        ]

    def test_sum_of_floats_stays_float(self):
        ctx = bare_context()
        rows = [("a", 1.5), ("a", 2.25)]
        op = make_aggregate(
            ctx, rows, [CharType(4), FloatType()],
            group_indexes=[0],
            aggregates=[agg("sum", 1, FloatType())],
            output_items=[("agg", 0)],
        )
        assert list(op.rows()) == [(3.75,)]

    def test_multi_column_group_key(self):
        ctx = bare_context()
        rows = [(1, "x", 10), (1, "y", 20), (1, "x", 30)]
        op = make_aggregate(
            ctx, rows, [IntegerType(), CharType(4), IntegerType()],
            group_indexes=[0, 1],
            aggregates=[agg("sum", 2)],
            output_items=[("key", 0), ("key", 1), ("agg", 0)],
        )
        assert list(op.rows()) == [(1, "x", 40), (1, "y", 20)]

    def test_having_filters_groups(self):
        ctx = bare_context()
        rows = [("a", 1)] * 5 + [("b", 1)] * 2
        op = make_aggregate(
            ctx, rows, [CharType(4), IntegerType()],
            group_indexes=[0],
            aggregates=[count_star()],
            output_items=[("key", 0), ("agg", 0)],
            having=[("agg", 0, ">", 3)],
        )
        assert list(op.rows()) == [("a", 5)]

    def test_spill_equals_hash_result(self):
        """Force the spill by starving RAM; outputs must be identical."""
        rows = [(i % 500, i) for i in range(2000)]
        dtypes = [IntegerType(), IntegerType()]

        def run(device):
            ctx = ExecContext(device=device, link=None, db=None)
            op = make_aggregate(
                ctx, rows, dtypes,
                group_indexes=[0],
                aggregates=[count_star(), agg("sum", 1)],
                output_items=[("key", 0), ("agg", 0), ("agg", 1)],
            )
            return list(op.rows()), op

        roomy, roomy_op = run(SmartUsbDevice(DEMO_DEVICE))
        starved_device = SmartUsbDevice(DEMO_DEVICE)
        hog = starved_device.ram.allocate(
            starved_device.ram.capacity - 12 * 2048, "hog"
        )
        starved, starved_op = run(starved_device)
        hog.release()
        assert not roomy_op.spilled
        assert starved_op.spilled
        assert roomy == starved
        assert starved_device.flash.stats.page_writes > 0

    def test_empty_input_no_groups(self):
        ctx = bare_context()
        op = make_aggregate(
            ctx, [], [IntegerType()],
            group_indexes=[0],
            aggregates=[count_star()],
            output_items=[("key", 0), ("agg", 0)],
        )
        assert list(op.rows()) == []


class TestOrderByOp:
    def test_ascending_and_descending(self):
        ctx = bare_context()
        rows = [(3, "c"), (1, "a"), (2, "b")]
        op = OrderByOp(
            ctx, ListSource(ctx, rows),
            keys=[(0, False)],
            row_dtypes=[IntegerType(), CharType(4)],
        )
        assert list(op.rows()) == [(3, "c"), (2, "b"), (1, "a")]

    def test_date_keys(self):
        ctx = bare_context()
        rows = [
            (datetime.date(2006, 5, 1),),
            (datetime.date(2005, 1, 1),),
            (datetime.date(2007, 2, 2),),
        ]
        op = OrderByOp(
            ctx, ListSource(ctx, rows), keys=[(0, True)],
            row_dtypes=[DateType()],
        )
        assert [r[0].year for r in op.rows()] == [2005, 2006, 2007]

    def test_spills_for_large_inputs(self):
        ctx = bare_context()
        rows = [(i * 7919 % 10_000, "pad") for i in range(5_000)]
        op = OrderByOp(
            ctx, ListSource(ctx, rows), keys=[(0, True)],
            row_dtypes=[IntegerType(), CharType(8)],
        )
        out = [r[0] for r in op.rows()]
        assert out == sorted(out)
        assert ctx.device.flash.stats.page_writes > 0

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(-1000, 1000),
                st.floats(allow_nan=False, allow_infinity=False,
                          min_value=-1e6, max_value=1e6),
            ),
            max_size=200,
        ),
        st.booleans(),
        st.booleans(),
    )
    def test_matches_python_sorted(self, rows, asc0, asc1):
        """Property: two-key external sort agrees with Python, both
        directions, including negative-number encodings.

        Ties are compared as multisets: the external sort's tie order is
        unspecified (e.g. 0.0 vs -0.0 encode differently but compare
        equal in Python).
        """
        from collections import Counter

        ctx = bare_context()
        op = OrderByOp(
            ctx, ListSource(ctx, rows),
            keys=[(0, asc0), (1, asc1)],
            row_dtypes=[IntegerType(), FloatType()],
        )
        out = list(op.rows())
        assert Counter(out) == Counter(rows)
        keys = [
            (r[0] if asc0 else -r[0], r[1] if asc1 else -r[1])
            for r in out
        ]
        assert keys == sorted(keys)


class TestLimitOp:
    def test_truncates(self):
        ctx = bare_context()
        op = LimitOp(ctx, ListSource(ctx, [(i,) for i in range(100)]), 7)
        assert len(list(op.rows())) == 7

    def test_stops_pulling_child(self):
        ctx = bare_context()
        source = ListSource(ctx, [(i,) for i in range(100)])
        op = LimitOp(ctx, source, 5)
        list(op.rows())
        assert source.stats.tuples_out == 5

    def test_zero(self):
        ctx = bare_context()
        source = ListSource(ctx, [(1,)])
        op = LimitOp(ctx, source, 0)
        assert list(op.rows()) == []
        assert source.stats.tuples_out == 0

    def test_shorter_input(self):
        ctx = bare_context()
        op = LimitOp(ctx, ListSource(ctx, [(1,), (2,)]), 10)
        assert list(op.rows()) == [(1,), (2,)]
