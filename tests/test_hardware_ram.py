"""RAM budget enforcement: the tiny-RAM constraint made real."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.ram import Allocation, RamBudget, RamExhaustedError


def test_allocate_and_release():
    budget = RamBudget(capacity=1000)
    alloc = budget.allocate(400, "op")
    assert budget.used == 400
    assert budget.available == 600
    alloc.release()
    assert budget.used == 0


def test_exceeding_budget_raises_with_context():
    budget = RamBudget(capacity=100)
    budget.allocate(80, "first")
    with pytest.raises(RamExhaustedError) as err:
        budget.allocate(40, "second")
    assert err.value.requested == 40
    assert err.value.available == 20
    assert err.value.label == "second"


def test_exact_fit_is_allowed():
    budget = RamBudget(capacity=100)
    budget.allocate(100, "all")
    assert budget.available == 0
    with pytest.raises(RamExhaustedError):
        budget.allocate(1, "one more byte")


def test_high_water_mark_tracks_peak():
    budget = RamBudget(capacity=1000)
    a = budget.allocate(600, "a")
    a.release()
    budget.allocate(300, "b")
    assert budget.high_water == 600


def test_context_manager_releases_on_exception():
    budget = RamBudget(capacity=100)
    with pytest.raises(RuntimeError):
        with budget.allocate(50, "cm"):
            raise RuntimeError("boom")
    assert budget.used == 0


def test_double_release_is_idempotent():
    budget = RamBudget(capacity=100)
    alloc = budget.allocate(50, "x")
    alloc.release()
    alloc.release()
    assert budget.used == 0


def test_resize_grow_and_shrink():
    budget = RamBudget(capacity=100)
    alloc = budget.allocate(20, "buf")
    alloc.resize(60)
    assert budget.used == 60
    alloc.resize(10)
    assert budget.used == 10
    alloc.release()
    assert budget.used == 0


def test_resize_beyond_budget_raises_and_preserves_state():
    budget = RamBudget(capacity=100)
    alloc = budget.allocate(50, "buf")
    with pytest.raises(RamExhaustedError):
        alloc.resize(200)
    assert budget.used == 50
    assert alloc.size == 50


def test_resize_after_release_rejected():
    budget = RamBudget(capacity=100)
    alloc = budget.allocate(10, "buf")
    alloc.release()
    with pytest.raises(ValueError, match="already released"):
        alloc.resize(20)


def test_negative_allocation_rejected():
    budget = RamBudget(capacity=100)
    with pytest.raises(ValueError):
        budget.allocate(-1, "neg")


def test_by_label_tracks_current_reservations():
    budget = RamBudget(capacity=1000)
    a = budget.allocate(100, "bloom")
    b = budget.allocate(50, "bloom")
    assert budget.by_label["bloom"] == 150
    a.release()
    assert budget.by_label["bloom"] == 50
    b.release()
    assert budget.by_label["bloom"] == 0


@given(
    st.lists(st.integers(min_value=0, max_value=300), min_size=1, max_size=50)
)
def test_alloc_release_sequence_conserves_budget(sizes):
    """Property: after releasing everything, used returns to zero and
    high water never exceeded capacity."""
    budget = RamBudget(capacity=10_000)
    allocations: list[Allocation] = []
    for size in sizes:
        allocations.append(budget.allocate(size, "prop"))
    assert budget.used == sum(sizes)
    assert budget.high_water <= budget.capacity
    for alloc in allocations:
        alloc.release()
    assert budget.used == 0
