"""Incremental appends: correctness, structure rebuilds, storage churn."""

import datetime

import pytest

from repro.engine.maintenance import MaintenanceError
from repro.reference import evaluate_reference, same_rows
from repro.workload.queries import demo_query


def new_visits(start_id, count, purpose="Sclerosis", doc=1, pat=1):
    return [
        (
            start_id + i,
            datetime.date(2007, 7, 1) + datetime.timedelta(days=i % 20),
            purpose,
            doc,
            pat,
        )
        for i in range(count)
    ]


def new_prescriptions(start_id, count, vis_id, med_id=1):
    return [
        (
            start_id + i,
            (i % 10) + 1,
            "once daily",
            datetime.date(2007, 7, 2),
            med_id,
            vis_id,
        )
        for i in range(count)
    ]


@pytest.fixture
def session(fresh_session):
    fresh_session.reset_measurements()
    return fresh_session


class TestAppendCorrectness:
    def test_appended_rows_are_queryable(self, session, demo_data):
        next_vis = len(demo_data["visit"]) + 1
        next_pre = len(demo_data["prescription"]) + 1
        session.append("visit", new_visits(next_vis, 3))
        session.append(
            "prescription", new_prescriptions(next_pre, 5, vis_id=next_vis)
        )
        result = session.query(
            f"SELECT Pre.Quantity, Vis.Date FROM Prescription Pre, "
            f"Visit Vis WHERE Vis.Date > DATE '2007-06-30' "
            f"AND Vis.VisID = Pre.VisID"
        )
        assert result.row_count == 5

    def test_results_match_reference_over_merged_data(
        self, session, demo_data
    ):
        next_vis = len(demo_data["visit"]) + 1
        next_pre = len(demo_data["prescription"]) + 1
        added_visits = new_visits(next_vis, 4)
        added_pres = new_prescriptions(next_pre, 8, vis_id=next_vis + 1)
        session.append("visit", added_visits)
        session.append("prescription", added_pres)
        merged = {
            name: list(rows) for name, rows in demo_data.items()
        }
        merged["visit"] = merged["visit"] + added_visits
        merged["prescription"] = merged["prescription"] + added_pres
        sql = demo_query()
        bound = session.bind(sql)
        expected = evaluate_reference(session.tree, merged, bound)
        result = session.query(sql)
        assert same_rows(result.rows, expected)

    def test_climbing_index_sees_new_values(self, session, demo_data):
        next_vis = len(demo_data["visit"]) + 1
        session.append(
            "visit", new_visits(next_vis, 2, purpose="Brand New Purpose")
        )
        result = session.query(
            "SELECT Date FROM Visit WHERE Purpose = 'Brand New Purpose'"
        )
        assert result.row_count == 2

    def test_visible_side_updated(self, session, demo_data):
        next_med = len(demo_data["medicine"]) + 1
        session.append(
            "medicine",
            [(next_med, "Novel-9999", "Cures everything", "Panacea")],
        )
        result = session.query(
            "SELECT Name FROM Medicine WHERE Type = 'Panacea'"
        )
        assert result.rows == [("Novel-9999",)]
        # Statistics follow the append (optimizer sees the new value).
        stats = session.site.statistics("medicine")
        assert stats.column("type").selectivity_eq("Panacea") > 0


class TestAppendValidation:
    def test_non_monotonic_keys_rejected(self, session):
        with pytest.raises(MaintenanceError, match="exceed"):
            session.append("visit", new_visits(1, 1))

    def test_unknown_table_rejected(self, session):
        with pytest.raises(Exception):
            session.append("nothing", [(1,)])

    def test_empty_append_is_a_noop(self, session):
        before = session.device.counters()
        report = session.append("visit", [])
        after = session.device.counters()
        assert report.appended_rows == 0
        assert after.flash.page_writes == before.flash.page_writes


class TestMaintenanceCost:
    def test_rebuild_scope_is_minimal(self, session, demo_data):
        next_doc = len(demo_data["doctor"]) + 1
        report = session.append(
            "doctor", [(next_doc, "Dr New", "General", 75000, "France")]
        )
        # Doctor sits in both subtrees and on three index paths.
        assert set(report.rebuilt_skts) == {"SKT_prescription", "SKT_visit"}
        assert "kidx:doctor" in report.rebuilt_indexes
        # Prescription-only indexes were untouched.
        assert "cidx:prescription.quantity" not in report.rebuilt_indexes

    def test_append_charges_the_device(self, session, demo_data):
        session.reset_measurements()
        next_pre = len(demo_data["prescription"]) + 1
        session.append(
            "prescription", new_prescriptions(next_pre, 50, vis_id=1)
        )
        counters = session.device.counters()
        assert counters.flash.page_writes > 0
        assert counters.flash.page_reads > 0
        assert counters.time.total > 0

    def test_repeated_appends_trigger_gc(self, session, demo_data):
        """Rebuilds strand stale pages; enough of them force erases."""
        erases_before = session.device.flash.stats.block_erases
        next_doc = len(demo_data["doctor"]) + 1
        for i in range(30):
            session.append(
                "doctor",
                [(next_doc + i, f"Dr {i}", "General", 10000 + i, "France")],
            )
        # The device is 1 GiB so GC may or may not have been needed, but
        # the FTL must have accumulated stale pages from the rebuilds.
        assert session.device.ftl.stats.logical_writes > 0
        assert session.device.flash.stats.block_erases >= erases_before


class TestRebuildScopePrecision:
    def test_medicine_append_skips_visit_subtree(self, session, demo_data):
        """Medicine sits only under SKT_prescription; appending to it
        must leave SKT_visit and the visit-path indexes untouched."""
        next_med = len(demo_data["medicine"]) + 1
        visit_skt_before = session.hidden.skts["visit"]
        purpose_index_before = session.hidden.climbing[("visit", "purpose")]
        report = session.append(
            "medicine", [(next_med, "Scoped", "None", "Scoped")]
        )
        assert report.rebuilt_skts == ["SKT_prescription"]
        assert "cidx:visit.purpose" not in report.rebuilt_indexes
        assert session.hidden.skts["visit"] is visit_skt_before
        assert (
            session.hidden.climbing[("visit", "purpose")]
            is purpose_index_before
        )
        # The medicine key index climbs through prescription: rebuilt.
        assert "kidx:medicine" in report.rebuilt_indexes
