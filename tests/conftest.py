"""Shared fixtures.

The loaded demo session is expensive (data generation + index builds), so
it is session-scoped; tests that need isolation from measurement state
call ``reset_measurements()`` and never mutate storage.
"""

from __future__ import annotations

import pytest

from repro.core.ghostdb import GhostDB
from repro.hardware.device import SmartUsbDevice
from repro.hardware.profiles import DEMO_DEVICE
from repro.workload.datagen import DatasetConfig, MedicalDataGenerator
from repro.workload.queries import DEMO_SCHEMA_DDL

SMALL_SCALE = 2_000


@pytest.fixture
def device() -> SmartUsbDevice:
    """A fresh demo-profile device."""
    return SmartUsbDevice(DEMO_DEVICE)


@pytest.fixture(scope="session")
def demo_data() -> dict[str, list]:
    """The small-scale medical dataset (immutable; do not mutate)."""
    return MedicalDataGenerator(
        DatasetConfig(n_prescriptions=SMALL_SCALE)
    ).generate()


def build_demo_session(data: dict[str, list]) -> GhostDB:
    db = GhostDB()
    for ddl in DEMO_SCHEMA_DDL:
        db.execute(ddl)
    db.load(data)
    return db


@pytest.fixture(scope="session")
def demo_session(demo_data) -> GhostDB:
    """A loaded GhostDB over the small demo dataset (shared; read-only)."""
    return build_demo_session(demo_data)


@pytest.fixture
def fresh_session(demo_data) -> GhostDB:
    """A private loaded session for tests that perturb device state."""
    return build_demo_session(demo_data)
