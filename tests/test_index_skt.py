"""Subtree Key Tables: construction and semantics (Figure 3)."""

import pytest

from repro.engine.database import HiddenDatabase
from repro.hardware.device import SmartUsbDevice
from repro.catalog.schema import Schema
from repro.catalog.tree import SchemaTree
from repro.index.skt import SubtreeKeyTable
from repro.sql.ddl import create_table
from repro.sql.parser import parse_statement
from repro.workload.datagen import DatasetConfig, MedicalDataGenerator
from repro.workload.queries import DEMO_SCHEMA_DDL


@pytest.fixture(scope="module")
def loaded():
    schema = Schema()
    for ddl in DEMO_SCHEMA_DDL:
        create_table(schema, parse_statement(ddl))
    tree = SchemaTree(schema)
    data = MedicalDataGenerator(DatasetConfig(n_prescriptions=800)).generate()
    device = SmartUsbDevice()
    db = HiddenDatabase.load(device, tree, data, index_columns=[])
    return device, tree, db, data


def full_row_index(data, table, pk):
    for row in data[table]:
        if row[0] == pk:
            return row
    raise KeyError(pk)


def test_skt_prescription_columns(loaded):
    """SKT_Prescription has PreID, MedID, VisID, DocID, PatID sorted by
    PreID (paper, Section 4)."""
    _device, _tree, db, _data = loaded
    skt = db.skts["prescription"]
    assert skt.tables[0] == "prescription"
    assert set(skt.tables) == {
        "prescription", "medicine", "visit", "doctor", "patient",
    }


def test_skt_visit_exists(loaded):
    _device, _tree, db, _data = loaded
    skt = db.skts["visit"]
    assert set(skt.tables) == {"visit", "doctor", "patient"}


def test_row_count_matches_root(loaded):
    _device, _tree, db, data = loaded
    assert db.skts["prescription"].count == len(data["prescription"])
    assert db.skts["visit"].count == len(data["visit"])


def test_rows_sorted_by_root_id(loaded):
    _device, _tree, db, _data = loaded
    skt = db.skts["prescription"]
    root_pos = skt.column_index("prescription")
    with skt.reader("t") as reader:
        ids = [skt.decode(raw)[root_pos] for raw in reader.scan()]
    assert ids == sorted(ids)


def test_skt_rows_denormalise_the_joins(loaded):
    """Each SKT row must equal the true join of the base tables: 'a query
    [can] directly associate a prescription with the patient to whom it
    was issued'."""
    _device, _tree, db, data = loaded
    skt = db.skts["prescription"]
    positions = {t: skt.column_index(t) for t in skt.tables}
    with skt.reader("t") as reader:
        for rowid in (0, 10, 399, skt.count - 1):
            row = skt.decode(reader.record(rowid))
            pre = full_row_index(data, "prescription", row[positions["prescription"]])
            # Prescription row: (PreID, Quantity, Frequency, WhenWritten, MedID, VisID)
            assert row[positions["medicine"]] == pre[4]
            assert row[positions["visit"]] == pre[5]
            vis = full_row_index(data, "visit", pre[5])
            # Visit row: (VisID, Date, Purpose, DocID, PatID)
            assert row[positions["doctor"]] == vis[3]
            assert row[positions["patient"]] == vis[4]


def test_column_index_rejects_foreign_table(loaded):
    _device, _tree, db, _data = loaded
    with pytest.raises(KeyError):
        db.skts["visit"].column_index("medicine")


def test_tables_must_start_with_root():
    device = SmartUsbDevice()
    with pytest.raises(ValueError, match="start with the subtree root"):
        SubtreeKeyTable(device, "a", ["b", "a"])


def test_flash_footprint_reported(loaded):
    _device, _tree, db, data = loaded
    skt = db.skts["prescription"]
    minimum = skt.count * skt.record_width
    assert skt.flash_bytes >= minimum
