"""Tree-schema analysis on the demo schema and degenerate shapes."""

import pytest

from repro.catalog.schema import ColumnDef, ForeignKey, Schema, TableDef
from repro.catalog.tree import SchemaTree, TreeSchemaError
from repro.sql.ddl import create_table
from repro.sql.parser import parse_statement
from repro.storage.types import IntegerType
from repro.workload.queries import DEMO_SCHEMA_DDL


@pytest.fixture
def demo_tree():
    schema = Schema()
    for ddl in DEMO_SCHEMA_DDL:
        create_table(schema, parse_statement(ddl))
    return SchemaTree(schema)


def simple_table(name, fks=()):
    columns = [ColumnDef(f"{name}ID", IntegerType(), primary_key=True)]
    for target in fks:
        columns.append(
            ColumnDef(
                f"{target}Ref", IntegerType(),
                references=ForeignKey(target, f"{target}ID"),
            )
        )
    return TableDef(name, columns)


class TestDemoTree:
    def test_root_is_prescription(self, demo_tree):
        assert demo_tree.root == "prescription"

    def test_parents(self, demo_tree):
        assert demo_tree.parent_of("visit") == ("prescription", "VisID")
        assert demo_tree.parent_of("doctor") == ("visit", "DocID")
        assert demo_tree.parent_of("prescription") is None

    def test_children(self, demo_tree):
        kids = dict(
            (child, fk) for fk, child in demo_tree.children_of("visit")
        )
        assert kids == {"doctor": "DocID", "patient": "PatID"}

    def test_path_to_root_matches_figure4(self, demo_tree):
        """Doctor -> Visit -> Prescription: the climbing path of the
        Doctor.Country index in Figure 4."""
        assert demo_tree.path_to_root("doctor") == [
            "doctor", "visit", "prescription",
        ]

    def test_ancestors(self, demo_tree):
        assert demo_tree.ancestors_of("patient") == ["visit", "prescription"]
        assert demo_tree.ancestors_of("prescription") == []

    def test_subtrees_match_figure3(self, demo_tree):
        """Two SKTs: one rooted at Prescription, one at Visit."""
        assert demo_tree.subtree_of("prescription")[0] == "prescription"
        assert set(demo_tree.subtree_of("prescription")) == {
            "prescription", "medicine", "visit", "doctor", "patient",
        }
        assert set(demo_tree.subtree_of("visit")) == {
            "visit", "doctor", "patient",
        }
        assert sorted(demo_tree.skt_roots()) == ["prescription", "visit"]

    def test_is_ancestor(self, demo_tree):
        assert demo_tree.is_ancestor("prescription", "doctor")
        assert demo_tree.is_ancestor("visit", "visit")
        assert not demo_tree.is_ancestor("doctor", "visit")
        assert not demo_tree.is_ancestor("medicine", "doctor")

    def test_query_root(self, demo_tree):
        assert demo_tree.query_root(["medicine", "prescription", "visit"]) == (
            "prescription"
        )
        assert demo_tree.query_root(["doctor", "visit"]) == "visit"
        assert demo_tree.query_root(["patient"]) == "patient"

    def test_query_root_requires_connected_subtree(self, demo_tree):
        with pytest.raises(Exception, match="connected subtree"):
            demo_tree.query_root(["doctor", "medicine"])

    def test_steps_between(self, demo_tree):
        assert demo_tree.steps_between("prescription", "doctor") == 2
        assert demo_tree.steps_between("visit", "doctor") == 1
        assert demo_tree.steps_between("doctor", "doctor") == 0


class TestTreeValidation:
    def test_two_roots_rejected(self):
        schema = Schema()
        schema.add(simple_table("A"))
        schema.add(simple_table("B"))
        with pytest.raises(TreeSchemaError, match="exactly one root"):
            SchemaTree(schema)

    def test_diamond_rejected(self):
        """A table referenced by two tables breaks the tree shape."""
        schema = Schema()
        schema.add(simple_table("Leaf"))
        schema.add(simple_table("Mid", fks=["Leaf"]))
        schema.add(simple_table("Root", fks=["Mid", "Leaf"]))
        with pytest.raises(TreeSchemaError, match="referenced by"):
            SchemaTree(schema)

    def test_self_reference_rejected(self):
        schema = Schema()
        table = TableDef(
            "Node",
            [
                ColumnDef("NodeID", IntegerType(), primary_key=True),
                ColumnDef(
                    "Parent", IntegerType(),
                    references=ForeignKey("Node", "NodeID"),
                ),
            ],
        )
        schema.add(table)
        with pytest.raises(TreeSchemaError, match="itself"):
            SchemaTree(schema)

    def test_empty_schema_rejected(self):
        with pytest.raises(TreeSchemaError):
            SchemaTree(Schema())

    def test_single_table_is_a_valid_tree(self):
        schema = Schema()
        schema.add(simple_table("Solo"))
        tree = SchemaTree(schema)
        assert tree.root == "solo"
        assert tree.skt_roots() == []

    def test_chain_schema(self):
        schema = Schema()
        schema.add(simple_table("C"))
        schema.add(simple_table("B", fks=["C"]))
        schema.add(simple_table("A", fks=["B"]))
        tree = SchemaTree(schema)
        assert tree.root == "a"
        assert tree.path_to_root("c") == ["c", "b", "a"]
        assert tree.skt_roots() == ["b", "a"] or set(
            tree.skt_roots()
        ) == {"a", "b"}
