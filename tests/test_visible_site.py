"""The visible site: splitting, selection, fetches, statistics."""

import datetime

import pytest

from repro.catalog.schema import Schema, SchemaError
from repro.sql.binder import EQ, RANGE, Predicate
from repro.sql.ddl import create_table
from repro.sql.parser import parse_statement
from repro.visible.site import VisibleSite
from repro.workload.queries import DEMO_SCHEMA_DDL


@pytest.fixture(scope="module")
def schema():
    schema = Schema()
    for ddl in DEMO_SCHEMA_DDL:
        create_table(schema, parse_statement(ddl))
    return schema


@pytest.fixture
def site(schema):
    site = VisibleSite(schema)
    site.load(
        "visit",
        [
            (1, datetime.date(2006, 1, 10), "Sclerosis", 1, 1),
            (2, datetime.date(2006, 6, 15), "Checkup", 1, 2),
            (3, datetime.date(2006, 12, 1), "Checkup", 2, 1),
        ],
    )
    return site


def visit_pred(schema, **kwargs):
    column = schema.table("visit").column(kwargs.pop("column"))
    return Predicate(
        table="visit", column=column.name.lower(), column_def=column, **kwargs
    )


def test_hidden_columns_are_dropped_at_load(site, schema):
    """The visible store must physically not contain hidden values."""
    rows = site._tables["visit"].rows
    assert rows[1] == (1, datetime.date(2006, 1, 10))
    for row in rows.values():
        assert "Sclerosis" not in map(str, row)


def test_select_ids_sorted(site, schema):
    pred = visit_pred(
        schema, column="date", kind=RANGE,
        low=datetime.date(2006, 5, 1), low_inclusive=True,
    )
    assert site.select_ids("visit", pred) == [2, 3]


def test_select_on_hidden_column_impossible(site, schema):
    pred = visit_pred(schema, column="purpose", kind=EQ, value="Checkup")
    with pytest.raises(SchemaError, match="not visible"):
        site.select_ids("visit", pred)


def test_fetch_values(site):
    got = site.fetch_values("visit", [1, 3, 99], ["date"])
    assert got == {
        1: (datetime.date(2006, 1, 10),),
        3: (datetime.date(2006, 12, 1),),
    }


def test_fetch_with_recheck_filters(site, schema):
    pred = visit_pred(
        schema, column="date", kind=RANGE,
        low=datetime.date(2006, 11, 1), low_inclusive=True,
    )
    got = site.fetch_values("visit", [1, 2, 3], ["date"], recheck=[pred])
    assert set(got) == {3}


def test_fetch_empty_columns_gives_presence(site):
    got = site.fetch_values("visit", [2, 42], [])
    assert got == {2: ()}


def test_statistics_cover_visible_columns_only(site):
    stats = site.statistics("visit")
    assert "date" in stats.columns
    assert "visid" in stats.columns
    assert "purpose" not in stats.columns
    assert stats.row_count == 3


def test_statistics_before_load_rejected(schema):
    site = VisibleSite(schema)
    with pytest.raises(SchemaError, match="no visible data"):
        site.statistics("visit")


def test_row_arity_checked(site):
    with pytest.raises(SchemaError, match="row has"):
        site.load("doctor", [(1, "x")])


def test_count_ids(site, schema):
    pred = visit_pred(
        schema, column="date", kind=RANGE,
        low=datetime.date(2006, 5, 1), low_inclusive=True,
    )
    assert site.count_ids("visit", pred) == 2
