"""Physical operators in isolation: merges, store, scan, adapters,
time attribution."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.operators import (
    DeviceScanSelectOp,
    ExecContext,
    MergeIntersectOp,
    MergeUnionOp,
    Operator,
    PlanExecutionError,
    StoreOp,
)
from repro.engine.operators.adapt import IdsToTuplesOp
from repro.engine.operators.base import TimeAttribution


class ListSource(Operator):
    """Test helper: emits a fixed list, optionally charging CPU."""

    name = "list-source"

    def __init__(self, ctx, items, charge=None):
        super().__init__(ctx)
        self.items = items
        self.charge_op = charge

    def _produce(self):
        for item in self.items:
            if self.charge_op:
                self.ctx.device.chip.charge(self.charge_op)
            yield item


def bare_context() -> ExecContext:
    """A context over a fresh device; enough for pure-ID operators."""
    from repro.hardware.device import SmartUsbDevice

    return ExecContext(device=SmartUsbDevice(), link=None, db=None)


@pytest.fixture
def ctx(fresh_session):
    session = fresh_session
    session.reset_measurements()
    return ExecContext(
        device=session.device, link=session.link, db=session.hidden
    )


class TestMergeIntersect:
    def test_basic(self, ctx):
        op = MergeIntersectOp(
            ctx,
            [
                ListSource(ctx, [1, 3, 5, 7, 9]),
                ListSource(ctx, [3, 4, 5, 9]),
                ListSource(ctx, [1, 3, 5, 9, 11]),
            ],
        )
        assert list(op.rows()) == [3, 5, 9]

    def test_empty_input_short_circuits(self, ctx):
        op = MergeIntersectOp(
            ctx, [ListSource(ctx, []), ListSource(ctx, [1, 2])]
        )
        assert list(op.rows()) == []

    def test_disjoint(self, ctx):
        op = MergeIntersectOp(
            ctx, [ListSource(ctx, [1, 2]), ListSource(ctx, [3, 4])]
        )
        assert list(op.rows()) == []

    def test_requires_two_inputs(self, ctx):
        with pytest.raises(PlanExecutionError):
            MergeIntersectOp(ctx, [ListSource(ctx, [1])])

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.sets(st.integers(0, 60), max_size=40),
            min_size=2, max_size=5,
        )
    )
    def test_intersection_property(self, sets):
        ctx = bare_context()
        op = MergeIntersectOp(
            ctx, [ListSource(ctx, sorted(s)) for s in sets]
        )
        expected = sorted(set.intersection(*sets)) if sets else []
        assert list(op.rows()) == expected


class TestMergeUnion:
    def test_basic_with_dedup(self, ctx):
        op = MergeUnionOp(
            ctx,
            [ListSource(ctx, [1, 3, 5]), ListSource(ctx, [2, 3, 6])],
        )
        assert list(op.rows()) == [1, 2, 3, 5, 6]

    def test_single_input(self, ctx):
        op = MergeUnionOp(ctx, [ListSource(ctx, [4, 5])])
        assert list(op.rows()) == [4, 5]

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.sets(st.integers(0, 60), max_size=40),
            min_size=1, max_size=5,
        )
    )
    def test_union_property(self, sets):
        ctx = bare_context()
        op = MergeUnionOp(ctx, [ListSource(ctx, sorted(s)) for s in sets])
        assert list(op.rows()) == sorted(set.union(*sets))


class TestStore:
    def test_materialise_and_replay(self, ctx):
        tuples = [(i, i * 2, i * 3) for i in range(500)]
        op = StoreOp(ctx, ListSource(ctx, tuples), arity=3)
        writes_before = ctx.device.flash.stats.page_writes
        assert list(op.rows()) == tuples
        assert ctx.device.flash.stats.page_writes > writes_before

    def test_store_frees_its_extent(self, ctx):
        mapped_before = ctx.device.ftl.mapped_pages
        op = StoreOp(ctx, ListSource(ctx, [(1, 2)] * 100), arity=2)
        list(op.rows())
        assert ctx.device.ftl.mapped_pages == mapped_before

    def test_arity_mismatch_rejected(self, ctx):
        op = StoreOp(ctx, ListSource(ctx, [(1, 2, 3)]), arity=2)
        with pytest.raises(ValueError, match="2-id tuples"):
            list(op.rows())


class TestDeviceScan:
    def test_scan_with_predicate(self, ctx, demo_data):
        bound = None
        predicates = []
        # purpose == Sclerosis, evaluated by scanning the visit heap.
        from repro.sql.binder import EQ, Predicate

        table_def = ctx.db.tree.table("visit")
        predicates.append(
            Predicate(
                table="visit", column="purpose",
                column_def=table_def.column("purpose"),
                kind=EQ, value="Sclerosis",
            )
        )
        op = DeviceScanSelectOp(ctx, "visit", predicates)
        expected = sorted(
            r[0] for r in demo_data["visit"] if r[2] == "Sclerosis"
        )
        assert list(op.rows()) == expected

    def test_scan_without_predicates_yields_all(self, ctx, demo_data):
        op = DeviceScanSelectOp(ctx, "medicine", [])
        assert list(op.rows()) == [r[0] for r in demo_data["medicine"]]


class TestAdapters:
    def test_ids_to_tuples(self, ctx):
        op = IdsToTuplesOp(ctx, ListSource(ctx, [1, 2, 3]), "t")
        assert list(op.rows()) == [(1,), (2,), (3,)]


class TestStatsCollection:
    def test_tuples_out_counted(self, ctx):
        source = ListSource(ctx, [1, 2, 3])
        list(source.rows())
        assert source.stats.tuples_out == 3
        assert source.stats.finished

    def test_self_time_excludes_children(self, ctx):
        """A parent that does no charged work gets ~zero self time even
        when its child burns simulated time."""
        child = ListSource(ctx, list(range(100)), charge="hash")
        parent = IdsToTuplesOp(ctx, child, "t")
        list(parent.rows())
        assert child.stats.self_seconds > 0
        assert parent.stats.self_seconds == pytest.approx(0.0, abs=1e-9)

    def test_attribution_stack_detects_corruption(self, ctx):
        attribution = TimeAttribution(ctx.device)
        a = ListSource(ctx, [])
        b = ListSource(ctx, [])
        attribution.enter(a.stats)
        with pytest.raises(PlanExecutionError, match="corrupted"):
            attribution.exit(b.stats)

    def test_operators_registered_in_context(self, ctx):
        before = len(ctx.operators)
        ListSource(ctx, [])
        assert len(ctx.operators) == before + 1
