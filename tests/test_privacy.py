"""Privacy: the spy's view and the leak checker (demo phase 1).

Includes *positive* leak tests: we deliberately inject hidden data into
the channel and verify the checker catches it -- a leak checker that can
only say CLEAN proves nothing.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hardware.usb import Direction
from repro.optimizer.space import enumerate_strategies
from repro.privacy.leakcheck import LeakChecker
from repro.privacy.spy import IdStats, SpyView, unpack_ids
from repro.visible.frame import frame
from repro.workload.queries import demo_query


@pytest.fixture
def session(fresh_session):
    fresh_session.reset_measurements()
    return fresh_session


@pytest.fixture
def checker(fresh_session, demo_data):
    return LeakChecker(fresh_session.schema, demo_data)


class TestSpyView:
    def test_requests_are_readable(self, session):
        session.query(demo_query())
        spy = SpyView(session.usb_log)
        requests = spy.requests()
        assert requests
        assert any("select_ids" in r for r in requests)

    def test_summary_buckets_by_direction_and_kind(self, session):
        session.query(demo_query())
        spy = SpyView(session.usb_log)
        buckets = {(s.direction, s.kind): s for s in spy.summary()}
        assert ("host->device", "ids") in buckets
        assert ("device->host", "request") in buckets
        total = sum(s.bytes for s in buckets.values())
        assert total == spy.total_bytes

    def test_transcript_renders_every_message(self, session):
        session.query(demo_query())
        spy = SpyView(session.usb_log)
        transcript = spy.transcript()
        assert transcript.count("\n") + 1 == len(session.usb_log)

    def test_observed_ids_counted(self, session):
        session.query(demo_query())
        spy = SpyView(session.usb_log)
        counts = spy.observed_ids()
        assert counts.get("ids", 0) > 0

    def test_transcript_unwraps_crc_frames(self, session):
        """Framed JSON must render as JSON, not as hex of the frame
        header -- the spy reads payloads, framing is transparent."""
        session.device.usb.transfer(
            Direction.TO_HOST, "request", frame(b'{"op": "select_ids"}')
        )
        transcript = SpyView(session.usb_log).transcript()
        assert '{"op": "select_ids"}' in transcript
        assert "4746" not in transcript  # b"GF" magic, hex-dumped

    def test_transcript_of_real_traffic_is_readable(self, session):
        session.query(demo_query())
        transcript = SpyView(session.usb_log).transcript()
        assert "select_ids" in transcript

    def test_id_stats_counts_totals_and_repeats(self, session):
        ids = b"".join(i.to_bytes(4, "big") for i in (1, 2, 3, 2, 1, 1))
        session.device.usb.transfer(Direction.TO_DEVICE, "fetch_ids", frame(ids))
        stats = SpyView(session.usb_log).id_stats()["fetch_ids"]
        assert stats.total == 6
        assert stats.distinct == 3
        assert stats.repeated_ratio == pytest.approx(0.5)

    def test_id_stats_on_real_traffic(self, session):
        session.query(demo_query())
        stats = SpyView(session.usb_log).id_stats()
        assert stats["ids"].total >= stats["ids"].distinct > 0
        assert 0.0 <= stats["ids"].repeated_ratio < 1.0

    def test_repeated_ratio_of_nothing_is_zero(self):
        assert IdStats(kind="ids", total=0, distinct=0).repeated_ratio == 0.0

    def test_unpack_ids_ignores_truncated_tail(self):
        payload = (7).to_bytes(4, "big") + (9).to_bytes(4, "big") + b"\x01\x02"
        assert unpack_ids(payload) == [7, 9]
        assert unpack_ids(b"") == []


class TestLeakCheckerNegative:
    """Real executions must come out clean."""

    def test_demo_query_is_clean(self, session, checker):
        session.query(demo_query())
        report = checker.check(session.usb_log)
        assert report.ok, report.summary()
        assert report.checked_messages == len(session.usb_log)
        assert report.checked_patterns > 0

    def test_every_strategy_is_clean(self, session, checker):
        bound = session.bind(demo_query())
        for strategy in enumerate_strategies(bound):
            session.reset_measurements()
            session.query_with_strategy(demo_query(), strategy)
            report = checker.check(session.usb_log)
            assert report.ok, report.summary()

    def test_query_on_hidden_string_column_is_clean(self, session, checker):
        """Selecting ON a hidden value must not push that value out --
        the climbing index answers it on-device."""
        session.query(
            "SELECT Age FROM Patient WHERE Name = 'Marie Martin'"
        )
        non_query = [r for r in session.usb_log if r.kind != "query"]
        report = checker.check(non_query)
        assert report.ok, report.summary()


class TestLeakCheckerPositive:
    """Injected violations must be caught."""

    def test_hidden_string_in_payload_detected(self, session, checker):
        purpose = "Sclerosis"  # a hidden Visit.Purpose value
        session.device.usb.transfer(
            Direction.TO_HOST, "request",
            b'{"op": "select_ids", "predicate": null, "x": "' +
            purpose.encode() + b'"}',
        )
        report = checker.check(session.usb_log)
        assert not report.ok
        assert any("Sclerosis" in str(v) for v in report.violations)

    def test_unknown_outbound_kind_detected(self, session, checker):
        session.device.usb.transfer(
            Direction.TO_HOST, "exfiltrate", b"\x00\x01\x02\x03"
        )
        report = checker.check(session.usb_log)
        assert any("whitelist" in v.reason for v in report.violations)

    def test_opaque_request_detected(self, session, checker):
        session.device.usb.transfer(
            Direction.TO_HOST, "request", b"\x80\x81binary-not-json"
        )
        report = checker.check(session.usb_log)
        assert any("transparent" in v.reason for v in report.violations)

    def test_unknown_request_op_detected(self, session, checker):
        session.device.usb.transfer(
            Direction.TO_HOST, "request", b'{"op": "dump_hidden"}'
        )
        report = checker.check(session.usb_log)
        assert any("unknown request op" in v.reason for v in report.violations)

    def test_request_naming_hidden_column_detected(self, session, checker):
        session.device.usb.transfer(
            Direction.TO_HOST, "request",
            b'{"op": "fetch_values", "table": "visit", '
            b'"columns": ["purpose"], "count": 1}',
        )
        report = checker.check(session.usb_log)
        assert any("hidden column" in v.reason for v in report.violations)

    def test_hidden_value_leak_in_host_direction_detected(
        self, session, checker
    ):
        """Even host->device traffic must not carry hidden strings (it
        would mean the host had them)."""
        session.device.usb.transfer(
            Direction.TO_DEVICE, "values", b'{"1": ["Sclerosis"]}'
        )
        report = checker.check(session.usb_log)
        assert not report.ok

    def test_query_text_is_exempt(self, session, checker):
        """The user's own query may name hidden constants."""
        session.device.usb.transfer(
            Direction.TO_DEVICE, "query",
            b"SELECT ... WHERE Purpose = 'Sclerosis'",
        )
        report = checker.check(session.usb_log)
        assert report.ok

    def test_summary_text_counts_violations(self, session, checker):
        session.device.usb.transfer(
            Direction.TO_HOST, "exfiltrate", b"stolen"
        )
        report = checker.check(session.usb_log)
        assert "VIOLATIONS" in report.summary()


class TestProtocolContract:
    """Cross-module consistency: the leak checker's whitelist must match
    what the link actually emits, or the audit silently rots."""

    def test_outbound_whitelist_matches_link_behaviour(self, session):
        from repro.privacy.leakcheck import ALLOWED_OUTBOUND_KINDS

        session.query(demo_query())
        session.query(
            "SELECT Med.Name FROM Medicine Med WHERE Med.Type = 'Statin'"
        )
        emitted = {
            r.kind for r in session.usb_log
            if r.direction is Direction.TO_HOST
        }
        assert emitted
        assert emitted <= ALLOWED_OUTBOUND_KINDS

    def test_request_ops_whitelist_matches_link(self, session):
        import json

        from repro.privacy.leakcheck import ALLOWED_REQUEST_OPS
        from repro.visible.frame import payload_of

        session.query(demo_query())
        ops = {
            json.loads(payload_of(r.payload))["op"]
            for r in session.usb_log
            if r.direction is Direction.TO_HOST and r.kind == "request"
        }
        assert ops
        assert ops <= ALLOWED_REQUEST_OPS

    def test_documented_kinds_cover_observations(self, session):
        """docs/PROTOCOL.md lists seven message kinds; the captured
        traffic must not contain anything undocumented."""
        documented = {
            "query", "request", "ids", "ids_end", "count",
            "fetch_ids", "values",
        }
        session.query(demo_query())
        observed = {r.kind for r in session.usb_log}
        assert observed <= documented


class TestCheckBytesEdges:
    """``check_bytes`` guards every exported artefact; its edges matter."""

    def test_empty_payload_is_clean(self, checker):
        report = checker.check_bytes(b"")
        assert report.ok
        assert report.checked_messages == 1
        assert report.checked_patterns == checker.pattern_count

    def test_non_utf8_payload_still_scanned(self, checker):
        """The scan is over bytes; undecodable garbage around a hidden
        value must not hide it."""
        payload = b"\xff\xfe\x00" + "Sclerosis".encode() + b"\x80\x81"
        report = checker.check_bytes(payload, kind="trace-export")
        assert not report.ok
        assert any("Sclerosis" in v.reason for v in report.violations)
        assert all(v.kind == "trace-export" for v in report.violations)

    def test_clean_binary_payload_is_clean(self, checker):
        assert checker.check_bytes(bytes(range(256))).ok

    def test_value_split_across_frame_boundary_detected(self, session, checker):
        """Neither fragment matches alone; the concatenated stream does.
        This is what the stream scan exists for."""
        head, tail = b'{"9": ["Scle', b'rosis"]}'
        session.device.usb.transfer(Direction.TO_DEVICE, "values", frame(head))
        session.device.usb.transfer(Direction.TO_DEVICE, "values", frame(tail))
        records = session.usb_log
        # Sanity: the per-message scan really is blind to the fragments.
        for record in records:
            solo = checker.check([record])
            assert solo.ok, solo.summary()
        report = checker.check(records)
        assert not report.ok
        assert any(
            "spans a message boundary" in v.reason for v in report.violations
        )

    def test_split_value_across_kinds_not_joined(self, session, checker):
        """Streams are per (direction, kind): fragments in unrelated
        buckets never meet, so no false positive."""
        session.device.usb.transfer(Direction.TO_DEVICE, "values", frame(b"Scle"))
        session.device.usb.transfer(Direction.TO_DEVICE, "count", frame(b"rosis"))
        report = checker.check(session.usb_log)
        assert report.ok, report.summary()


class _FuzzCorpus:
    """Module-scoped pieces so hypothesis can re-run examples freely."""

    def __init__(self, schema, rows_by_table):
        from repro.obs.redact import Redactor

        self.redactor = Redactor()
        self.redactor.allow_schema(schema)
        self.checker = LeakChecker(schema, rows_by_table)
        self.hidden_values = sorted(
            pattern.decode("utf-8") for pattern, _ in self.checker._patterns
        )


@pytest.fixture(scope="module")
def fuzz_corpus(demo_session, demo_data):
    return _FuzzCorpus(demo_session.schema, demo_data)


class TestRedactionGateFuzz:
    """Property: anything that went through the redaction gate is CLEAN
    under the adversarial checker, no matter how the hidden values were
    mixed in."""

    @given(data=st.data())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_scrubbed_text_never_leaks(self, fuzz_corpus, data):
        hidden = data.draw(
            st.lists(
                st.sampled_from(fuzz_corpus.hidden_values),
                min_size=1, max_size=8,
            )
        )
        filler = data.draw(
            st.lists(
                st.text(
                    alphabet=st.characters(codec="utf-8"), max_size=12
                ),
                max_size=8,
            )
        )
        mixed = data.draw(st.permutations(hidden + filler))
        text = " ".join(mixed)
        dirty = fuzz_corpus.checker.check_bytes(text.encode("utf-8"))
        assert not dirty.ok  # the input really contains hidden values
        scrubbed = fuzz_corpus.redactor.scrub(text)
        report = fuzz_corpus.checker.check_bytes(scrubbed.encode("utf-8"))
        assert report.ok, report.summary()
