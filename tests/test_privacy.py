"""Privacy: the spy's view and the leak checker (demo phase 1).

Includes *positive* leak tests: we deliberately inject hidden data into
the channel and verify the checker catches it -- a leak checker that can
only say CLEAN proves nothing.
"""

import pytest

from repro.hardware.usb import Direction
from repro.optimizer.space import enumerate_strategies
from repro.privacy.leakcheck import LeakChecker
from repro.privacy.spy import SpyView
from repro.workload.queries import demo_query


@pytest.fixture
def session(fresh_session):
    fresh_session.reset_measurements()
    return fresh_session


@pytest.fixture
def checker(fresh_session, demo_data):
    return LeakChecker(fresh_session.schema, demo_data)


class TestSpyView:
    def test_requests_are_readable(self, session):
        session.query(demo_query())
        spy = SpyView(session.usb_log)
        requests = spy.requests()
        assert requests
        assert any("select_ids" in r for r in requests)

    def test_summary_buckets_by_direction_and_kind(self, session):
        session.query(demo_query())
        spy = SpyView(session.usb_log)
        buckets = {(s.direction, s.kind): s for s in spy.summary()}
        assert ("host->device", "ids") in buckets
        assert ("device->host", "request") in buckets
        total = sum(s.bytes for s in buckets.values())
        assert total == spy.total_bytes

    def test_transcript_renders_every_message(self, session):
        session.query(demo_query())
        spy = SpyView(session.usb_log)
        transcript = spy.transcript()
        assert transcript.count("\n") + 1 == len(session.usb_log)

    def test_observed_ids_counted(self, session):
        session.query(demo_query())
        spy = SpyView(session.usb_log)
        counts = spy.observed_ids()
        assert counts.get("ids", 0) > 0


class TestLeakCheckerNegative:
    """Real executions must come out clean."""

    def test_demo_query_is_clean(self, session, checker):
        session.query(demo_query())
        report = checker.check(session.usb_log)
        assert report.ok, report.summary()
        assert report.checked_messages == len(session.usb_log)
        assert report.checked_patterns > 0

    def test_every_strategy_is_clean(self, session, checker):
        bound = session.bind(demo_query())
        for strategy in enumerate_strategies(bound):
            session.reset_measurements()
            session.query_with_strategy(demo_query(), strategy)
            report = checker.check(session.usb_log)
            assert report.ok, report.summary()

    def test_query_on_hidden_string_column_is_clean(self, session, checker):
        """Selecting ON a hidden value must not push that value out --
        the climbing index answers it on-device."""
        session.query(
            "SELECT Age FROM Patient WHERE Name = 'Marie Martin'"
        )
        non_query = [r for r in session.usb_log if r.kind != "query"]
        report = checker.check(non_query)
        assert report.ok, report.summary()


class TestLeakCheckerPositive:
    """Injected violations must be caught."""

    def test_hidden_string_in_payload_detected(self, session, checker):
        purpose = "Sclerosis"  # a hidden Visit.Purpose value
        session.device.usb.transfer(
            Direction.TO_HOST, "request",
            b'{"op": "select_ids", "predicate": null, "x": "' +
            purpose.encode() + b'"}',
        )
        report = checker.check(session.usb_log)
        assert not report.ok
        assert any("Sclerosis" in str(v) for v in report.violations)

    def test_unknown_outbound_kind_detected(self, session, checker):
        session.device.usb.transfer(
            Direction.TO_HOST, "exfiltrate", b"\x00\x01\x02\x03"
        )
        report = checker.check(session.usb_log)
        assert any("whitelist" in v.reason for v in report.violations)

    def test_opaque_request_detected(self, session, checker):
        session.device.usb.transfer(
            Direction.TO_HOST, "request", b"\x80\x81binary-not-json"
        )
        report = checker.check(session.usb_log)
        assert any("transparent" in v.reason for v in report.violations)

    def test_unknown_request_op_detected(self, session, checker):
        session.device.usb.transfer(
            Direction.TO_HOST, "request", b'{"op": "dump_hidden"}'
        )
        report = checker.check(session.usb_log)
        assert any("unknown request op" in v.reason for v in report.violations)

    def test_request_naming_hidden_column_detected(self, session, checker):
        session.device.usb.transfer(
            Direction.TO_HOST, "request",
            b'{"op": "fetch_values", "table": "visit", '
            b'"columns": ["purpose"], "count": 1}',
        )
        report = checker.check(session.usb_log)
        assert any("hidden column" in v.reason for v in report.violations)

    def test_hidden_value_leak_in_host_direction_detected(
        self, session, checker
    ):
        """Even host->device traffic must not carry hidden strings (it
        would mean the host had them)."""
        session.device.usb.transfer(
            Direction.TO_DEVICE, "values", b'{"1": ["Sclerosis"]}'
        )
        report = checker.check(session.usb_log)
        assert not report.ok

    def test_query_text_is_exempt(self, session, checker):
        """The user's own query may name hidden constants."""
        session.device.usb.transfer(
            Direction.TO_DEVICE, "query",
            b"SELECT ... WHERE Purpose = 'Sclerosis'",
        )
        report = checker.check(session.usb_log)
        assert report.ok

    def test_summary_text_counts_violations(self, session, checker):
        session.device.usb.transfer(
            Direction.TO_HOST, "exfiltrate", b"stolen"
        )
        report = checker.check(session.usb_log)
        assert "VIOLATIONS" in report.summary()


class TestProtocolContract:
    """Cross-module consistency: the leak checker's whitelist must match
    what the link actually emits, or the audit silently rots."""

    def test_outbound_whitelist_matches_link_behaviour(self, session):
        from repro.privacy.leakcheck import ALLOWED_OUTBOUND_KINDS

        session.query(demo_query())
        session.query(
            "SELECT Med.Name FROM Medicine Med WHERE Med.Type = 'Statin'"
        )
        emitted = {
            r.kind for r in session.usb_log
            if r.direction is Direction.TO_HOST
        }
        assert emitted
        assert emitted <= ALLOWED_OUTBOUND_KINDS

    def test_request_ops_whitelist_matches_link(self, session):
        import json

        from repro.privacy.leakcheck import ALLOWED_REQUEST_OPS
        from repro.visible.frame import payload_of

        session.query(demo_query())
        ops = {
            json.loads(payload_of(r.payload))["op"]
            for r in session.usb_log
            if r.direction is Direction.TO_HOST and r.kind == "request"
        }
        assert ops
        assert ops <= ALLOWED_REQUEST_OPS

    def test_documented_kinds_cover_observations(self, session):
        """docs/PROTOCOL.md lists seven message kinds; the captured
        traffic must not contain anything undocumented."""
        documented = {
            "query", "request", "ids", "ids_end", "count",
            "fetch_ids", "values",
        }
        session.query(demo_query())
        observed = {r.kind for r in session.usb_log}
        assert observed <= documented
