"""Exhaustive power-cut sweep over a mixed DML workload.

The atomicity contract for every UPDATE / DELETE: cut power at *any*
flash operation of the statement, remount, and the device holds either
the old or the new version of that statement -- never a torn mix.  With
the build-all-then-swap rebuild this is concretely the *old* version
(every flash write precedes the host-side commit), and all earlier
statements of the workload stay fully applied.  Each state check
compares the device rows against an independently maintained host-side
reference model.
"""

from __future__ import annotations

import pytest

from repro.core.ghostdb import GhostDB
from repro.faults import PowerCutError
from repro.sql import ast
from repro.sql.binder import Binder
from repro.sql.parser import parse_statement
from repro.workload.datagen import DatasetConfig, MedicalDataGenerator
from repro.workload.queries import DEMO_SCHEMA_DDL

TINY = DatasetConfig(n_prescriptions=12)

#: The mixed workload under test: hidden + visible updates, subset and
#: cascade-free deletes, across two tables.
STATEMENTS = [
    "UPDATE Prescription SET Quantity = 42 WHERE PreID <= 6",
    "DELETE FROM Prescription WHERE PreID IN (2, 4)",
    "UPDATE Patient SET Age = 99, BodyMassIndex = 31.5 WHERE PatID = 1",
    "DELETE FROM Prescription WHERE Quantity = 42",
]


@pytest.fixture(scope="module")
def tiny_data() -> dict[str, list]:
    return MedicalDataGenerator(TINY).generate()


def build_session(data) -> GhostDB:
    db = GhostDB()
    for ddl in DEMO_SCHEMA_DDL:
        db.execute(ddl)
    db.load(data)
    return db


# ----------------------------------------------------------------------
# Host-side reference model
# ----------------------------------------------------------------------


def apply_statement(tree, rows_by_table, sql: str) -> None:
    """Apply one DML statement to the reference rows, in place.

    Independent of the engine: binds the statement for column
    resolution, then evaluates predicates/assignments on plain host
    tuples.
    """
    statement = parse_statement(sql)
    binder = Binder(tree)
    if isinstance(statement, ast.Update):
        bound = binder.bind_update(statement)
        tdef = bound.table_def
        idx = {c.name.lower(): i for i, c in enumerate(tdef.columns)}
        rows = rows_by_table[bound.table]
        out = []
        for row in rows:
            if all(p.matches(row[idx[p.column]]) for p in bound.predicates):
                new = list(row)
                for a in bound.assignments:
                    new[idx[a.column.name.lower()]] = a.column.dtype.validate(
                        a.value
                    )
                out.append(tuple(new))
            else:
                out.append(row)
        rows_by_table[bound.table] = out
    else:
        bound = binder.bind_delete(statement)
        tdef = bound.table_def
        idx = {c.name.lower(): i for i, c in enumerate(tdef.columns)}
        rows_by_table[bound.table] = [
            row
            for row in rows_by_table[bound.table]
            if not all(
                p.matches(row[idx[p.column]]) for p in bound.predicates
            )
        ]


def expected_device_rows(tree, rows_by_table, table: str) -> list[tuple]:
    tdef = tree.table(table)
    idx = [tdef.column_index(c.name) for c in tdef.device_columns()]
    return sorted(
        (tuple(row[i] for i in idx) for row in rows_by_table[table]),
        key=lambda r: r[0],
    )


def reference_after(tree, data, n_statements: int) -> dict[str, list]:
    ref = {name: list(rows) for name, rows in data.items()}
    for sql in STATEMENTS[:n_statements]:
        apply_statement(tree, ref, sql)
    return ref


def assert_matches_reference(db: GhostDB, ref: dict[str, list]) -> None:
    for table in ("prescription", "patient", "visit", "medicine"):
        assert (
            list(db.hidden.heaps[table].scan())
            == expected_device_rows(db.tree, ref, table)
        ), f"device state of {table!r} diverged from the reference"
        assert db.site.row_count(table) == len(ref[table])
    assert db.device.ftl.mapped_lpages() == db.hidden.referenced_pages()


# ----------------------------------------------------------------------
# Op counting
# ----------------------------------------------------------------------


def statement_boundaries(data) -> list[int]:
    """Clean run: cumulative flash-op count after each statement."""
    db = build_session(data)
    injector = db.set_faults("none", seed=0)
    boundaries = []
    for sql in STATEMENTS:
        db.execute(sql)
        boundaries.append(injector.flash_ops)
    return boundaries


class TestDmlPowerCutSweep:
    def test_cut_at_every_flash_op_keeps_old_or_new_version(
        self, tiny_data
    ):
        boundaries = statement_boundaries(tiny_data)
        total = boundaries[-1]
        assert total > 60, "workload too small to be a meaningful sweep"

        # Sanity: the reference model agrees with a clean run end state.
        clean = build_session(tiny_data)
        for sql in STATEMENTS:
            clean.execute(sql)
        assert_matches_reference(
            clean, reference_after(clean.tree, tiny_data, len(STATEMENTS))
        )

        for cut_at in range(total):
            db = build_session(tiny_data)
            injector = db.set_faults("none", seed=0)
            injector.schedule_power_cut(at_flash_op=cut_at)
            # The statement whose op range contains the cut.
            victim = next(
                k for k, b in enumerate(boundaries) if cut_at < b
            )
            completed = 0
            with pytest.raises(PowerCutError):
                for sql in STATEMENTS:
                    db.execute(sql)
                    completed += 1
            assert completed == victim, (
                f"cut at op {cut_at} interrupted statement "
                f"{completed}, expected {victim}"
            )
            db.set_faults("none", seed=0)  # drop the consumed schedule
            db.remount()
            # Atomicity: earlier statements fully applied, the cut
            # statement fully rolled back (the old version) -- and
            # never a torn mix, which the row-for-row comparison with
            # the reference model would catch.
            assert_matches_reference(
                db, reference_after(db.tree, tiny_data, victim)
            )
            # The workload can resume and reach the clean end state.
            for sql in STATEMENTS[victim:]:
                db.execute(sql)
            assert_matches_reference(
                db, reference_after(db.tree, tiny_data, len(STATEMENTS))
            )


class TestDmlFaultSession:
    def test_queries_blocked_until_remount(self, tiny_data):
        db = build_session(tiny_data)
        injector = db.set_faults("none", seed=0)
        injector.schedule_power_cut(at_flash_op=10)
        with pytest.raises(PowerCutError):
            db.execute(STATEMENTS[0])
        from repro.core.ghostdb import SessionError

        with pytest.raises(SessionError, match="remount"):
            db.execute(STATEMENTS[1])
        with pytest.raises(SessionError, match="remount"):
            db.query("SELECT Quantity FROM Prescription WHERE Quantity = 1")
        db.set_faults("none", seed=0)
        db.remount()
        db.execute(STATEMENTS[0])  # works again

    def test_aborted_dml_counted(self, tiny_data):
        db = build_session(tiny_data)
        injector = db.set_faults("none", seed=0)
        injector.schedule_power_cut(at_flash_op=10)
        with pytest.raises(PowerCutError):
            db.execute(STATEMENTS[0])
        aborted = db.obs.registry.counter(
            "ghostdb_recovery_aborted_queries_total"
        )
        assert aborted.total() == 1
