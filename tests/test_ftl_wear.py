"""Wear-aware FTL: victim selection, grown bad blocks, and the
write-degradation ladder (throttle, then typed read-only)."""

import pytest

from repro.hardware.clock import SimClock
from repro.hardware.flash import BadBlockError, NandFlash
from repro.hardware.ftl import (
    DeviceReadOnlyError,
    FlashFullError,
    FlashTranslationLayer,
)
from repro.hardware.profiles import DEMO_DEVICE
from repro.obs.registry import MetricsRegistry


class FlightSpy:
    """Minimal stand-in for the session flight recorder."""

    def __init__(self):
        self.events = []

    def record(self, kind, **data):
        self.events.append((kind, data))

    def kinds(self):
        return [kind for kind, _ in self.events]

    def of_kind(self, kind):
        return [data for k, data in self.events if k == kind]


def make_ftl(num_blocks=8, spare=2, metrics=None, **overrides):
    profile = DEMO_DEVICE.with_overrides(num_blocks=num_blocks, **overrides)
    flash = NandFlash(profile=profile, clock=SimClock(), metrics=metrics)
    ftl = FlashTranslationLayer(flash=flash, spare_blocks=spare)
    ftl.flight = FlightSpy()
    return ftl, flash


def stale_pages_of_block(ftl, block, count):
    per_block = ftl.flash.profile.pages_per_block
    first = block * per_block
    ftl._stale.update(range(first, first + count))


# ----------------------------------------------------------------------
# Wear-aware victim selection
# ----------------------------------------------------------------------


def test_victim_prefers_cooler_block_on_staleness_tie():
    ftl, flash = make_ftl()
    stale_pages_of_block(ftl, 2, 3)
    stale_pages_of_block(ftl, 5, 3)
    # Heat block 5 without touching its contents (blocks are empty).
    for _ in range(4):
        flash.erase_block(5)
    assert ftl._pick_victim_block() == 2


def test_victim_discounts_hot_blocks_despite_more_garbage():
    ftl, flash = make_ftl()
    stale_pages_of_block(ftl, 1, 4)  # more garbage, but hot
    stale_pages_of_block(ftl, 6, 2)  # less garbage, cold
    for _ in range(10):
        flash.erase_block(1)
    # score(1) = 4 - 1 * 10 = -6 < score(6) = 2: the cold block wins.
    assert ftl._pick_victim_block() == 6


def test_victim_tie_breaks_deterministically_by_block_number():
    ftl, _ = make_ftl()
    stale_pages_of_block(ftl, 4, 2)
    stale_pages_of_block(ftl, 3, 2)
    # Equal staleness, equal wear: the lower-numbered block wins.
    assert ftl._pick_victim_block() == 3


def test_sustained_churn_keeps_erase_spread_bounded():
    ftl, flash = make_ftl(num_blocks=8)
    page = ftl.allocate()
    for i in range(3_000):
        ftl.write(page, b"churn")
    counts = [
        flash.erase_count(b) for b in range(flash.profile.num_blocks)
    ]
    active = [c for c in counts if c > 0]
    assert len(active) >= flash.profile.num_blocks // 2
    assert max(active) <= min(active) + max(3, max(active) // 2)


# ----------------------------------------------------------------------
# Wear-out -> grown bad blocks
# ----------------------------------------------------------------------


def test_wear_out_grows_bad_blocks_and_records_flight_events():
    metrics = MetricsRegistry()
    ftl, flash = make_ftl(
        num_blocks=6, metrics=metrics, max_erase_cycles=4
    )
    page = ftl.allocate()
    with pytest.raises(DeviceReadOnlyError):
        for _ in range(20_000):
            ftl.write(page, b"churn")
    assert flash.bad_block_count > 0
    assert metrics.counter("ghostdb_ftl_wear_bad_blocks_total").total() > 0
    assert (
        metrics.counter("ghostdb_ftl_readonly_transitions_total").total()
        == 1
    )
    kinds = ftl.flight.kinds()
    assert "ftl_wear_bad_block" in kinds
    assert "ftl_read_only" in kinds
    worn = ftl.flight.of_kind("ftl_wear_bad_block")[0]
    assert worn["erase_cycles"] >= 4
    # The wear gauges captured the endurance picture.
    assert metrics.gauge("ghostdb_ftl_wear_max_erase_cycles").value() >= 4


def test_gc_runs_record_flight_events():
    ftl, flash = make_ftl(num_blocks=6)
    page = ftl.allocate()
    for i in range(flash.profile.pages_per_block * 10):
        ftl.write(page, f"v{i}".encode())
    events = ftl.flight.of_kind("ftl_gc")
    assert events, "sustained churn must garbage-collect"
    assert {"victim", "relocated", "erase_cycles", "free_blocks"} <= set(
        events[0]
    )


# ----------------------------------------------------------------------
# Ladder rung 1: GC-pressure throttling
# ----------------------------------------------------------------------


def test_throttle_engages_under_pressure_and_releases():
    metrics = MetricsRegistry()
    ftl, flash = make_ftl(num_blocks=8, metrics=metrics)
    per_block = flash.profile.pages_per_block
    usable = (8 - ftl.spare_blocks) * per_block
    pages = []
    # Fill live data until free space drops under the threshold.
    while ftl.free_pages_estimate - ftl.spare_blocks * per_block >= (
        usable * ftl.throttle_threshold
    ):
        page = ftl.allocate()
        ftl.write(page, b"live")
        pages.append(page)
    before = flash.clock.now
    ftl.write(pages[0], b"updated")
    throttled_cost = flash.clock.now - before
    assert metrics.counter("ghostdb_ftl_throttle_writes_total").total() > 0
    assert metrics.counter("ghostdb_ftl_throttle_seconds_total").total() > 0
    engage = ftl.flight.of_kind("ftl_throttle")
    assert engage and engage[0]["engaged"] is True
    # Free half the data: pressure drops, the throttle releases.
    for page in pages[: len(pages) // 2]:
        ftl.free(page)
    before = flash.clock.now
    ftl.write(pages[-1], b"calm")
    calm_cost = flash.clock.now - before
    states = [e["engaged"] for e in ftl.flight.of_kind("ftl_throttle")]
    assert states[-1] is False
    assert throttled_cost > calm_cost


def test_throttled_write_costs_extra_simulated_time():
    ftl, flash = make_ftl(num_blocks=8)
    page = ftl.allocate()
    ftl.write(page, b"x")
    baseline = flash.clock.now
    ftl.write(page, b"y")
    unthrottled = flash.clock.now - baseline
    # Force the throttle on and compare a pure two-program write.
    ftl.throttle_threshold = 1.1  # always under pressure
    before = flash.clock.now
    ftl.write(page, b"z")
    throttled = flash.clock.now - before
    expected = ftl.throttle_factor * flash.profile.flash_write_s
    assert throttled >= unthrottled + expected * 0.99


# ----------------------------------------------------------------------
# Ladder rung 2: typed read-only, FlashFullError contained
# ----------------------------------------------------------------------


def test_read_only_is_sticky_and_keeps_reads_working():
    ftl, _ = make_ftl(num_blocks=4, spare=1)
    pages = []
    with pytest.raises(DeviceReadOnlyError):
        while True:
            page = ftl.allocate()
            ftl.write(page, b"live")
            pages.append(page)
    assert ftl.read_only
    assert "read-only" in ftl.read_only_reason
    with pytest.raises(DeviceReadOnlyError):
        ftl.write(pages[0], b"nope")
    for page in pages[:-1]:
        assert ftl.read(page, 0, 4) == b"live"
    # free() is host-side bookkeeping and stays allowed.
    ftl.free(pages[0])


def test_flash_full_inside_gc_relocation_becomes_read_only():
    """Regression: exhaustion *mid-reclaim* (a cascade of grown bad
    blocks during relocation) must latch read-only, not escape as
    FlashFullError with ``_in_gc`` stuck."""
    ftl, flash = make_ftl(num_blocks=6, spare=2)
    per_block = flash.profile.pages_per_block
    # Fill to the brink: leave only the spare blocks free, with one
    # victim block holding mostly stale pages so GC has work to do.
    churn = ftl.allocate()
    live = []
    for _ in range((6 - ftl.spare_blocks - 1) * per_block - 1):
        page = ftl.allocate()
        ftl.write(page, b"live")
        live.append(page)
    for _ in range(per_block):
        ftl.write(churn, b"churn")

    # Every program from here on grows a bad block, so GC's relocations
    # burn through the free list without ever landing.
    real_program = flash.program

    def failing_program(page, data, oob=None):
        block = flash.block_of(page)
        flash.mark_bad(block)
        raise BadBlockError(f"block {block} failed to program (test)")

    flash.program = failing_program
    try:
        with pytest.raises(DeviceReadOnlyError):
            for _ in range(4 * per_block):
                ftl.write(churn, b"push into GC")
    finally:
        flash.program = real_program
    assert ftl.read_only
    assert not ftl._in_gc
    # No live page was lost: the map still resolves every one.
    for page in live:
        assert ftl.read(page, 0, 4) == b"live"


def test_flash_full_error_never_escapes_the_write_path():
    ftl, _ = make_ftl(num_blocks=4, spare=1)
    with pytest.raises(DeviceReadOnlyError) as excinfo:
        while True:
            ftl.write(ftl.allocate(), b"live")
    assert not isinstance(excinfo.value, FlashFullError)


def test_remount_clears_the_read_only_latch():
    ftl, flash = make_ftl(num_blocks=4, spare=1)
    with pytest.raises(DeviceReadOnlyError):
        while True:
            ftl.write(ftl.allocate(), b"live")
    recovered = FlashTranslationLayer.recover(
        flash, spare_blocks=ftl.spare_blocks
    )
    assert not recovered.read_only
