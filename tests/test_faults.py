"""The fault injector itself: determinism, profiles, scheduling."""

import pytest

from repro.faults import (
    FAULT_PROFILES,
    FaultInjector,
    FaultProfile,
)
from repro.obs.registry import MetricsRegistry

MIXED = FAULT_PROFILES["mixed"].scaled(10)


def drive(injector, usb_ops=40, flash_ops=40):
    """A fixed synthetic op sequence; returns the schedule signature."""
    for i in range(usb_ops):
        injector.usb_decision(64 + i)
    for i in range(flash_ops):
        injector.flash_decision(("read", "program", "erase")[i % 3],
                                data_len=128)
    return injector.schedule_signature()


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        a = drive(FaultInjector(MIXED, seed=42))
        b = drive(FaultInjector(MIXED, seed=42))
        assert a == b
        assert a, "scaled mixed profile over 80 ops should fire"

    def test_events_carry_identical_parameters(self):
        a = FaultInjector(MIXED, seed=42)
        b = FaultInjector(MIXED, seed=42)
        drive(a)
        drive(b)
        assert a.events == b.events  # positions, masks, lengths too

    def test_different_seed_different_schedule(self):
        assert drive(FaultInjector(MIXED, seed=1)) != drive(
            FaultInjector(MIXED, seed=2)
        )

    def test_op_counters_advance_without_faults(self):
        injector = FaultInjector(FAULT_PROFILES["none"], seed=0)
        sig = drive(injector, usb_ops=5, flash_ops=5)
        assert sig == ()
        assert injector.usb_ops == 5
        assert injector.flash_ops == 5


class TestProfiles:
    def test_registry_names_match_keys(self):
        for key, profile in FAULT_PROFILES.items():
            assert profile.name == key

    def test_none_profile_has_no_rates(self):
        none = FAULT_PROFILES["none"]
        assert drive(FaultInjector(none, seed=0), 100, 100) == ()

    def test_scaled_caps_at_one(self):
        profile = FaultProfile(name="x", usb_corrupt_rate=0.4)
        assert profile.scaled(10).usb_corrupt_rate == 1.0
        assert profile.scaled(0.5).usb_corrupt_rate == pytest.approx(0.2)

    def test_single_roll_picks_one_usb_fault(self):
        # corrupt=1.0: every transfer corrupts, never drops/stalls.
        injector = FaultInjector(
            FaultProfile(name="c", usb_corrupt_rate=1.0, usb_drop_rate=1.0,
                         usb_stall_rate=1.0, usb_unplug_rate=1.0),
            seed=0,
        )
        decision = injector.usb_decision(32)
        # Cumulative edges in severity order: unplug wins the roll.
        assert decision.kind == "unplug"

    def test_corrupt_parameters_in_range(self):
        injector = FaultInjector(
            FaultProfile(name="c", usb_corrupt_rate=1.0), seed=9
        )
        for _ in range(50):
            d = injector.usb_decision(16)
            assert d.kind == "corrupt"
            assert 0 <= d.position < 16
            assert 1 <= d.xor_mask <= 255


class TestScheduledPowerCut:
    def test_cut_fires_at_exact_op_index(self):
        injector = FaultInjector(FAULT_PROFILES["none"], seed=0)
        injector.schedule_power_cut(at_flash_op=2)
        assert injector.flash_decision("read", 64) is None
        assert injector.flash_decision("read", 64) is None
        cut = injector.flash_decision("read", 64)
        assert cut.kind == "power_cut"
        assert cut.op_index == 2

    def test_cut_does_not_perturb_rate_schedule(self):
        """Sweeping the cut point must replay the same pre-cut faults."""
        profile = FAULT_PROFILES["flash"].scaled(20)
        reference = FaultInjector(profile, seed=5)
        for _ in range(10):
            reference.flash_decision("read", 64)
        swept = FaultInjector(profile, seed=5)
        swept.schedule_power_cut(at_flash_op=8)
        for i in range(9):
            swept.flash_decision("read", 64)
        assert (
            swept.schedule_signature()[:-1]
            == tuple(
                e for e in reference.schedule_signature() if e[2] < 8
            )
        )
        assert swept.events[-1].kind == "power_cut"

    def test_mid_erase_cut_draws_wiped_prefix(self):
        injector = FaultInjector(FAULT_PROFILES["none"], seed=3)
        injector.schedule_power_cut(at_flash_op=0)
        cut = injector.flash_decision("erase", data_len=32)
        assert cut.kind == "power_cut"
        assert 0 <= cut.length <= 32


class TestBookkeeping:
    def test_metrics_counted_by_site_and_kind(self):
        registry = MetricsRegistry()
        injector = FaultInjector(
            FaultProfile(name="c", usb_corrupt_rate=1.0),
            seed=0,
            metrics=registry,
        )
        injector.usb_decision(8)
        injector.usb_decision(8)
        counter = registry.counter("ghostdb_faults_injected_total")
        assert counter.value(site="usb", kind="corrupt") == 2

    def test_signature_matches_events(self):
        injector = FaultInjector(MIXED, seed=11)
        drive(injector)
        assert injector.schedule_signature() == tuple(
            (e.site, e.kind, e.op_index) for e in injector.events
        )
