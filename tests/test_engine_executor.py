"""Plan lowering, execution, metrics and error paths."""

import pytest

from repro.engine import plan as lp
from repro.engine.operators import PlanExecutionError
from repro.optimizer.space import PlanBuilder, Strategy
from repro.reference import evaluate_reference, same_rows
from repro.workload.queries import demo_query


@pytest.fixture
def session(fresh_session):
    fresh_session.reset_measurements()
    return fresh_session


def build_plan(session, sql, strategy=None):
    bound = session.bind(sql)
    builder = PlanBuilder(session.hidden, bound)
    strategy = strategy or Strategy.all_pre(bound)
    return bound, builder.build(strategy)


class TestExecution:
    def test_result_columns_named(self, session):
        result = session.query(demo_query())
        assert result.columns == [
            "medicine.Name", "prescription.Quantity", "visit.Date",
        ]

    def test_metrics_cover_the_run(self, session):
        session.reset_measurements()
        result = session.query(demo_query())
        m = result.metrics
        assert m.elapsed_seconds > 0
        assert m.flash_page_reads > 0
        assert m.usb_messages > 0
        assert m.result_rows == len(result.rows)
        assert m.ram_high_water > 0

    def test_per_operator_stats_present(self, session):
        result = session.query(demo_query())
        names = {op.name for op in result.metrics.operators}
        assert "project" in names
        assert any("select" in n for n in names)
        total_self = sum(op.self_seconds for op in result.metrics.operators)
        assert total_self <= result.metrics.elapsed_seconds * 1.01

    def test_report_renders(self, session):
        result = session.query(demo_query())
        text = result.metrics.report()
        assert "execution time" in text
        assert "operators:" in text

    def test_store_node_roundtrips(self, session, demo_data):
        bound, plan = build_plan(session, demo_query())
        stored = lp.Project(
            child=lp.Store(plan.child),
            projections=plan.projections,
            visible_recheck=plan.visible_recheck,
            residual_hidden=plan.residual_hidden,
        )
        expected = evaluate_reference(session.tree, demo_data, bound)
        result = session.executor.execute(stored)
        assert same_rows(result.rows, expected)

    def test_single_table_query(self, session, demo_data):
        sql = "SELECT Purpose, Date FROM Visit WHERE Purpose = 'Sclerosis'"
        bound = session.bind(sql)
        expected = evaluate_reference(session.tree, demo_data, bound)
        result = session.query(sql)
        assert same_rows(result.rows, expected)
        assert result.rows  # non-trivial

    def test_query_root_below_schema_root(self, session, demo_data):
        """A query over the Visit subtree uses SKT_visit."""
        sql = (
            "SELECT d.Country, v.Date FROM Visit v, Doctor d "
            "WHERE v.Purpose = 'Sclerosis' AND v.DocID = d.DocID"
        )
        bound = session.bind(sql)
        assert bound.root == "visit"
        expected = evaluate_reference(session.tree, demo_data, bound)
        result = session.query(sql)
        assert same_rows(result.rows, expected)

    def test_neq_predicate_as_residual(self, session, demo_data):
        sql = (
            "SELECT Quantity FROM Prescription "
            "WHERE Quantity <> 5 AND Quantity >= 4 AND Quantity <= 6"
        )
        bound = session.bind(sql)
        expected = evaluate_reference(session.tree, demo_data, bound)
        result = session.query(sql)
        assert same_rows(result.rows, expected)
        assert all(row[0] != 5 for row in result.rows)


class TestLoweringErrors:
    def test_plan_root_must_be_project(self, session):
        bound, plan = build_plan(session, demo_query())
        with pytest.raises(PlanExecutionError, match="Project"):
            session.executor.execute(plan.child)

    def test_missing_climbing_index(self, session):
        bound = session.bind(
            "SELECT Name FROM Patient WHERE Name = 'Nina Simon'"
        )
        predicate = bound.predicates[0]
        bad = lp.Project(
            child=lp.IdsToTuples(
                lp.ClimbingSelect(predicate, target_table="patient")
            ),
            projections=list(bound.projections),
        )
        # Patient.Name has a climbing index by default; drop it to test.
        session.hidden.climbing.pop(("patient", "name"))
        with pytest.raises(PlanExecutionError, match="no climbing index"):
            session.executor.execute(bad)

    def test_skt_root_mismatch(self, session):
        bound = session.bind(demo_query())
        predicate = next(p for p in bound.predicates if p.hidden)
        bad = lp.SktAccess(
            skt_root="prescription",
            child=lp.ClimbingSelect(predicate, target_table="visit"),
        )
        plan = lp.Project(child=bad, projections=list(bound.projections))
        with pytest.raises(PlanExecutionError, match="needs prescription ids"):
            session.executor.execute(plan)

    def test_bloom_table_not_in_tuples(self, session):
        bound = session.bind(
            "SELECT v.Date FROM Visit v, Doctor d "
            "WHERE d.Country = 'France' AND v.DocID = d.DocID"
        )
        predicate = bound.predicates[0]
        plan = lp.Project(
            child=lp.BloomProbe(
                lp.IdsToTuples(lp.DeviceScanSelect("medicine", [])),
                predicate,
            ),
            projections=[],
        )
        with pytest.raises(PlanExecutionError, match="tuples cover"):
            session.executor.execute(plan)

    def test_bloom_on_hidden_predicate_rejected(self, session):
        bound = session.bind(demo_query())
        hidden = next(p for p in bound.predicates if p.hidden)
        plan = lp.Project(
            child=lp.BloomProbe(
                lp.SktAccess(skt_root="prescription"), hidden
            ),
            projections=list(bound.projections),
        )
        with pytest.raises(PlanExecutionError, match="visible"):
            session.executor.execute(plan)


class TestPlanStructureValidation:
    def test_merge_needs_same_table(self, session):
        bound = session.bind(demo_query())
        visible = bound.visible_predicates
        with pytest.raises(lp.PlanError, match="one table"):
            lp.MergeIntersect(
                [lp.VisibleSelect(visible[0]), lp.VisibleSelect(visible[1])]
            )

    def test_project_requires_tuple_stream(self, session):
        bound = session.bind(demo_query())
        visible = bound.visible_predicates[0]
        with pytest.raises(lp.PlanError, match="tuple-stream"):
            lp.Project(
                child=lp.VisibleSelect(visible),
                projections=list(bound.projections),
            )

    def test_render_draws_the_tree(self, session):
        _bound, plan = build_plan(session, demo_query())
        text = plan.render()
        assert "Project" in text
        assert "SktAccess" in text
        assert text.count("\n") >= 3
