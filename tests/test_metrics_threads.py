"""Registry registration is safe under concurrent sessions.

The serve front end resolves metric families and bound children from
socket handler threads' rounds while the pump is mid-flight, so
get-or-create must converge on ONE object per name (and one bound child
per label set) no matter how the threads interleave.  Before the slow
path took a lock, two racing registrations could each construct a
family and one would be silently dropped -- its bound children then
wrote into a metric nobody exposed.
"""

from __future__ import annotations

import threading

from repro.obs.registry import MetricsRegistry

THREADS = 16
ROUNDS = 200

FAMILIES = [f"ghostdb_test_family_{i}_total" for i in range(8)]
LABELS = [{"session": f"client-{i}"} for i in range(4)]


def _hammer(registry, results, barrier, worker):
    """Each worker resolves every (family, labels) pair repeatedly and
    records the object identities it saw."""
    seen_counters = {}
    seen_bound = {}
    barrier.wait()  # maximise registration contention
    for _ in range(ROUNDS):
        for name in FAMILIES:
            counter = registry.counter(name)
            seen_counters.setdefault(name, set()).add(id(counter))
            for labels in LABELS:
                bound = counter.labelled(**labels)
                key = (name, tuple(sorted(labels.items())))
                seen_bound.setdefault(key, set()).add(id(bound))
                bound.inc()
    results[worker] = (seen_counters, seen_bound)


def test_concurrent_get_or_create_converges_on_one_object():
    registry = MetricsRegistry()
    results: dict[int, tuple] = {}
    barrier = threading.Barrier(THREADS)
    threads = [
        threading.Thread(
            target=_hammer, args=(registry, results, barrier, i)
        )
        for i in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(results) == THREADS, "a worker died mid-hammer"

    # Across every thread, each family name resolved to ONE object...
    for name in FAMILIES:
        identities = set()
        for seen_counters, _ in results.values():
            identities |= seen_counters[name]
        assert len(identities) == 1, f"{name} split into {len(identities)}"
        # ... and it is the object the registry still exposes.
        assert identities == {id(registry.counter(name))}

    # Same for every bound child: one object per (family, label set).
    for name in FAMILIES:
        for labels in LABELS:
            key = (name, tuple(sorted(labels.items())))
            identities = set()
            for _, seen_bound in results.values():
                identities |= seen_bound[key]
            assert len(identities) == 1, f"{key} split into {len(identities)}"

    # Structure survived: every label set has a live value slot (we do
    # not assert exact totals -- dict read-modify-write between Python
    # threads may drop increments; object identity is the contract
    # that keeps the engine's single-writer accounting coherent).
    for name in FAMILIES:
        counter = registry.counter(name)
        for labels in LABELS:
            assert counter.value(**labels) > 0


def test_exposition_is_coherent_after_the_storm():
    registry = MetricsRegistry()
    barrier = threading.Barrier(4)
    results: dict[int, tuple] = {}
    threads = [
        threading.Thread(
            target=_hammer, args=(registry, results, barrier, i)
        )
        for i in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    text = registry.expose_text()
    for name in FAMILIES:
        # One TYPE line per family: no duplicate registrations leaked
        # into the exposition.
        assert text.count(f"# TYPE {name} counter") == 1
