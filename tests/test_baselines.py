"""Baselines: correctness first, then the paper's performance claims."""

import pytest

from repro.baselines import (
    StepwisePlanBuilder,
    run_hash_join_query,
    run_join_index_query,
)
from repro.engine import plan as lp
from repro.optimizer.space import Strategy
from repro.reference import evaluate_reference, same_rows
from repro.workload.queries import demo_query


@pytest.fixture
def session(fresh_session):
    fresh_session.reset_measurements()
    return fresh_session


DEEP_SQL = """
    SELECT Pre.Quantity, Pat.Name
    FROM Prescription Pre, Visit Vis, Patient Pat
    WHERE Pat.BodyMassIndex > 34.0
    AND Pre.VisID = Vis.VisID
    AND Vis.PatID = Pat.PatID
"""


class TestHashJoinBaseline:
    def test_demo_query_correct(self, session, demo_data):
        expected = evaluate_reference(
            session.tree, demo_data, session.bind(demo_query())
        )
        result = run_hash_join_query(session, demo_query())
        assert same_rows(result.rows, expected)

    def test_hidden_only_query_correct(self, session, demo_data):
        sql = (
            "SELECT Pre.Quantity FROM Prescription Pre, Visit Vis "
            "WHERE Vis.Purpose = 'Sclerosis' AND Vis.VisID = Pre.VisID"
        )
        expected = evaluate_reference(session.tree, demo_data, session.bind(sql))
        result = run_hash_join_query(session, sql)
        assert same_rows(result.rows, expected)

    def test_deep_predicate_propagates(self, session, demo_data):
        sql = (
            "SELECT Pre.Quantity FROM Prescription Pre, Visit Vis, "
            "Patient Pat WHERE Pat.Age > 60 "
            "AND Pre.VisID = Vis.VisID AND Vis.PatID = Pat.PatID"
        )
        expected = evaluate_reference(session.tree, demo_data, session.bind(sql))
        result = run_hash_join_query(session, sql)
        assert same_rows(result.rows, expected)

    def test_slower_than_ghostdb(self, session):
        session.reset_measurements()
        ghost = session.query(demo_query())
        session.reset_measurements()
        baseline = run_hash_join_query(session, demo_query())
        assert (
            baseline.metrics.elapsed_seconds
            > ghost.metrics.elapsed_seconds * 2
        )

    def test_scans_dominate_its_flash_reads(self, session):
        session.reset_measurements()
        baseline = run_hash_join_query(session, demo_query())
        # Scanning the root heap alone needs this many page reads.
        root_pages = len(session.hidden.heaps["prescription"].pages)
        assert baseline.metrics.flash_page_reads >= root_pages

    def test_neq_rejected(self, session):
        with pytest.raises(ValueError, match="<>"):
            run_hash_join_query(
                session,
                "SELECT Quantity FROM Prescription WHERE Quantity <> 5",
            )

    def test_deep_projection_rejected(self, session):
        with pytest.raises(ValueError, match="depth-1"):
            run_hash_join_query(session, DEEP_SQL)


class TestGraceSpill:
    def test_membership_join_spills_under_tiny_ram(self):
        """Starve the device and inflate the build side: the membership
        set cannot fit, so the baseline must grace-partition (paying
        flash writes) and still produce correct results."""
        from repro.core.ghostdb import GhostDB
        from repro.hardware.profiles import TINY_DEVICE
        from repro.workload.datagen import DatasetConfig, MedicalDataGenerator
        from repro.workload.queries import DEMO_SCHEMA_DDL

        data = MedicalDataGenerator(
            DatasetConfig(n_prescriptions=24_000)
        ).generate()
        db = GhostDB(profile=TINY_DEVICE)
        for ddl in DEMO_SCHEMA_DDL:
            db.execute(ddl)
        db.load(data)
        # Visible-only, unselective: ~1000 qualifying visits -> the
        # membership set needs ~12 KB against a 16 KB budget.
        sql = (
            "SELECT Pre.Quantity, Vis.Date FROM Prescription Pre, "
            "Visit Vis WHERE Vis.Date > DATE '2005-06-01' "
            "AND Vis.VisID = Pre.VisID"
        )
        expected = evaluate_reference(db.tree, data, db.bind(sql))
        db.reset_measurements()
        result = run_hash_join_query(db, sql)
        assert same_rows(result.rows, expected)
        spills = [
            op for op in result.metrics.operators
            if "grace spill" in op.detail
        ]
        assert spills
        assert result.metrics.flash_page_writes > 0


class TestJoinIndexBaseline:
    def test_demo_query_correct(self, session, demo_data):
        expected = evaluate_reference(
            session.tree, demo_data, session.bind(demo_query())
        )
        result = run_join_index_query(session, demo_query())
        assert same_rows(result.rows, expected)

    def test_deep_query_correct(self, session, demo_data):
        expected = evaluate_reference(
            session.tree, demo_data, session.bind(DEEP_SQL)
        )
        result = run_join_index_query(session, DEEP_SQL)
        assert same_rows(result.rows, expected)

    def test_stepwise_plans_chain_single_edges(self, session):
        bound = session.bind(DEEP_SQL)
        plan = StepwisePlanBuilder(session.hidden, bound).build(
            Strategy.all_pre(bound)
        )
        converts = [n for n in plan.walk() if isinstance(n, lp.ConvertIds)]
        # patient -> visit -> prescription: two separate conversions.
        assert len(converts) == 2
        climbing = next(
            n for n in plan.walk() if isinstance(n, lp.ClimbingSelect)
        )
        assert climbing.target_table == "patient"

    def test_climbing_beats_stepwise_on_deep_predicates(self, session):
        """The climbing index's reason to exist: a deep selection pays
        one traversal instead of per-level conversions."""
        session.reset_measurements()
        ghost = session.query(DEEP_SQL)
        session.reset_measurements()
        stepwise = run_join_index_query(session, DEEP_SQL)
        assert (
            stepwise.metrics.elapsed_seconds
            > ghost.metrics.elapsed_seconds
        )
