"""SQL value codecs: roundtrips, validation, order preservation."""

import datetime

import pytest
from hypothesis import given, strategies as st

from repro.storage.types import (
    CharType,
    DateType,
    FloatType,
    IntegerType,
    TypeError_,
    date_to_days,
    days_to_date,
    type_from_sql,
)

DATES = st.dates(
    min_value=datetime.date(1, 1, 1), max_value=datetime.date(9999, 12, 31)
)


class TestIntegerType:
    def test_roundtrip(self):
        t = IntegerType()
        for value in (0, 1, -1, 2**40, -(2**40), 2**63 - 1, -(2**63)):
            assert t.decode(t.encode(value)) == value

    def test_width(self):
        assert IntegerType().width == 8
        assert len(IntegerType().encode(12345)) == 8

    def test_rejects_non_int(self):
        with pytest.raises(TypeError_):
            IntegerType().encode("5")
        with pytest.raises(TypeError_):
            IntegerType().encode(True)  # bools are not SQL integers

    def test_rejects_out_of_range(self):
        with pytest.raises(TypeError_):
            IntegerType().encode(2**63)

    @given(st.integers(-(2**63), 2**63 - 1), st.integers(-(2**63), 2**63 - 1))
    def test_encoding_preserves_order(self, a, b):
        t = IntegerType()
        assert (t.encode(a) < t.encode(b)) == (a < b)


class TestFloatType:
    def test_roundtrip(self):
        t = FloatType()
        for value in (0.0, -1.5, 3.14159, 1e300):
            assert t.decode(t.encode(value)) == value

    def test_int_promoted(self):
        assert FloatType().decode(FloatType().encode(7)) == 7.0

    def test_rejects_strings_and_bools(self):
        with pytest.raises(TypeError_):
            FloatType().encode("1.0")
        with pytest.raises(TypeError_):
            FloatType().encode(False)

    def test_negative_floats_sort_below_positive(self):
        t = FloatType()
        assert t.encode(-1.0) < t.encode(0.0) < t.encode(1.0)
        assert t.encode(-1e300) < t.encode(-1e-300)

    @given(
        st.floats(allow_nan=False, allow_infinity=False),
        st.floats(allow_nan=False, allow_infinity=False),
    )
    def test_encoding_preserves_order(self, a, b):
        """The total-order transform: byte order == value order, signs
        included (ORDER BY and run merging depend on this)."""
        t = FloatType()
        if a < b:
            assert t.encode(a) < t.encode(b)
        elif a > b:
            assert t.encode(a) > t.encode(b)

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_roundtrip_property(self, value):
        t = FloatType()
        assert t.decode(t.encode(value)) == value


class TestDateType:
    def test_roundtrip(self):
        t = DateType()
        for value in (
            datetime.date(1970, 1, 1),
            datetime.date(2006, 11, 5),
            datetime.date(1899, 12, 31),
        ):
            assert t.decode(t.encode(value)) == value

    def test_width_is_four_bytes(self):
        assert DateType().width == 4

    def test_datetime_normalised_to_date(self):
        t = DateType()
        stamp = datetime.datetime(2006, 11, 5, 14, 30)
        assert t.decode(t.encode(stamp)) == datetime.date(2006, 11, 5)

    def test_rejects_strings(self):
        with pytest.raises(TypeError_):
            DateType().encode("2006-11-05")

    @given(DATES, DATES)
    def test_encoding_preserves_order(self, a, b):
        t = DateType()
        assert (t.encode(a) < t.encode(b)) == (a < b)

    @given(DATES)
    def test_epoch_day_roundtrip(self, value):
        assert days_to_date(date_to_days(value)) == value


class TestCharType:
    def test_roundtrip_with_padding(self):
        t = CharType(10)
        encoded = t.encode("abc")
        assert len(encoded) == 10
        assert t.decode(encoded) == "abc"

    def test_exact_length_fits(self):
        t = CharType(4)
        assert t.decode(t.encode("abcd")) == "abcd"

    def test_overflow_rejected(self):
        with pytest.raises(TypeError_, match="exceeds CHAR"):
            CharType(3).encode("abcd")

    def test_utf8_multibyte_counts_bytes(self):
        t = CharType(4)
        assert t.decode(t.encode("héllo"[:2])) == "hé"  # 3 bytes
        with pytest.raises(TypeError_):
            t.encode("ééé")  # 6 bytes > 4

    def test_rejects_non_str(self):
        with pytest.raises(TypeError_):
            CharType(5).encode(5)

    def test_zero_length_rejected(self):
        with pytest.raises(TypeError_):
            CharType(0)

    @given(st.text(alphabet=st.characters(codec="ascii", exclude_characters="\x00"), max_size=20))
    def test_ascii_roundtrip(self, value):
        t = CharType(20)
        assert t.decode(t.encode(value)) == value


class TestTypeFromSql:
    @pytest.mark.parametrize(
        "name, cls",
        [
            ("INTEGER", IntegerType),
            ("int", IntegerType),
            ("BIGINT", IntegerType),
            ("FLOAT", FloatType),
            ("real", FloatType),
            ("DOUBLE", FloatType),
            ("DATE", DateType),
        ],
    )
    def test_simple_names(self, name, cls):
        assert isinstance(type_from_sql(name), cls)

    def test_char_requires_length(self):
        assert type_from_sql("CHAR", 12) == CharType(12)
        assert type_from_sql("VARCHAR", 30) == CharType(30)
        with pytest.raises(TypeError_, match="requires a length"):
            type_from_sql("CHAR")

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError_, match="unsupported SQL type"):
            type_from_sql("BLOB")
