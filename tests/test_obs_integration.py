"""End-to-end observability: traces, metrics and redaction on a loaded
session.

The acceptance bar for the subsystem:

* operator self-times in a trace sum to the query's total simulated time;
* exported Chrome traces round-trip and nest by plan structure;
* a trace of a hidden-predicate query contains **no** dataset value --
  verified by the adversarial :class:`LeakChecker`, not by eyeballing;
* the Prometheus exposition's query-attributed totals equal the summed
  per-query :class:`ExecutionMetrics` diffs.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import Shell
from repro.privacy.leakcheck import LeakChecker
from repro.workload.queries import demo_query, query_purpose_only


@pytest.fixture
def obs_session(fresh_session):
    """A private loaded session with measurement state zeroed."""
    fresh_session.reset_measurements()
    return fresh_session


# ----------------------------------------------------------------------
# Time attribution
# ----------------------------------------------------------------------


class TestTimeAttribution:
    def test_operator_self_times_sum_to_total(self, obs_session):
        result = obs_session.query(demo_query())
        total = result.metrics.elapsed_seconds
        summed = sum(op.self_seconds for op in result.metrics.operators)
        assert summed == pytest.approx(total, rel=1e-6, abs=1e-9)

    def test_operator_spans_cover_execution(self, obs_session):
        traced = obs_session.trace(demo_query())
        ops = [
            s
            for root in traced.spans
            for s in root.walk()
            if s.category == "operator"
        ]
        assert ops, "no operator spans recorded"
        execute = next(
            s
            for root in traced.spans
            for s in root.walk()
            if s.name == "executor.execute"
        )
        for op in ops:
            assert op.start_sim >= execute.start_sim
            assert op.end_sim <= execute.end_sim

    def test_per_query_ram_high_water_not_inherited(self, obs_session):
        """Satellite fix: the second query must report its *own* RAM
        peak, not the session-wide maximum left by the first."""
        small_sql = "SELECT Country FROM Doctor LIMIT 1"
        baseline = obs_session.query(small_sql).metrics.ram_high_water
        big = obs_session.query(demo_query()).metrics.ram_high_water
        again = obs_session.query(small_sql).metrics.ram_high_water
        assert big > baseline  # the join really does use more RAM
        assert again == baseline


# ----------------------------------------------------------------------
# Trace structure and export
# ----------------------------------------------------------------------


class TestTraceExport:
    def test_trace_has_optimizer_and_operator_spans(self, obs_session):
        traced = obs_session.trace(demo_query())
        names = [s.name for root in traced.spans for s in root.walk()]
        assert "query" in names
        assert "optimizer.rank" in names
        assert names.count("optimizer.candidate") >= 2
        assert "executor.execute" in names
        assert any(n.startswith("op:") for n in names)

    def test_execute_span_carries_counter_attrs(self, obs_session):
        traced = obs_session.trace(demo_query())
        execute = next(
            s
            for root in traced.spans
            for s in root.walk()
            if s.name == "executor.execute"
        )
        m = traced.result.metrics
        assert execute.attrs["flash_page_reads"] == m.flash_page_reads
        assert execute.attrs["usb_messages"] == m.usb_messages
        assert execute.attrs["ram_high_water"] == m.ram_high_water

    def test_chrome_export_round_trip(self, obs_session, tmp_path):
        traced = obs_session.trace(demo_query())
        path = tmp_path / "query.trace.json"
        traced.save(str(path))
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        for event in complete:
            assert {"name", "cat", "ts", "dur", "pid", "tid", "args"} <= set(event)
        # both timelines present
        assert {e["pid"] for e in complete} == {1, 2}

    def test_session_export_includes_load(self, obs_session, tmp_path):
        obs_session.query(demo_query())
        path = tmp_path / "session.trace.json"
        obs_session.export_trace(str(path))
        doc = json.loads(path.read_text())
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])


# ----------------------------------------------------------------------
# Redaction: no hidden value may enter any observability artefact
# ----------------------------------------------------------------------


class TestRedaction:
    def test_hidden_predicate_trace_is_clean(self, obs_session, demo_data):
        # Patient.Name is hidden; query for one real name from the data.
        name = demo_data["patient"][0][1]
        traced = obs_session.trace(
            f"SELECT Age FROM Patient WHERE Name = '{name}'"
        )
        rendered = traced.render()
        trace_json = traced.chrome_json()
        assert name not in rendered
        assert name not in trace_json

        checker = LeakChecker(obs_session.schema, demo_data)
        report = checker.check_bytes(
            trace_json.encode("utf-8"), kind="chrome-trace"
        )
        assert report.ok, report.summary()

    def test_demo_query_trace_survives_leakcheck(self, obs_session, demo_data):
        traced = obs_session.trace(demo_query())
        checker = LeakChecker(obs_session.schema, demo_data)
        payload = traced.chrome_json().encode("utf-8")
        assert checker.check_bytes(payload, kind="chrome-trace").ok

    def test_metrics_exposition_survives_leakcheck(
        self, obs_session, demo_data
    ):
        obs_session.query(demo_query())
        obs_session.query(query_purpose_only())
        checker = LeakChecker(obs_session.schema, demo_data)
        payload = obs_session.metrics_text().encode("utf-8")
        assert checker.check_bytes(payload, kind="metrics").ok

    def test_sql_constants_scrubbed_from_query_span(self, obs_session):
        traced = obs_session.trace(query_purpose_only("Sclerosis"))
        query_span = traced.spans[0]
        assert query_span.name == "query"
        assert "Sclerosis" not in query_span.attrs["sql"]
        # structure survives: table/column names are accepted revelation
        assert "Purpose" in query_span.attrs["sql"]


# ----------------------------------------------------------------------
# Metrics aggregation across queries
# ----------------------------------------------------------------------


class TestSessionMetrics:
    def test_totals_match_summed_execution_metrics(self, obs_session):
        queries = [demo_query(), query_purpose_only(), demo_query()]
        diffs = [obs_session.query(q).metrics for q in queries]
        reg = obs_session.obs.registry

        assert reg.counter("ghostdb_queries_total").total() == len(queries)
        assert reg.counter("ghostdb_flash_page_reads_total").total() == sum(
            m.flash_page_reads for m in diffs
        )
        assert reg.counter("ghostdb_usb_messages_total").total() == sum(
            m.usb_messages for m in diffs
        )
        assert reg.counter("ghostdb_usb_bytes_total").value(
            direction="to_host"
        ) == sum(m.usb_bytes_to_host for m in diffs)
        assert reg.counter("ghostdb_result_rows_total").total() == sum(
            m.result_rows for m in diffs
        )
        assert reg.gauge("ghostdb_ram_high_water_bytes").value() == max(
            m.ram_high_water for m in diffs
        )

    def test_exposition_text_reflects_totals(self, obs_session):
        obs_session.query(query_purpose_only())
        text = obs_session.metrics_text()
        assert "# TYPE ghostdb_queries_total counter" in text
        assert "ghostdb_queries_total 1" in text
        assert "ghostdb_plans_considered_total" in text

    def test_plans_considered_counts_candidates(self, obs_session):
        before = obs_session.obs.registry.counter(
            "ghostdb_plans_considered_total"
        ).total()
        obs_session.query(demo_query())
        after = obs_session.obs.registry.counter(
            "ghostdb_plans_considered_total"
        ).total()
        assert after - before >= 2  # 2x2 pre/post strategies for the demo

    def test_device_lifetime_metrics_present(self, obs_session):
        obs_session.query(demo_query())
        text = obs_session.metrics_text()
        assert "ghostdb_device_flash_reads_total" in text
        assert "ghostdb_device_usb_message_bytes_bucket" in text

    def test_reset_measurements_zeroes_obs(self, obs_session):
        obs_session.query(query_purpose_only())
        obs_session.reset_measurements()
        reg = obs_session.obs.registry
        assert reg.counter("ghostdb_queries_total").total() == 0
        assert obs_session.obs.tracer.span_count() == 0


# ----------------------------------------------------------------------
# Persistence: sessions with observability state stay picklable
# ----------------------------------------------------------------------


class TestObsPersistence:
    def test_traced_session_round_trips(self, obs_session, tmp_path):
        from repro.core.ghostdb import GhostDB

        obs_session.trace(query_purpose_only())
        path = tmp_path / "session.ghostdb"
        obs_session.save(str(path))
        restored = GhostDB.restore(str(path))
        assert restored.obs.tracer.span_count() > 0
        result = restored.query(query_purpose_only())
        assert result.metrics.elapsed_seconds > 0


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def obs_shell():
    out = io.StringIO()
    sh = Shell(scale=1_000, out=out)
    sh._out_buffer = out
    return sh


def run(shell, line):
    shell._out_buffer.seek(0)
    shell._out_buffer.truncate()
    alive = shell.handle(line)
    return alive, shell._out_buffer.getvalue()


class TestShellObservability:
    def test_trace_command_renders_span_tree(self, obs_shell):
        _alive, out = run(obs_shell, f".trace {demo_query()}")
        assert "executor.execute" in out
        assert "op:" in out
        assert "sim" in out and "wall" in out
        assert "rows)" in out

    def test_metrics_command_exposes_registry(self, obs_shell):
        run(obs_shell, "SELECT Country FROM Doctor LIMIT 1")
        _alive, out = run(obs_shell, ".metrics")
        assert "# TYPE ghostdb_queries_total counter" in out

    def test_help_documents_new_commands(self, obs_shell):
        _alive, out = run(obs_shell, ".help")
        assert ".trace" in out and ".metrics" in out

    def test_trace_out_flag_writes_perfetto_file(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "cli.trace.json"
        code = main(
            [
                "--scale", "500",
                "--query", "SELECT Country FROM Doctor LIMIT 1",
                "--trace-out", str(path),
            ]
        )
        assert code == 0
        doc = json.loads(path.read_text())
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])
