"""Cost-model validation: estimates vs measurements, systematically.

The design claim (DESIGN.md §5): the optimizer prices plans "from the
same constants the simulator charges, so the optimizer's ranking is
testable against measured execution".  These tests hold it to that: for
a battery of queries and strategies, estimates must land within a
bounded factor of measurements, and estimated rankings must not invert
large measured gaps.
"""

import pytest

from repro.optimizer.space import enumerate_strategies
from tests.test_integration_queries import QUERIES

#: Estimated vs measured simulated seconds must agree within this factor
#: (cardinality estimation under independence is the dominant error).
AGREEMENT_FACTOR = 6.0


def plans_with_measurements(session, sql):
    bound = session.bind(sql)
    builder_plans = []
    for strategy in enumerate_strategies(bound):
        session.reset_measurements()
        result = session.query_with_strategy(sql, strategy)
        estimate = session.optimizer.cost_model.estimate(result.plan)
        builder_plans.append(
            (strategy, estimate, result.metrics)
        )
    return builder_plans


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_estimates_within_factor_of_measurements(demo_session, name):
    for strategy, estimate, metrics in plans_with_measurements(
        demo_session, QUERIES[name]
    ):
        measured = metrics.elapsed_seconds
        if measured < 1e-4:
            continue  # sub-0.1ms runs: framing constants dominate
        ratio = estimate.seconds / measured
        assert 1 / AGREEMENT_FACTOR <= ratio <= AGREEMENT_FACTOR, (
            f"{name} [{strategy.assignments}]: estimated "
            f"{estimate.seconds * 1e3:.2f} ms vs measured "
            f"{measured * 1e3:.2f} ms"
        )


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_ram_estimates_are_safe_upper_bounds_ish(demo_session, name):
    """RAM estimates may overshoot (they assume full pipeline overlap)
    but must not undershoot by more than 2x: an underestimating
    optimizer would greenlight plans the chip then kills."""
    for strategy, estimate, metrics in plans_with_measurements(
        demo_session, QUERIES[name]
    ):
        assert estimate.ram_bytes * 2 >= metrics.ram_high_water, (
            f"{name} [{strategy.assignments}]: estimated "
            f"{estimate.ram_bytes:.0f} B vs peak {metrics.ram_high_water} B"
        )


def test_large_measured_gaps_are_never_inverted(demo_session):
    """If plan A measures 3x faster than plan B, the estimates must not
    rank B above A -- the ranking property the game relies on."""
    for name in sorted(QUERIES):
        runs = plans_with_measurements(demo_session, QUERIES[name])
        for _sa, est_a, met_a in runs:
            for _sb, est_b, met_b in runs:
                if met_a.elapsed_seconds * 3 < met_b.elapsed_seconds:
                    assert est_a.seconds < est_b.seconds, name
