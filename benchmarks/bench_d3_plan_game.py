"""D3 -- demo phase 3: the find-the-fastest-plan game.

Measures every candidate strategy for the demo query (the game's
leaderboard) and scores the optimizer the way the game scores a visitor.
The paper's point -- "rather unusual query execution strategies ... may
generate unexpected results for newcomers" -- shows up as a non-obvious
winner; the reproduced check is that the optimizer lands on or near it.
"""

from benchmarks.conftest import print_series
from repro.demo.game import PlanGame
from repro.workload.queries import demo_query


def test_d3_plan_game(bench_session, benchmark):
    session = bench_session
    game = PlanGame(session, demo_query())

    def play():
        # Guess the naive all-PRE plan, like a newcomer would.
        naive = game.labels.index(
            next(l for l in game.labels if "pre" in l and "post" not in l)
        )
        return game.play(guess_index=naive)

    outcome = benchmark.pedantic(play, rounds=1, iterations=1)

    order = sorted(
        range(len(outcome.labels)), key=lambda i: outcome.measured_ms[i]
    )
    rows = [
        (
            rank + 1,
            outcome.labels[i],
            f"{outcome.measured_ms[i]:.2f}",
            "optimizer" if i == outcome.optimizer_index else "",
        )
        for rank, i in enumerate(order)
    ]
    print_series(
        "Demo phase 3: measured plan leaderboard",
        ["rank", "strategy", "time (ms)", "pick"],
        rows,
    )
    print(
        f"  naive guess right: {outcome.guess_was_right} | "
        f"optimizer right: {outcome.optimizer_was_right}"
    )
    # The outcome carries the whole priced field -- losers included --
    # so the check asserts on the object, not on captured stdout.
    assert len(outcome.estimated_ms) == len(outcome.labels)
    assert all(ms > 0 for ms in outcome.estimated_ms)
    # The optimizer's own estimate ranks its pick cheapest.
    assert outcome.estimated_ms[outcome.optimizer_index] == min(
        outcome.estimated_ms
    )
    # And the pick must land within 50% of the measured winner.
    assert outcome.chosen_vs_best_ratio <= 1.5
