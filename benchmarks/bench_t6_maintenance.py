"""T6 (extension) -- incremental maintenance cost.

The paper loads the device once in a secure setting; its successor
system made re-synchronisation routine.  This bench measures what an
append batch costs on our storage model (out-of-place rebuild of the
affected heap, SKTs and indexes) across batch sizes: the per-row cost
must fall with batch size (rebuilds amortise), which is why appends are
batched in practice.
"""

import datetime

from benchmarks.conftest import BENCH_SCALE, load_session, print_series

BATCHES = (1, 10, 100, 1000)


def _new_prescriptions(start_id, count):
    return [
        (
            start_id + i,
            (i % 10) + 1,
            "once daily",
            datetime.date(2007, 7, 2),
            1 + (i % 50),
            1 + (i % 100),
        )
        for i in range(count)
    ]


def test_t6_append_cost_vs_batch_size(benchmark):
    def sweep():
        rows = []
        per_row_costs = []
        for batch in BATCHES:
            session, data = load_session(scale=max(4000, BENCH_SCALE // 5))
            next_pre = len(data["prescription"]) + 1
            session.reset_measurements()
            report = session.append(
                "prescription", _new_prescriptions(next_pre, batch)
            )
            counters = session.device.counters()
            per_row = counters.time.total / batch
            per_row_costs.append(per_row)
            rows.append(
                (
                    batch,
                    f"{counters.time.total * 1e3:.1f}",
                    f"{per_row * 1e3:.2f}",
                    counters.flash.page_writes,
                    counters.flash.block_erases,
                    len(report.rebuilt_indexes) + len(report.rebuilt_skts),
                )
            )
        return rows, per_row_costs

    rows, per_row = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "T6: maintenance cost vs append batch size (prescription table)",
        [
            "batch rows", "total (ms)", "per row (ms)",
            "flash writes", "erases", "structures rebuilt",
        ],
        rows,
    )
    # Amortisation: per-row cost falls monotonically with batch size.
    assert all(a > b for a, b in zip(per_row, per_row[1:]))
    # A single-row append still rebuilds whole structures: expensive.
    assert per_row[0] > 50 * per_row[-1]
