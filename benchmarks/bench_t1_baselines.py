"""T1 -- Section 4's claim: last-resort joins and classical join indices
are unacceptable under the device's constraints.

Runs the demo query three ways on identical state: GhostDB (SKT +
climbing indexes, optimizer's plan), binary join indices (stepwise
conversions), and the grace hash join.  Expected shape: GhostDB wins by
a large factor over the hash join, which pays full scans (and, under
RAM pressure, flash-written partitions); join indices sit between.
"""

from benchmarks.conftest import BENCH_SCALE, print_series
from repro.baselines import run_hash_join_query, run_join_index_query
from repro.reference import evaluate_reference, same_rows
from repro.workload.queries import demo_query


def test_t1_baseline_comparison(bench_session, bench_data, benchmark):
    session = bench_session
    sql = demo_query()
    expected = evaluate_reference(
        session.tree, bench_data, session.bind(sql)
    )

    def run_all():
        session.reset_measurements()
        ghost = session.query(sql)
        session.reset_measurements()
        joinindex = run_join_index_query(session, sql)
        session.reset_measurements()
        hashjoin = run_hash_join_query(session, sql)
        return ghost, joinindex, hashjoin

    ghost, joinindex, hashjoin = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    for result in (ghost, joinindex, hashjoin):
        assert same_rows(result.rows, expected)

    def line(name, result):
        m = result.metrics
        return (
            name,
            f"{m.elapsed_seconds * 1e3:.2f}",
            m.flash_page_reads,
            m.flash_page_writes,
            f"{m.ram_high_water}",
        )

    rows = [
        line("GhostDB (SKT + climbing)", ghost),
        line("binary join indices", joinindex),
        line("grace hash join", hashjoin),
    ]
    print_series(
        "T1: the demo query under three execution models",
        ["engine", "sim time (ms)", "flash reads", "flash writes", "ram (B)"],
        rows,
    )
    speedup = (
        hashjoin.metrics.elapsed_seconds / ghost.metrics.elapsed_seconds
    )
    print(f"  GhostDB speedup over hash join: {speedup:.1f}x")
    # The paper's "unacceptable" shape: a decisive factor, driven by
    # scans/writes the indexed plan never performs.  The gap widens with
    # cardinality (hash join scans everything; the indexed plan touches
    # only matches): >5x from 10k prescriptions on (13x at 20k), with a
    # weaker floor at smoke-test scales.
    assert speedup > (5.0 if BENCH_SCALE >= 10_000 else 3.0)
    assert hashjoin.metrics.flash_page_reads > ghost.metrics.flash_page_reads
    assert (
        joinindex.metrics.elapsed_seconds
        >= ghost.metrics.elapsed_seconds * 0.99
    )
