"""T9 (extension) -- optimizer quality: estimated vs measured.

DESIGN.md §5 claims the cost model prices plans "from the same constants
the simulator charges".  This bench quantifies that claim across the
integration query battery: per-candidate estimate/measurement ratios and
the ranking accuracy the plan game depends on.
"""

from benchmarks.conftest import print_series
from repro.optimizer.space import enumerate_strategies
from repro.workload.queries import QUERY_FAMILIES as QUERIES


def test_t9_estimate_accuracy_and_ranking(bench_session, benchmark):
    session = bench_session

    def evaluate():
        per_query = []
        ratios = []
        top_picked = 0
        near_picked = 0
        total = 0
        for name in sorted(QUERIES):
            sql = QUERIES[name]
            bound = session.bind(sql)
            measured = []
            estimated = []
            for strategy in enumerate_strategies(bound):
                session.reset_measurements()
                result = session.query_with_strategy(sql, strategy)
                seconds = result.metrics.elapsed_seconds
                estimate = session.optimizer.cost_model.estimate(
                    result.plan
                ).seconds
                measured.append(seconds)
                estimated.append(estimate)
                if seconds > 1e-4:
                    ratios.append(estimate / seconds)
            best_measured = min(measured)
            chosen = estimated.index(min(estimated))
            total += 1
            if measured[chosen] == best_measured:
                top_picked += 1
            if measured[chosen] <= best_measured * 1.5:
                near_picked += 1
            per_query.append(
                (
                    name,
                    len(measured),
                    f"{min(ratios[-len(measured):] or [1]):.2f}-"
                    f"{max(ratios[-len(measured):] or [1]):.2f}",
                    f"{measured[chosen] / best_measured:.2f}x",
                )
            )
        return per_query, ratios, top_picked, near_picked, total

    per_query, ratios, top, near, total = benchmark.pedantic(
        evaluate, rounds=1, iterations=1
    )
    print_series(
        "T9: optimizer estimate quality per query",
        ["query", "candidates", "est/meas ratio range", "chosen vs best"],
        per_query,
    )
    geometric_mean = 1.0
    for ratio in ratios:
        geometric_mean *= ratio
    geometric_mean **= 1 / max(1, len(ratios))
    print(
        f"  {len(ratios)} candidate plans | est/meas geometric mean "
        f"{geometric_mean:.2f} | optimizer exactly right {top}/{total}, "
        f"within 1.5x of best {near}/{total}"
    )
    # Estimates are centred (no systematic many-fold bias) ...
    assert 0.3 < geometric_mean < 3.0
    # ... and the pick is near-best almost always.
    assert near >= total - 1
