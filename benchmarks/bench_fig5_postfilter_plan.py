"""F5 -- Figure 5: the Post-filtering query execution plan.

Executes the exact QEP of Figure 5 (Index on Vis -> Access SKT -> Store
-> Bloom(Vis.Date) -> Bloom(Med.Type) -> Projections) on the demo query
and reports the per-operator popup statistics the demo GUI shows.
"""

from benchmarks.conftest import print_series
from repro.demo.plans import figure5_postfilter_plan
from repro.reference import evaluate_reference, same_rows
from repro.workload.queries import demo_query


def test_fig5_postfilter_plan(bench_session, bench_data, benchmark):
    session = bench_session
    bound = session.bind(demo_query())
    plan = figure5_postfilter_plan(session.hidden, bound)
    session.optimizer.annotate(plan)

    print("\n=== Figure 5: Post-filtering QEP (as drawn) ===")
    print(plan.render())

    def run():
        session.reset_measurements()
        return session.executor.execute(plan)

    result = benchmark.pedantic(run, rounds=3, iterations=1)

    rows = [
        (
            op.name,
            op.detail[:44],
            op.tuples_out,
            f"{op.self_seconds * 1e3:.3f} ms",
            f"{op.ram_bytes} B",
        )
        for op in result.metrics.operators
    ]
    print_series(
        "Figure 5: per-operator popup statistics",
        ["operator", "detail", "tuples", "time", "local RAM"],
        rows,
    )
    m = result.metrics
    print(
        f"  total {m.elapsed_seconds * 1e3:.2f} ms | ram high water "
        f"{m.ram_high_water} B | flash {m.flash_page_reads} reads / "
        f"{m.flash_page_writes} writes | usb {m.usb_messages} msgs"
    )
    expected = evaluate_reference(session.tree, bench_data, bound)
    assert same_rows(result.rows, expected)
    # The Store materialised the hidden-join output on flash.
    assert m.flash_page_writes > 0
    names = [op.name for op in result.metrics.operators]
    assert names.count("bloom-filter") == 2
    assert "store" in names
