"""T3 -- Bloom filter compactness and false-positive behaviour.

"The two properties of Bloom filters are compactness and a very low
false positive rate, making them well adapted to RAM-constrained
environments."  This bench regenerates the textbook curve (FP rate vs
bits/key), shows the filter's RAM next to the exact ID list it replaces,
and confirms end-to-end that false positives never corrupt results
(projection re-checks eliminate them).
"""

from benchmarks.conftest import print_series
from repro.hardware.device import SmartUsbDevice
from repro.index.bloom import BloomFilter
from repro.optimizer.space import Strategy
from repro.reference import evaluate_reference, same_rows
from repro.workload.queries import query_type_selectivity


def test_t3_fp_rate_vs_bits_per_key(benchmark):
    n = 3_000
    probes = 30_000

    def curve():
        rows = []
        for bits_per_key in (4, 6, 8, 10, 12, 16):
            device = SmartUsbDevice()
            hashes = max(1, round(bits_per_key * 0.693))
            with BloomFilter(
                device, bits=n * bits_per_key, hashes=hashes
            ) as bloom:
                for key in range(n):
                    bloom.insert(key)
                false_hits = sum(
                    bloom.may_contain(k) for k in range(n, n + probes)
                )
            rows.append(
                (
                    bits_per_key,
                    hashes,
                    f"{bloom.ram_bytes}",
                    f"{false_hits / probes:.4f}",
                    f"{bloom.expected_fp_rate():.4f}",
                )
            )
        return rows

    rows = benchmark.pedantic(curve, rounds=1, iterations=1)
    print_series(
        "T3: Bloom false-positive rate vs bits per key (n=3000)",
        ["bits/key", "hashes", "RAM (B)", "measured FP", "theoretical FP"],
        rows,
    )
    measured = [float(r[3]) for r in rows]
    assert all(a >= b for a, b in zip(measured, measured[1:]))
    # ~10 bits/key gives ~1%.
    ten = next(float(r[3]) for r in rows if r[0] == 10)
    assert ten < 0.03
    # Every point tracks the textbook formula within 2x either way (the
    # probe set is fixed, so this is deterministic, not statistical).
    for row in rows:
        observed, theoretical = float(row[3]), float(row[4])
        assert theoretical / 2 <= observed <= theoretical * 2, (
            f"{row[0]} bits/key: measured FP {observed} vs "
            f"theoretical {theoretical}"
        )


def test_t3_compactness_vs_exact_list(bench_session, bench_data, benchmark):
    """The RAM a post-filter needs vs holding the exact ID list."""
    session = bench_session
    n_matching = sum(
        1 for r in bench_data["medicine"] if r[3] == "Antidiabetic"
    )
    from repro.index.bloom import bloom_parameters

    bits, _ = benchmark.pedantic(
        lambda: bloom_parameters(n_matching, 0.01), rounds=3, iterations=1
    )
    exact_bytes = n_matching * 4
    print_series(
        "T3: Bloom filter vs exact ID set (Med.Type = 'Antidiabetic')",
        ["matching ids", "exact list (B)", "bloom @1% (B)"],
        [(n_matching, exact_bytes, bits // 8)],
    )
    # Compactness matters for big sets; sanity: bloom scales at ~1.2 B/key
    assert bits // 8 < n_matching * 2


def test_t3_false_positives_never_corrupt_results(
    bench_session, bench_data, benchmark
):
    """Even a deliberately lossy filter (20% FP target) yields exact
    results: the host-side recheck drops every false positive."""
    session = bench_session
    sql = query_type_selectivity("Statin")
    bound = session.bind(sql)
    expected = evaluate_reference(session.tree, bench_data, bound)
    original = session.executor.config.bloom_fp_target

    def run_lossy():
        session.executor.config.bloom_fp_target = 0.2
        try:
            session.reset_measurements()
            return session.query_with_strategy(sql, Strategy(("post",)))
        finally:
            session.executor.config.bloom_fp_target = original

    result = benchmark.pedantic(run_lossy, rounds=1, iterations=1)
    assert same_rows(result.rows, expected)
    blooms = [
        op for op in result.metrics.operators if op.name == "bloom-filter"
    ]
    project = next(
        op for op in result.metrics.operators if op.name == "project"
    )
    print_series(
        "T3: lossy Bloom (20% FP) still yields exact results",
        ["bloom survivors", "final rows", "exact rows"],
        [(blooms[0].tuples_out, project.tuples_out, len(expected))],
    )
    assert blooms[0].tuples_out >= project.tuples_out
