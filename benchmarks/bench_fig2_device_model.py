"""F2 -- Figure 2: the smart USB device's hardware constraints.

Microbenchmarks of the simulated device confirming the paper's numbers:
flash writes 3-10x slower than reads (partial reads cheaper than full),
USB 2.0 full speed at 12 Mb/s, and tens-of-KB RAM that genuinely rejects
larger working sets.
"""

import pytest

from benchmarks.conftest import print_series
from repro.hardware.device import SmartUsbDevice
from repro.hardware.profiles import DEMO_DEVICE, HARSH_FLASH_DEVICE
from repro.hardware.ram import RamExhaustedError
from repro.hardware.usb import Direction


def test_fig2_flash_asymmetry(benchmark):
    device = SmartUsbDevice(DEMO_DEVICE)

    def one_cycle():
        page = device.ftl.allocate()
        device.ftl.write(page, b"x" * DEMO_DEVICE.page_size)
        device.ftl.read(page)
        device.ftl.read(page, 0, 8)
        device.ftl.free(page)

    benchmark.pedantic(one_cycle, rounds=5, iterations=20)

    rows = []
    for profile in (DEMO_DEVICE, HARSH_FLASH_DEVICE):
        rows.append(
            (
                profile.name,
                f"{profile.flash_read_full_s * 1e6:.0f} us",
                f"{profile.flash_read_partial_s * 1e6:.0f} us",
                f"{profile.flash_write_s * 1e6:.0f} us",
                f"{profile.write_read_ratio:.1f}x",
                f"{profile.flash_erase_s * 1e3:.1f} ms",
            )
        )
    print_series(
        "Figure 2: flash timing model (write/read asymmetry 3-10x)",
        ["profile", "read full", "read word", "write", "w/r ratio", "erase"],
        rows,
    )
    assert 3.0 <= DEMO_DEVICE.write_read_ratio <= 10.0
    assert HARSH_FLASH_DEVICE.write_read_ratio == pytest.approx(10.0)
    # The *measured* asymmetry (what the clock actually charged for a
    # page write vs a full-page read) sits in the paper's 3-10x band too
    # -- the profile constant could lie; the simulator must not.
    fresh = SmartUsbDevice(DEMO_DEVICE)
    page = fresh.ftl.allocate()
    before = fresh.clock.breakdown()
    fresh.ftl.write(page, b"x" * DEMO_DEVICE.page_size)
    mid = fresh.clock.breakdown()
    fresh.ftl.read(page)
    after = fresh.clock.breakdown()
    write_s = mid.flash_write - before.flash_write
    read_s = after.flash_read - mid.flash_read
    assert read_s > 0
    assert 3.0 <= write_s / read_s <= 10.0


def test_fig2_usb_throughput(benchmark):
    device = SmartUsbDevice(DEMO_DEVICE)
    payload = b"x" * 150_000  # 1.2 Mb

    def transfer():
        device.usb.transfer(Direction.TO_DEVICE, "ids", payload)

    benchmark.pedantic(transfer, rounds=3, iterations=1)
    elapsed = device.clock.breakdown().usb / 3
    effective_mbps = len(payload) * 8 / elapsed / 1e6
    print_series(
        "Figure 2: USB 2.0 full-speed link",
        ["payload", "simulated time", "effective throughput"],
        [(f"{len(payload)} B", f"{elapsed * 1e3:.1f} ms",
          f"{effective_mbps:.1f} Mb/s")],
    )
    assert 10.0 <= effective_mbps <= 12.0


def test_fig2_ram_is_tens_of_kb(benchmark):
    device = SmartUsbDevice(DEMO_DEVICE)
    benchmark.pedantic(lambda: device.ram.allocate(1024, "probe").release(),
                       rounds=3, iterations=1)
    assert device.ram.capacity == 64 * 1024
    with pytest.raises(RamExhaustedError):
        device.ram.allocate(device.ram.capacity + 1, "too big")
    # A classic hash table for the demo dataset would not fit.
    hash_table_bytes = 20_000 * 12
    with pytest.raises(RamExhaustedError):
        device.ram.allocate(hash_table_bytes, "hash join table")
