"""T8 (extension) -- device-side aggregation.

Aggregates over hidden columns are the workload the paper's motivation
implies (hospital statistics over sensitive fields).  Two measurements:

* the **privacy dividend**: computing on-device means only the final
  group rows' worth of information exists anywhere -- versus the bytes a
  ship-the-columns design would expose on the bus;
* the **hash -> spill crossover**: group state is RAM-budgeted, so the
  aggregation strategy flips to an external sort when groups outgrow the
  chip, with a visible cost step.
"""

from benchmarks.conftest import BENCH_SCALE, load_session, print_series
from repro.hardware.profiles import DEMO_DEVICE, TINY_DEVICE
from repro.privacy.leakcheck import LeakChecker

STUDY_SQL = """
    SELECT Vis.Purpose, count(*), avg(Pre.Quantity)
    FROM Prescription Pre, Visit Vis
    WHERE Vis.VisID = Pre.VisID
    GROUP BY Vis.Purpose
"""

MANY_GROUPS_SQL = """
    SELECT Pre.WhenWritten, count(*)
    FROM Prescription Pre
    GROUP BY Pre.WhenWritten
"""


def test_t8_privacy_dividend(bench_session, bench_data, benchmark):
    session = bench_session
    checker = LeakChecker(session.schema, bench_data)

    def run():
        session.reset_measurements()
        return session.query(STUDY_SQL)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    report = checker.check(session.usb_log)
    boundary_bytes = sum(r.size for r in session.usb_log)
    # What a ship-the-columns design would move: one (purpose, quantity)
    # pair per joined row -- and the purposes are hidden.
    shipped_bytes = len(bench_data["prescription"]) * (100 + 8)
    print_series(
        "T8: on-device aggregation vs shipping columns",
        ["groups", "boundary bytes (GhostDB)", "bytes a shipper would move",
         "leak check"],
        [(
            result.row_count,
            boundary_bytes,
            shipped_bytes,
            "CLEAN" if report.ok else "LEAK",
        )],
    )
    assert report.ok
    assert boundary_bytes < shipped_bytes / 100


def test_t8_hash_vs_spill_crossover(benchmark):
    """The same many-group query on a roomy vs a starved chip."""

    def run_both():
        results = {}
        for profile in (DEMO_DEVICE, TINY_DEVICE):
            session, _ = load_session(
                scale=max(4000, BENCH_SCALE // 5), profile=profile
            )
            session.reset_measurements()
            result = session.query(MANY_GROUPS_SQL)
            results[profile.name] = result
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = []
    for name, result in results.items():
        m = result.metrics
        rows.append(
            (
                name,
                result.row_count,
                f"{m.elapsed_seconds * 1e3:.2f}",
                m.flash_page_writes,
                m.ram_high_water,
            )
        )
    print_series(
        "T8: grouping strategy under RAM pressure (many groups)",
        ["device", "groups", "sim time (ms)", "spill writes", "ram peak"],
        rows,
    )
    roomy = results[DEMO_DEVICE.name]
    starved = results[TINY_DEVICE.name]
    assert sorted(roomy.rows) == sorted(starved.rows)
    # The starved chip spilled (flash writes) and paid for it in time.
    assert starved.metrics.flash_page_writes > roomy.metrics.flash_page_writes
    assert (
        starved.metrics.elapsed_seconds > roomy.metrics.elapsed_seconds
    )
    assert starved.metrics.ram_high_water <= TINY_DEVICE.ram_bytes
