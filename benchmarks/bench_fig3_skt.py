"""F3 -- Figure 3: Subtree Key Tables.

Reports the two SKTs' shapes and flash cost ("this benefit ... comes at
an extra cost in terms of Flash storage"), and measures the SKT's payoff:
associating a prescription with its patient costs one row fetch instead
of a navigational join chain.
"""

from benchmarks.conftest import print_series


def test_fig3_skt_inventory(bench_session, bench_data, benchmark):
    db = bench_session.hidden
    benchmark.pedantic(db.storage_report, rounds=3, iterations=1)
    rows = []
    for root, skt in sorted(db.skts.items()):
        rows.append(
            (
                f"SKT_{root}",
                ", ".join(skt.tables),
                skt.count,
                f"{skt.flash_bytes / 1024:.0f} KiB",
            )
        )
    print_series(
        "Figure 3: Subtree Key Tables",
        ["SKT", "key columns (subtree order)", "rows", "flash"],
        rows,
    )
    report = db.storage_report()
    overhead = report.index_total / report.base_total
    print(
        f"  base data {report.base_total / 1024:.0f} KiB, "
        f"indexes+SKTs {report.index_total / 1024:.0f} KiB "
        f"({overhead:.1f}x extra flash -- the paper's storage price)"
    )
    assert set(db.skts) == {"prescription", "visit"}
    assert db.skts["prescription"].tables[0] == "prescription"
    # The storage price is real but bounded: the paper accepts paying
    # extra flash for SKTs + climbing indexes, not an order of magnitude.
    assert 0.5 <= overhead <= 3.0


def test_fig3_skt_direct_association(bench_session, benchmark):
    """One SKT row fetch resolves prescription -> patient directly."""
    session = bench_session
    skt = session.hidden.skts["prescription"]
    pat_pos = skt.column_index("patient")

    def lookup_via_skt():
        session.reset_measurements()
        with skt.reader("bench") as reader:
            row = skt.decode(reader.record(12_345 % skt.count))
        return row[pat_pos], session.device.clock.now

    patient, simulated = benchmark.pedantic(
        lookup_via_skt, rounds=5, iterations=1
    )
    print_series(
        "Figure 3: direct prescription->patient association via SKT",
        ["fetched patient id", "simulated time"],
        [(patient, f"{simulated * 1e6:.0f} us")],
    )
    assert patient > 0
    # A single partial read: far below one full-page read + joins.
    assert simulated <= 3 * session.profile.flash_read_partial_s
