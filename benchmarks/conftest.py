"""Shared benchmark fixtures.

Benchmarks report two kinds of numbers:

* **simulated device time** -- the metric the paper's figures plot; it is
  deterministic, so benches print it as the reproduced series;
* **host wall time** via pytest-benchmark -- how fast the simulator
  itself runs, useful for regression tracking.

``GHOSTDB_BENCH_SCALE`` (default 20000 prescriptions) scales the dataset;
set it to 1000000 to reproduce the paper's headline cardinality (slow on
a laptop, identical in shape).

``GHOSTDB_TRACE=<dir>`` exports each bench session's span tree as Chrome
trace-event JSON into ``<dir>`` at the end of the run -- open the files
in Perfetto or ``chrome://tracing`` to see where simulated time went.
"""

from __future__ import annotations

import os
import re

import pytest

from repro.core.ghostdb import GhostDB
from repro.workload.datagen import DatasetConfig, MedicalDataGenerator
from repro.workload.queries import DEMO_SCHEMA_DDL

BENCH_SCALE = int(os.environ.get("GHOSTDB_BENCH_SCALE", "20000"))
TRACE_DIR = os.environ.get("GHOSTDB_TRACE")

_trace_sessions: list[tuple[str, GhostDB]] = []


def _watch_for_trace(name: str, db: GhostDB) -> None:
    """Remember a session so its trace can be exported at exit."""
    if TRACE_DIR:
        _trace_sessions.append((name, db))


def pytest_sessionfinish(session, exitstatus):
    if not TRACE_DIR:
        return
    os.makedirs(TRACE_DIR, exist_ok=True)
    for i, (name, db) in enumerate(_trace_sessions):
        slug = re.sub(r"[^A-Za-z0-9_.-]+", "_", name)
        path = os.path.join(TRACE_DIR, f"{i:02d}-{slug}.trace.json")
        db.export_trace(path)
        print(f"\n[ghostdb] wrote trace {path}")


def load_session(scale: int = BENCH_SCALE, profile=None) -> tuple:
    """A loaded session plus its raw dataset."""
    from repro.hardware.profiles import DEMO_DEVICE

    db = GhostDB(profile=profile or DEMO_DEVICE)
    for ddl in DEMO_SCHEMA_DDL:
        db.execute(ddl)
    data = MedicalDataGenerator(
        DatasetConfig(n_prescriptions=scale)
    ).generate()
    db.load(data)
    _watch_for_trace("load_session", db)
    return db, data


@pytest.fixture(scope="session")
def bench_data():
    return MedicalDataGenerator(
        DatasetConfig(n_prescriptions=BENCH_SCALE)
    ).generate()


@pytest.fixture(scope="session")
def bench_session(bench_data):
    db = GhostDB()
    for ddl in DEMO_SCHEMA_DDL:
        db.execute(ddl)
    db.load(bench_data)
    _watch_for_trace("bench_session", db)
    return db


def print_series(title: str, headers: list[str], rows: list[tuple]) -> None:
    """Print one reproduced figure/table as an aligned text table."""
    print(f"\n=== {title} (scale={BENCH_SCALE}) ===")
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    print("  " + "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print(
            "  " + "  ".join(str(v).ljust(w) for v, w in zip(row, widths))
        )
