"""T7 (extension) -- FTL garbage collection and wear under churn.

"Writes in place are precluded" (Section 3): every logical overwrite
strands a stale physical page that the FTL must eventually reclaim.
This ablation drives a fixed overwrite workload against a small flash
and sweeps the FTL's spare-block reserve, reporting write amplification
(GC relocations per logical write), erase counts and wear spread -- the
firmware trade-off hiding under GhostDB's storage layer.
"""

from benchmarks.conftest import print_series
from repro.hardware.clock import SimClock
from repro.hardware.flash import NandFlash
from repro.hardware.ftl import FlashTranslationLayer
from repro.hardware.profiles import DEMO_DEVICE

SPARES = (1, 2, 4, 8)
NUM_BLOCKS = 16
LIVE_PAGES = 300  # ~30% of a 16-block device stays live
OVERWRITES = 6_000


def churn(spare_blocks: int):
    profile = DEMO_DEVICE.with_overrides(num_blocks=NUM_BLOCKS)
    flash = NandFlash(profile=profile, clock=SimClock())
    ftl = FlashTranslationLayer(flash=flash, spare_blocks=spare_blocks)
    pages = [ftl.allocate() for _ in range(LIVE_PAGES)]
    for page in pages:
        ftl.write(page, b"seed")
    # Interleave cold, write-once pages with the hot churn so GC victims
    # contain live data and must relocate it (the realistic mix).
    cold_budget = NUM_BLOCKS * profile.pages_per_block // 4
    cold_written = 0
    for i in range(OVERWRITES):
        ftl.write(pages[i % LIVE_PAGES], f"v{i}".encode())
        if i % 17 == 0 and cold_written < cold_budget:
            cold = ftl.allocate()
            ftl.write(cold, f"cold {i}".encode())
            cold_written += 1
    return flash, ftl


def test_t7_gc_and_wear_vs_spare_blocks(benchmark):
    def sweep():
        rows = []
        amplifications = []
        for spare in SPARES:
            flash, ftl = churn(spare)
            logical = ftl.stats.logical_writes
            physical = flash.stats.page_writes
            amplification = physical / logical
            amplifications.append(amplification)
            wear = [
                flash.erase_count(b) for b in range(NUM_BLOCKS)
            ]
            active = [w for w in wear if w]
            spread = (max(active) / max(1, min(active))) if active else 0
            rows.append(
                (
                    spare,
                    ftl.stats.gc_runs,
                    ftl.stats.gc_relocations,
                    f"{amplification:.3f}",
                    flash.stats.block_erases,
                    f"{spread:.2f}",
                )
            )
        return rows, amplifications

    rows, amplifications = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "T7: FTL behaviour under overwrite churn (16-block flash, 30% live)",
        [
            "spare blocks", "gc runs", "relocations",
            "write amplification", "erases", "wear spread (max/min)",
        ],
        rows,
    )
    # Live cold pages force relocations: amplification strictly above 1.
    assert all(1.0 < a < 4.0 for a in amplifications)
    assert all(row[2] > 0 for row in rows)  # relocations happened
    # Bigger reserves trigger GC earlier and move more live data: write
    # amplification grows with the spare count on this workload.
    assert amplifications[-1] > amplifications[0]
    # Round-robin block reuse keeps wear within a small factor.
    for row in rows:
        assert float(row[5]) <= 8.0
