"""T4 -- the 1M-tuple scale claim (Section 5).

The demo's root table holds one million prescriptions.  This bench sweeps
the root cardinality and reports the demo query's cost per scale for
GhostDB and the hash-join baseline.  Expected shape: GhostDB's cost grows
with the *result* (selection sizes), the baseline's with the *data*
(scans), so the gap widens with scale -- the property that makes 1M rows
tractable on the device at all.

The sweep tops out at a laptop-friendly scale by default; set
GHOSTDB_BENCH_SCALE=1000000 to reproduce the paper's headline number.
"""

from benchmarks.conftest import BENCH_SCALE, load_session, print_series
from repro.baselines import run_hash_join_query
from repro.workload.queries import demo_query

SCALES = sorted({BENCH_SCALE // 16, BENCH_SCALE // 4, BENCH_SCALE})


def test_t4_scaling_sweep(benchmark):
    sql = demo_query()

    def sweep():
        rows = []
        gaps = []
        for scale in SCALES:
            session, _ = load_session(scale=scale)
            session.reset_measurements()
            ghost = session.query(sql)
            session.reset_measurements()
            baseline = run_hash_join_query(session, sql)
            assert sorted(ghost.rows) == sorted(baseline.rows)
            gap = (
                baseline.metrics.elapsed_seconds
                / ghost.metrics.elapsed_seconds
            )
            gaps.append(gap)
            rows.append(
                (
                    scale,
                    ghost.row_count,
                    f"{ghost.metrics.elapsed_seconds * 1e3:.2f}",
                    f"{baseline.metrics.elapsed_seconds * 1e3:.2f}",
                    f"{gap:.1f}x",
                )
            )
        return rows, gaps

    rows, gaps = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "T4: demo query vs root-table cardinality",
        ["prescriptions", "rows", "ghostdb (ms)", "hash join (ms)", "gap"],
        rows,
    )
    # The gap must widen with scale (selection-bound vs scan-bound).
    assert gaps[-1] > gaps[0]
