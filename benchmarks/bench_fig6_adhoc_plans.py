"""F6 -- Figure 6: building and evaluating ad-hoc query plans.

The figure's bar chart compares the execution times of two ad-hoc plans
P1 and P2 for the demo query.  This bench regenerates those bars (in
simulated device seconds), plus the RAM comparison the demo GUI shows
alongside, and cross-checks the optimizer's estimates against them.
"""

from benchmarks.conftest import print_series
from repro.demo.plans import named_demo_plans
from repro.reference import evaluate_reference, same_rows
from repro.workload.queries import demo_query


def test_fig6_p1_vs_p2(bench_session, bench_data, benchmark):
    session = bench_session
    bound = session.bind(demo_query())
    plans = named_demo_plans(session.hidden, bound)
    for plan in plans.values():
        session.optimizer.annotate(plan)

    def run_both():
        results = {}
        for name, plan in plans.items():
            session.reset_measurements()
            results[name] = session.executor.execute(plan)
        return results

    results = benchmark.pedantic(run_both, rounds=3, iterations=1)

    expected = evaluate_reference(session.tree, bench_data, bound)
    rows = []
    for name, result in results.items():
        estimate = session.optimizer.cost_model.estimate(result.plan)
        rows.append(
            (
                name,
                f"{result.metrics.elapsed_seconds:.4f} s",
                f"{estimate.seconds:.4f} s",
                f"{result.metrics.ram_high_water} B",
                result.row_count,
            )
        )
        assert same_rows(result.rows, expected)
    print_series(
        "Figure 6: execution time of ad-hoc plans P1 and P2",
        ["plan", "measured (sim)", "estimated", "ram peak", "rows"],
        rows,
    )
    p1 = results["P1 (pre-filtering)"]
    p2 = results["P2 (post-filtering, Fig. 5)"]
    # Shape checks: both in the same order of magnitude (the figure's
    # bars are comparable); P2 trades extra time (Store) for less RAM.
    ratio = (
        p2.metrics.elapsed_seconds / p1.metrics.elapsed_seconds
    )
    assert 0.2 < ratio < 5.0
    assert p2.metrics.ram_high_water < p1.metrics.ram_high_water
