"""D2/T5 -- demo phase 2: Pre- vs Post-filtering across selectivities.

The demo GUI "allows the comparison of the relative performance of
Pre-filtering and Post-filtering strategies in terms of RAM consumption
and processing time".  This bench sweeps the visible Vis.Date predicate's
selectivity against a fixed selective hidden anchor on Prescription (so
Cross-filtering cannot rescue the PRE side -- the tables differ) and
reports both strategies per point.

Expected shape (Section 4): PRE wins when the visible predicate is
selective; "if the selectivity of a visible selection is low, traversing
the climbing indexes may be a poor choice" -- POST overtakes as the date
range widens, because converting a long VisID list costs a directory
probe per ID plus multi-pass merges, while the Bloom filter stays one
pass over the hidden-join output.
"""

import datetime

from benchmarks.conftest import print_series
from repro.optimizer.space import Strategy
from repro.reference import evaluate_reference, same_rows

#: (label, date cutoff) by rising fraction of qualifying visits.
SWEEP = [
    ("~1%", datetime.date(2007, 6, 20)),
    ("~10%", datetime.date(2007, 4, 1)),
    ("~30%", datetime.date(2006, 10, 1)),
    ("~55%", datetime.date(2006, 3, 1)),
    ("~80%", datetime.date(2005, 7, 1)),
]


def sweep_sql(cutoff: datetime.date) -> str:
    return f"""
        SELECT Pre.Quantity FROM Prescription Pre, Visit Vis
        WHERE Vis.Date > DATE '{cutoff.isoformat()}'
        AND Pre.Quantity = 7
        AND Pre.WhenWritten > DATE '2007-04-01'
        AND Vis.VisID = Pre.VisID
    """


def test_d2_pre_vs_post_selectivity_sweep(bench_session, bench_data, benchmark):
    session = bench_session

    def full_sweep():
        rows = []
        series = []
        for label, cutoff in SWEEP:
            sql = sweep_sql(cutoff)
            bound = session.bind(sql)
            expected = evaluate_reference(session.tree, bench_data, bound)
            session.reset_measurements()
            pre = session.query_with_strategy(sql, Strategy(("pre",)))
            session.reset_measurements()
            post = session.query_with_strategy(sql, Strategy(("post",)))
            assert same_rows(pre.rows, expected)
            assert same_rows(post.rows, expected)
            rows.append(
                (
                    label,
                    f"{pre.metrics.elapsed_seconds * 1e3:.2f}",
                    f"{post.metrics.elapsed_seconds * 1e3:.2f}",
                    pre.metrics.flash_page_writes,
                    post.metrics.flash_page_writes,
                    pre.row_count,
                )
            )
            series.append(
                (
                    pre.metrics.elapsed_seconds,
                    post.metrics.elapsed_seconds,
                )
            )
        return rows, series

    rows, series = benchmark.pedantic(full_sweep, rounds=1, iterations=1)
    print_series(
        "Demo phase 2: Pre vs Post filtering across Vis.Date selectivity",
        [
            "date matches", "pre (ms)", "post (ms)",
            "pre spills (pages)", "post spills", "rows",
        ],
        rows,
    )
    # The crossover: PRE wins at the selective end, POST at the other.
    assert series[0][0] < series[0][1], "PRE should win at ~1%"
    assert series[-1][1] < series[-1][0], "POST should win at ~80%"
    # PRE's cost climbs steeply with the list size; POST stays flat-ish.
    pre_growth = series[-1][0] / series[0][0]
    post_growth = series[-1][1] / series[0][1]
    assert pre_growth > 3 * post_growth


def test_t5_cross_filtering(bench_session, bench_data, benchmark):
    """Cross-filtering: when the unselective visible predicate *shares*
    its table with a selective hidden one, intersecting at that table
    before one conversion keeps PRE competitive -- the combination plain
    PRE loses (see the sweep above)."""
    session = bench_session
    cutoff = datetime.date(2005, 7, 1)  # ~80% of visits
    sql = f"""
        SELECT Pre.Quantity, Vis.Date
        FROM Prescription Pre, Visit Vis
        WHERE Vis.Date > DATE '{cutoff.isoformat()}'
        AND Vis.Purpose = 'Sclerosis'
        AND Vis.VisID = Pre.VisID
    """
    bound = session.bind(sql)
    expected = evaluate_reference(session.tree, bench_data, bound)

    def run_all():
        session.reset_measurements()
        cross = session.query_with_strategy(sql, Strategy(("pre",)))
        session.reset_measurements()
        post = session.query_with_strategy(sql, Strategy(("post",)))
        return cross, post

    cross, post = benchmark.pedantic(run_all, rounds=3, iterations=1)
    assert same_rows(cross.rows, expected)
    assert same_rows(post.rows, expected)
    print_series(
        "T5: Cross-filtering (hidden+visible on Visit) vs Post-filtering",
        ["strategy", "simulated ms", "ram peak"],
        [
            ("cross-pre (intersect at Visit, convert once)",
             f"{cross.metrics.elapsed_seconds * 1e3:.2f}",
             cross.metrics.ram_high_water),
            ("post (Bloom on the SKT output)",
             f"{post.metrics.elapsed_seconds * 1e3:.2f}",
             post.metrics.ram_high_water),
        ],
    )
    # With cross-filtering the same ~80% visible predicate that sank
    # plain PRE stays competitive with POST.
    assert (
        cross.metrics.elapsed_seconds
        < 2.0 * post.metrics.elapsed_seconds
    )
