"""F1/D1 -- Figure 1 and demo phase 1: the security trace.

Reproduces the "checking security" view: run the demo query, report what
crosses each link of the architecture, and verify the leak checker's
verdict.  The paper's claim: the spy sees only the query posed and the
visible data accessed.
"""

from benchmarks.conftest import print_series
from repro.privacy.leakcheck import LeakChecker
from repro.privacy.spy import SpyView
from repro.workload.queries import demo_query


def test_fig1_security_trace(bench_session, bench_data, benchmark):
    session = bench_session
    checker = LeakChecker(session.schema, bench_data)

    def run():
        session.reset_measurements()
        session.query(demo_query())
        return session.usb_log

    records = benchmark.pedantic(run, rounds=3, iterations=1)

    spy = SpyView(records)
    rows = [
        (s.direction, s.kind, s.messages, s.bytes) for s in spy.summary()
    ]
    print_series(
        "Figure 1 / Demo phase 1: what the spy observes on the USB link",
        ["direction", "kind", "messages", "bytes"],
        rows,
    )
    report = checker.check(records)
    print(f"  leak checker: {report.summary().splitlines()[0]}")
    print(f"  readable requests seen by the spy: {len(spy.requests())}")
    assert report.ok
    # The paper's contract, quantitatively: outbound = requests only.
    outbound_kinds = {
        r.kind for r in records if r.direction.value == "device->host"
    }
    assert outbound_kinds <= {"request", "fetch_ids"}
