"""F4 -- Figure 4: climbing indexes.

The figure shows three climbing indexes (Doc.Country, Vis.Purpose,
Pre.Quantity) whose entries carry ID lists for every level up to the
root.  The measurable property: a selection on a deep table reaches root
IDs in ONE index traversal, where binary join indices pay a conversion
merge per level.  (Doc.Country is visible in the demo schema, so the
deep *hidden* representative is Patient.BodyMassIndex -- same two-edge
path to the root.)
"""

from benchmarks.conftest import print_series
from repro.baselines import run_join_index_query

DEEP_SQL = """
    SELECT Pre.Quantity FROM Prescription Pre, Visit Vis, Patient Pat
    WHERE Pat.BodyMassIndex > 32.0
    AND Pre.VisID = Vis.VisID
    AND Vis.PatID = Pat.PatID
"""


def test_fig4_climbing_vs_stepwise(bench_session, benchmark):
    session = bench_session

    def climbing():
        session.reset_measurements()
        return session.query(DEEP_SQL)

    result = benchmark.pedantic(climbing, rounds=3, iterations=1)

    session.reset_measurements()
    stepwise = run_join_index_query(session, DEEP_SQL)

    rows = [
        (
            "climbing index (1 traversal)",
            f"{result.metrics.elapsed_seconds * 1e3:.2f} ms",
            result.metrics.flash_page_reads,
            result.row_count,
        ),
        (
            "binary join indices (per-level)",
            f"{stepwise.metrics.elapsed_seconds * 1e3:.2f} ms",
            stepwise.metrics.flash_page_reads,
            stepwise.row_count,
        ),
    ]
    print_series(
        "Figure 4: deep hidden selection (Patient -> Visit -> Prescription)",
        ["strategy", "simulated time", "flash reads", "rows"],
        rows,
    )
    assert sorted(result.rows) == sorted(stepwise.rows)
    assert (
        result.metrics.elapsed_seconds < stepwise.metrics.elapsed_seconds
    )


def test_fig4_index_levels(bench_session, benchmark):
    db = bench_session.hidden
    benchmark.pedantic(lambda: list(db.climbing), rounds=3, iterations=1)
    rows = []
    for (table, column), index in sorted(db.climbing.items()):
        for li, stats in enumerate(index.level_stats):
            rows.append(
                (
                    f"{table}.{column}",
                    li,
                    stats.table,
                    stats.total_ids,
                )
            )
    print_series(
        "Figure 4: climbing index levels (value -> IDs per level)",
        ["index", "level", "table", "total posted ids"],
        rows,
    )
    purpose = db.climbing[("visit", "purpose")]
    assert purpose.levels == ["visit", "prescription"]
    bmi = db.climbing[("patient", "bodymassindex")]
    assert bmi.levels == ["patient", "visit", "prescription"]


def test_fig4_single_traversal_reaches_root(bench_session, bench_data, benchmark):
    """The entry for a purpose value directly yields PreIDs."""
    session = bench_session
    index = session.hidden.climbing[("visit", "purpose")]

    def traverse():
        session.reset_measurements()
        factory = index.stream_eq("Sclerosis", "prescription")
        iterator, closer = factory()
        ids = list(iterator)
        closer()
        return ids, session.device.clock.now

    ids, simulated = benchmark.pedantic(traverse, rounds=3, iterations=1)
    vis = {r[0] for r in bench_data["visit"] if r[2] == "Sclerosis"}
    expected = sorted(
        r[0] for r in bench_data["prescription"] if r[5] in vis
    )
    print_series(
        "Figure 4: one traversal of the Vis.Purpose index",
        ["value", "root ids", "simulated time"],
        [("Sclerosis", len(ids), f"{simulated * 1e3:.3f} ms")],
    )
    assert ids == expected
