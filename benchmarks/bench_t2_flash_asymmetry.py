"""T2 -- Section 3: the flash write/read cost ratio drives the design.

Runs a spill-heavy conversion (unselective visible predicate, plain PRE)
and a write-free Bloom plan (POST) on devices with 3x and 10x write/read
ratios.  Expected shape: the PRE plan's cost grows with the ratio (its
spills are writes) while the POST plan barely moves -- quantifying why a
write-averse device wants Post-filtering and sorted streaming.

Also reproduces the envisioned USB high-speed platform as an ablation:
a 480 Mb/s link shrinks the visible-transfer term, shifting the
pre/post crossover.
"""

import datetime

from benchmarks.conftest import BENCH_SCALE, load_session, print_series
from repro.hardware.profiles import (
    DEMO_DEVICE,
    HARSH_FLASH_DEVICE,
    HIGH_SPEED_DEVICE,
)
from repro.optimizer.space import Strategy

#: An ~80%-selective visible date with a selective hidden anchor: the
#: plain-PRE plan converts a long VisID list and spills heavily (see the
#: D2 sweep), which is exactly the write-bound behaviour T2 probes.
SQL = """
    SELECT Pre.Quantity FROM Prescription Pre, Visit Vis
    WHERE Vis.Date > DATE '2005-07-01'
    AND Pre.Quantity = 7
    AND Pre.WhenWritten > DATE '2007-04-01'
    AND Vis.VisID = Pre.VisID
"""


def _measure(profile):
    session, _data = load_session(scale=max(4000, BENCH_SCALE // 5),
                                  profile=profile)
    session.reset_measurements()
    pre = session.query_with_strategy(SQL, Strategy(("pre",)))
    session.reset_measurements()
    post = session.query_with_strategy(SQL, Strategy(("post",)))
    return pre, post


def test_t2_write_cost_sensitivity(benchmark):
    results = benchmark.pedantic(
        lambda: {p.name: _measure(p) for p in (DEMO_DEVICE, HARSH_FLASH_DEVICE)},
        rounds=1, iterations=1,
    )
    rows = []
    for name, (pre, post) in results.items():
        rows.append(
            (
                name,
                f"{pre.metrics.elapsed_seconds * 1e3:.2f}",
                pre.metrics.flash_page_writes,
                f"{post.metrics.elapsed_seconds * 1e3:.2f}",
                post.metrics.flash_page_writes,
            )
        )
    print_series(
        "T2: plan cost vs flash write/read ratio (3x vs 10x)",
        ["device", "pre (ms)", "pre writes", "post (ms)", "post writes"],
        rows,
    )
    demo_pre, demo_post = results[DEMO_DEVICE.name]
    harsh_pre, harsh_post = results[HARSH_FLASH_DEVICE.name]
    # PRE spills the long conversion; POST writes far less (its only
    # spill comes from the hidden range predicate's union).
    assert demo_pre.metrics.flash_page_writes > 0
    assert (
        demo_pre.metrics.flash_page_writes
        > 3 * demo_post.metrics.flash_page_writes
    )
    pre_growth = (
        harsh_pre.metrics.elapsed_seconds / demo_pre.metrics.elapsed_seconds
    )
    post_growth = (
        harsh_post.metrics.elapsed_seconds
        / demo_post.metrics.elapsed_seconds
    )
    # The write-bound plan feels the 10x ratio much more.
    assert pre_growth > post_growth
    assert pre_growth > 1.1


def test_t2_high_speed_usb_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: {p.name: _measure(p) for p in (DEMO_DEVICE, HIGH_SPEED_DEVICE)},
        rounds=1, iterations=1,
    )
    rows = []
    for name, (pre, post) in results.items():
        rows.append(
            (
                name,
                f"{pre.metrics.time.usb * 1e3:.2f}",
                f"{post.metrics.time.usb * 1e3:.2f}",
                f"{post.metrics.elapsed_seconds * 1e3:.2f}",
            )
        )
    print_series(
        "T2 ablation: the envisioned 480 Mb/s platform",
        ["device", "pre usb (ms)", "post usb (ms)", "post total (ms)"],
        rows,
    )
    demo = results[DEMO_DEVICE.name][1].metrics.time.usb
    fast = results[HIGH_SPEED_DEVICE.name][1].metrics.time.usb
    assert fast < demo
