"""Cost model: pricing plans with the simulator's own constants.

Every formula here mirrors what the corresponding physical operator
actually charges -- same flash timings, same USB framing, same CPU cycle
table -- so the optimizer's ranking can be validated against measured
executions (and the benchmarks do exactly that).  Cardinalities come from
the classical statistics of :mod:`repro.catalog.statistics` under the
usual independence assumptions.

Costs decompose into *per-batch* and *per-tuple* terms.  Per-batch terms
price fixed overheads paid once per transfer unit -- USB message setup
per ``id_batch`` IDs, one fetch round trip per ``fetch_batch`` rows --
while per-tuple terms scale with cardinality (payload bytes, CPU cycles,
partial flash reads).  The executor's host-side batch window
(``ExecConfig.exec_batch``) deliberately has *no* term here: it groups
Python-level pulls on the PC and never changes what the simulated device
charges, so pricing it would skew plan ranking with host noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.engine import plan as lp
from repro.engine.database import HiddenDatabase
from repro.hardware.chip import CYCLES
from repro.hardware.profiles import HardwareProfile
from repro.index.bloom import bloom_parameters
from repro.index.climbing import DIRECTORY_PROBE_READS
from repro.sql.binder import EQ, IN, NEQ, Predicate
from repro.storage.intlist import ID_WIDTH
from repro.visible.site import VisibleSite


class StatsProvider:
    """Unified selectivity/cardinality access over both sides.

    Hidden-column statistics live on the device; visible-column
    statistics are computed by the PC and shared with the device's
    optimizer at plug-in time (they describe public data, so sharing
    them reveals nothing).
    """

    def __init__(self, db: HiddenDatabase, site: VisibleSite):
        self.db = db
        self.site = site

    def row_count(self, table: str) -> int:
        return self.db.row_count(table)

    def selectivity(self, predicate: Predicate) -> float:
        stats = (
            self.db.table_stats(predicate.table)
            if predicate.hidden
            else self.site.statistics(predicate.table)
        )
        column = stats.column(predicate.column)
        if predicate.kind == EQ:
            return column.selectivity_eq(predicate.value)
        if predicate.kind == NEQ:
            return max(0.0, 1.0 - column.selectivity_eq(predicate.value))
        if predicate.kind == IN:
            return min(
                1.0,
                sum(
                    column.selectivity_eq(value)
                    for value in predicate.values
                ),
            )
        return column.selectivity_range(
            predicate.low,
            predicate.high,
            include_low=predicate.low_inclusive,
            include_high=predicate.high_inclusive,
        )

    def matching_rows(self, predicate: Predicate) -> float:
        return self.selectivity(predicate) * self.row_count(predicate.table)

    def distinct_values(self, predicate: Predicate) -> int:
        stats = (
            self.db.table_stats(predicate.table)
            if predicate.hidden
            else self.site.statistics(predicate.table)
        )
        return max(1, stats.column(predicate.column).n_distinct)


@dataclass
class CostEstimate:
    """Estimated cost and cardinality of a (sub)plan."""

    flash_read_s: float = 0.0
    flash_write_s: float = 0.0
    usb_s: float = 0.0
    cpu_s: float = 0.0
    #: estimated output cardinality (ids or tuples).
    out_count: float = 0.0
    #: estimated peak RAM of the subplan, bytes.
    ram_bytes: float = 0.0

    @property
    def seconds(self) -> float:
        return self.flash_read_s + self.flash_write_s + self.usb_s + self.cpu_s

    def absorb(self, other: "CostEstimate") -> None:
        """Add another estimate's costs (not its cardinality).

        RAM adds up too: a pull-based pipeline keeps every operator's
        buffers live at once, so the plan's working set is the *sum*
        along the pipeline (slightly conservative for stages that are
        strictly sequential, which is the safe direction on a chip that
        kills over-budget plans outright).
        """
        self.flash_read_s += other.flash_read_s
        self.flash_write_s += other.flash_write_s
        self.usb_s += other.usb_s
        self.cpu_s += other.cpu_s
        self.ram_bytes += other.ram_bytes


class CostModel:
    """Bottom-up plan pricing."""

    def __init__(
        self,
        profile: HardwareProfile,
        stats: StatsProvider,
        db: HiddenDatabase,
        id_batch: int = 256,
        fetch_batch: int = 128,
        fan_in: int = 16,
        bloom_fp_target: float = 0.01,
        cache_pages: int = 0,
    ):
        self.profile = profile
        self.stats = stats
        self.db = db
        self.id_batch = id_batch
        self.fetch_batch = fetch_batch
        self.fan_in = fan_in
        self.bloom_fp_target = bloom_fp_target
        #: Buffer-pool capacity the device runs with (0 = no pool).
        #: Flash-read terms that rely on a page being served from the
        #: pool on re-access are only priced when a pool exists.
        self.cache_pages = cache_pages

    # -- primitive prices ----------------------------------------------

    def _cpu(self, op: str, count: float) -> float:
        return CYCLES[op] * count / self.profile.cpu_hz

    def _usb_transfer(self, payload_bytes: float, messages: float = 1) -> float:
        return (
            messages * self.profile.usb_setup_s
            + payload_bytes * 8 / self.profile.usb_bits_per_s
        )

    def _id_stream_usb(self, count: float) -> float:
        """USB cost of streaming ``count`` IDs between PC and device.

        Per-batch term: one message per ``id_batch`` IDs, plus the
        request and the end marker (each paying ``usb_setup_s``).
        Per-tuple term: the ID payload itself plus ~150 B of framing,
        at line rate.  Shared by every operator that ships an ID list
        over the wire (visible selection, Bloom construction).
        """
        messages = 2 + math.ceil(count / self.id_batch)
        return self._usb_transfer(count * ID_WIDTH + 150, messages)

    def _sequential_read_s(self, total_bytes: float) -> float:
        pages = math.ceil(total_bytes / self.profile.page_size)
        return pages * self.profile.flash_read_full_s

    def _directory_probe_s(self) -> float:
        return DIRECTORY_PROBE_READS * self.profile.flash_read_partial_s

    # -- node estimates ---------------------------------------------------

    def estimate(self, node: lp.PlanNode) -> CostEstimate:
        method = getattr(self, f"_est_{type(node).__name__}", None)
        if method is None:
            raise ValueError(f"no cost rule for {type(node).__name__}")
        return method(node)

    def _est_ClimbingSelect(self, node: lp.ClimbingSelect) -> CostEstimate:
        predicate = node.predicate
        target_rows = self.stats.row_count(node.target_table)
        sel = self.stats.selectivity(predicate)
        out = sel * target_rows
        est = CostEstimate(out_count=out)
        if predicate.kind == EQ:
            values = 1
        elif predicate.kind == IN:
            values = len(predicate.values)
        else:
            values = max(1, round(sel * self.stats.distinct_values(predicate)))
        est.flash_read_s += self._directory_probe_s() * min(values, 1) + (
            self.profile.flash_read_partial_s * (values // 64)
        )
        est.flash_read_s += self._sequential_read_s(out * ID_WIDTH)
        est.cpu_s += self._cpu("merge_step", out if values > 1 else 0)
        est.ram_bytes = self.profile.page_size * min(values + 1, self.fan_in + 1)
        if values > self.fan_in:
            # Multi-pass union spills: one extra write+read pass (approx).
            passes = max(0, math.ceil(math.log(values, self.fan_in)) - 1)
            bytes_out = out * ID_WIDTH
            est.flash_write_s += passes * (
                math.ceil(bytes_out / self.profile.page_size)
                * self.profile.flash_write_s
            )
            est.flash_read_s += passes * self._sequential_read_s(bytes_out)
        return est

    def _est_VisibleSelect(self, node: lp.VisibleSelect) -> CostEstimate:
        out = self.stats.matching_rows(node.predicate)
        est = CostEstimate(out_count=out)
        est.usb_s += self._id_stream_usb(out)
        est.ram_bytes = self.id_batch * ID_WIDTH
        return est

    def _est_DeviceScanSelect(self, node: lp.DeviceScanSelect) -> CostEstimate:
        heap = self.db.heaps[node.table.lower()]
        rows = heap.count
        sel = 1.0
        for predicate in node.predicates:
            sel *= self.stats.selectivity(predicate)
        est = CostEstimate(out_count=sel * rows)
        est.flash_read_s += len(heap.pages) * self.profile.flash_read_full_s
        per_row = len(node.predicates) or 1
        est.cpu_s += self._cpu("decode_field", rows * per_row)
        est.cpu_s += self._cpu("compare", rows * len(node.predicates))
        est.ram_bytes = self.profile.page_size
        return est

    def _est_ConvertIds(self, node: lp.ConvertIds) -> CostEstimate:
        child = self.estimate(node.child)
        from_table = node.child.output_table
        est = CostEstimate()
        est.absorb(child)
        if from_table == node.target_table.lower():
            est.out_count = child.out_count
            return est
        n_from = max(1, self.stats.row_count(from_table))
        n_to = self.stats.row_count(node.target_table)
        fanout = n_to / n_from
        k = child.out_count
        out = min(float(n_to), k * fanout)
        est.out_count = out
        # One directory probe per incoming ID dominates long lists.
        est.flash_read_s += k * self._directory_probe_s()
        est.flash_read_s += self._sequential_read_s(out * ID_WIDTH)
        est.cpu_s += self._cpu("merge_step", out)
        est.ram_bytes += (min(k, self.fan_in) + 1) * self.profile.page_size
        if k > self.fan_in:
            passes = max(1, math.ceil(math.log(max(2, k), self.fan_in)) - 1)
            bytes_out = out * ID_WIDTH
            est.flash_write_s += passes * (
                math.ceil(bytes_out / self.profile.page_size)
                * self.profile.flash_write_s
            )
            est.flash_read_s += passes * self._sequential_read_s(bytes_out)
            est.cpu_s += self._cpu("merge_step", passes * out)
        return est

    def _est_MergeIntersect(self, node: lp.MergeIntersect) -> CostEstimate:
        est = CostEstimate()
        table_rows = max(1.0, float(self.stats.row_count(node.output_table)))
        product_sel = 1.0
        total_in = 0.0
        for child in node.inputs:
            c = self.estimate(child)
            est.absorb(c)
            product_sel *= min(1.0, c.out_count / table_rows)
            total_in += c.out_count
        est.out_count = product_sel * table_rows
        est.cpu_s += self._cpu("merge_step", total_in)
        return est

    def _est_MergeUnion(self, node: lp.MergeUnion) -> CostEstimate:
        est = CostEstimate()
        table_rows = max(1.0, float(self.stats.row_count(node.output_table)))
        miss = 1.0
        total_in = 0.0
        for child in node.inputs:
            c = self.estimate(child)
            est.absorb(c)
            miss *= max(0.0, 1.0 - c.out_count / table_rows)
            total_in += c.out_count
        est.out_count = (1.0 - miss) * table_rows
        est.cpu_s += self._cpu("merge_step", total_in)
        return est

    def _est_SktAccess(self, node: lp.SktAccess) -> CostEstimate:
        skt = self.db.skt_for_root(node.skt_root)
        rows_per_page = self.profile.page_size // skt.record_width
        total_pages = max(1, math.ceil(skt.count / rows_per_page))
        est = CostEstimate()
        if node.child is None:
            est.out_count = skt.count
            est.flash_read_s += total_pages * self.profile.flash_read_full_s
            est.cpu_s += self._cpu(
                "decode_field", skt.count * len(skt.tables)
            )
            est.ram_bytes = self.profile.page_size
            return est
        child = self.estimate(node.child)
        est.absorb(child)
        n = child.out_count
        est.out_count = n
        # Expected distinct pages touched by n sorted hits.
        if skt.count > 0:
            distinct_pages = total_pages * (
                1.0 - (1.0 - 1.0 / total_pages) ** n
            )
        else:
            distinct_pages = 0.0
        partial_cost = n * self.profile.flash_read_partial_s
        if self.cache_pages > 0:
            # Dense hit patterns read each touched page once in full and
            # serve the other hits from the buffer pool; the operator
            # picks whichever is cheaper, so price the better of the two.
            cached_cost = distinct_pages * self.profile.flash_read_full_s
            est.flash_read_s += min(partial_cost, cached_cost)
        else:
            # No pool to hold a page between hits: every hit is its own
            # partial read.
            est.flash_read_s += partial_cost
        est.cpu_s += self._cpu("decode_field", n * len(skt.tables))
        est.ram_bytes += self.profile.page_size
        return est

    def _est_IdsToTuples(self, node: lp.IdsToTuples) -> CostEstimate:
        return self.estimate(node.child)

    def _est_BloomProbe(self, node: lp.BloomProbe) -> CostEstimate:
        child = self.estimate(node.child)
        est = CostEstimate()
        est.absorb(child)
        keys = self.stats.matching_rows(node.predicate)
        bits, _hashes = bloom_parameters(
            max(1, round(keys)), self.bloom_fp_target
        )
        # Count round trip, then the ID stream, then inserts and probes.
        est.usb_s += self._usb_transfer(200, 2)
        est.usb_s += self._id_stream_usb(keys)
        est.cpu_s += self._cpu("bloom_insert", keys)
        est.cpu_s += self._cpu("bloom_probe", child.out_count)
        sel = self.stats.selectivity(node.predicate)
        fp = self.bloom_fp_target
        est.out_count = child.out_count * min(1.0, sel + fp)
        est.ram_bytes += bits / 8 + self.id_batch * ID_WIDTH
        return est

    def _est_Store(self, node: lp.Store) -> CostEstimate:
        child = self.estimate(node.child)
        est = CostEstimate()
        est.absorb(child)
        est.out_count = child.out_count
        width = ID_WIDTH * len(node.child.output_tables)
        total_bytes = child.out_count * width
        pages = math.ceil(total_bytes / self.profile.page_size)
        est.flash_write_s += pages * self.profile.flash_write_s
        est.flash_read_s += pages * self.profile.flash_read_full_s
        est.ram_bytes += self.profile.page_size
        return est

    def _est_Project(self, node: lp.Project) -> CostEstimate:
        child = self.estimate(node.child)
        est = CostEstimate()
        est.absorb(child)
        n = child.out_count
        # Residual predicates and recheck shrink the output.
        out = n
        for predicate in node.residual_hidden:
            out *= self.stats.selectivity(predicate)
        recheck_sel = 1.0
        for predicate in node.visible_recheck:
            recheck_sel *= self.stats.selectivity(predicate)
        # The child stream already passed Bloom filters for the recheck
        # predicates; only false positives get removed now, so the count
        # barely changes -- but every surviving tuple pays fetch cost.
        est.out_count = out
        hidden_by_table: dict[str, int] = {}
        for table, column in node.projections:
            if column.hidden:
                hidden_by_table[table] = hidden_by_table.get(table, 0) + 1
        for predicate in node.residual_hidden:
            hidden_by_table[predicate.table] = (
                hidden_by_table.get(predicate.table, 0) + 1
            )
        hidden_reads = sum(hidden_by_table.values())
        for table, cols in hidden_by_table.items():
            partial_cost = n * cols * self.profile.flash_read_partial_s
            heap = self.db.heaps.get(table.lower())
            if self.cache_pages > 0 and heap is not None and heap.count > 0:
                # Dense row sets route through the buffer pool: each
                # touched heap page is read once in full and every other
                # field on it is served for free.  Mirror the operator's
                # per-fetch-batch density gate (with the estimated
                # cardinality standing in for the actual batch fill) so
                # the estimate tracks the path execution will take.
                rows_per_page = max(
                    1, self.profile.page_size // heap.codec.width
                )
                batch_fill = min(self.fetch_batch, n)
                dense = batch_fill * rows_per_page >= 2 * heap.count
                total_pages = max(1, math.ceil(heap.count / rows_per_page))
                distinct_pages = total_pages * (
                    1.0 - (1.0 - 1.0 / total_pages) ** n
                )
                cached_cost = (
                    distinct_pages * self.profile.flash_read_full_s
                )
                if dense:
                    est.flash_read_s += min(partial_cost, cached_cost)
                else:
                    est.flash_read_s += partial_cost
            else:
                est.flash_read_s += partial_cost
        est.cpu_s += self._cpu("decode_field", n * max(1, hidden_reads))
        # Visible fetches: group per table; approximate one round trip per
        # fetch batch with ~40 B per row of JSON.
        visible_tables = {
            t for t, c in node.projections if not c.hidden and not c.primary_key
        }
        visible_tables |= {p.table for p in node.visible_recheck}
        for _table in visible_tables:
            batches = math.ceil(n / self.fetch_batch) if n else 0
            est.usb_s += self._usb_transfer(
                n * (ID_WIDTH + 40) + batches * 150, 3 * batches
            )
        est.ram_bytes += self.fetch_batch * ID_WIDTH * max(
            1, len(node.child.output_tables)
        )
        return est

    # -- value-row nodes ---------------------------------------------------

    def _est_Aggregate(self, node: lp.Aggregate) -> CostEstimate:
        child = self.estimate(node.child)
        est = CostEstimate()
        est.absorb(child)
        n = child.out_count
        groups = min(n, max(1.0, n / 4))  # coarse distinct estimate
        est.cpu_s += self._cpu("hash", n)
        est.out_count = groups
        entry = 48 + 8 * (len(node.group_indexes) + len(node.aggregates))
        state = groups * entry
        if state > self.profile.ram_bytes * 0.5:
            # Spill path: re-produce the input and external-sort it.
            width = sum(d.width for d in node.input_dtypes)
            bytes_total = n * width
            est.flash_write_s += (
                math.ceil(bytes_total / self.profile.page_size)
                * self.profile.flash_write_s
            )
            est.flash_read_s += self._sequential_read_s(bytes_total)
            est.cpu_s += child.seconds  # the re-pull, roughly
            est.ram_bytes += self.profile.page_size * 4
        else:
            est.ram_bytes += state
        return est

    def _est_OrderBy(self, node: lp.OrderBy) -> CostEstimate:
        child = self.estimate(node.child)
        est = CostEstimate()
        est.absorb(child)
        n = child.out_count
        est.out_count = n
        width = sum(d.width for d in node.row_dtypes)
        bytes_total = n * width
        sort_buffer = min(
            self.profile.ram_bytes // 2, 8 * self.profile.page_size
        )
        if bytes_total > sort_buffer:
            pages = math.ceil(bytes_total / self.profile.page_size)
            est.flash_write_s += pages * self.profile.flash_write_s
            est.flash_read_s += pages * self.profile.flash_read_full_s
        est.cpu_s += self._cpu("compare", n * max(1, int(n).bit_length()))
        est.ram_bytes += sort_buffer
        return est

    def _est_Limit(self, node: lp.Limit) -> CostEstimate:
        child = self.estimate(node.child)
        est = CostEstimate()
        est.absorb(child)
        est.out_count = min(child.out_count, node.count)
        return est
