"""Query optimizer: the Pre/Post/Cross-filtering strategy space.

Section 4 of the paper: "Depending on the selectivities, a Pre-filtering
or Post-filtering strategy can be selected per predicate.  In addition,
the selectivities of visible and hidden selections can be combined
(Cross-filtering) ...  This leads to a large panel of candidate plans."

:mod:`repro.optimizer.space` enumerates that panel for a bound query,
:mod:`repro.optimizer.cost` prices each candidate with the same constants
the simulator charges (so estimated and measured costs are comparable),
and :class:`~repro.optimizer.optimizer.Optimizer` picks the winner.
"""

from repro.optimizer.cost import CostEstimate, CostModel, StatsProvider
from repro.optimizer.space import PlanBuilder, Strategy, enumerate_strategies
from repro.optimizer.optimizer import Optimizer, RankedPlan
from repro.optimizer.explain import explain_plan

__all__ = [
    "CostEstimate",
    "CostModel",
    "Optimizer",
    "PlanBuilder",
    "RankedPlan",
    "StatsProvider",
    "Strategy",
    "enumerate_strategies",
    "explain_plan",
]
