"""EXPLAIN: render a plan tree with per-node estimates.

The demo GUI shows the operator tree and, per operator, estimated and
measured statistics; this module produces the textual equivalent.
``EXPLAIN ANALYZE`` additionally grades the cost model per node: the
model's estimates are cumulative (each node's estimate absorbs its
children), so the node's *own* predicted cost is the estimate minus the
children's, which is then lined up against the per-operator flash/USB/
RAM measurements attributed by the executor.  Nodes whose own time was
mispredicted by more than :data:`MISESTIMATE_THRESHOLD` either way are
flagged -- the scorecard in :mod:`repro.bench.scorecard` applies the
same threshold per candidate plan.
"""

from __future__ import annotations

from repro.engine import plan as lp
from repro.optimizer.cost import CostEstimate, CostModel

#: Estimate and measurement disagreeing by more than this factor either
#: way flags the node (and counts a scorecard misestimate).
MISESTIMATE_THRESHOLD = 2.0

#: Self times below this (seconds) are too small to grade honestly.
_MIN_FLAG_SECONDS = 1e-4


def explain_plan(plan: lp.PlanNode, cost_model: CostModel | None = None) -> str:
    """A printable plan tree, optionally annotated with cost estimates."""
    lines: list[str] = []
    _render(plan, cost_model, 0, lines)
    return "\n".join(lines)


def _render(
    node: lp.PlanNode,
    cost_model: CostModel | None,
    depth: int,
    lines: list[str],
) -> None:
    prefix = "  " * depth
    if cost_model is not None:
        est = cost_model.estimate(node)
        lines.append(
            f"{prefix}{node.label()}  "
            f"[~{est.out_count:.0f} out, ~{est.seconds * 1000:.2f} ms, "
            f"~{est.ram_bytes / 1024:.1f} KiB]"
        )
    else:
        lines.append(f"{prefix}{node.label()}")
    for child in node.children():
        _render(child, cost_model, depth + 1, lines)


def self_estimate(node: lp.PlanNode, cost_model: CostModel) -> CostEstimate:
    """The node's *own* estimated cost: cumulative minus children.

    Clamped at zero per category -- the model prices a parent from its
    children's output cardinalities, so small negative residues can
    appear when a child over-absorbs.
    """
    est = cost_model.estimate(node)
    own = CostEstimate(
        flash_read_s=est.flash_read_s,
        flash_write_s=est.flash_write_s,
        usb_s=est.usb_s,
        cpu_s=est.cpu_s,
        out_count=est.out_count,
        ram_bytes=est.ram_bytes,
    )
    for child in node.children():
        sub = cost_model.estimate(child)
        own.flash_read_s -= sub.flash_read_s
        own.flash_write_s -= sub.flash_write_s
        own.usb_s -= sub.usb_s
        own.cpu_s -= sub.cpu_s
        own.ram_bytes -= sub.ram_bytes
    own.flash_read_s = max(0.0, own.flash_read_s)
    own.flash_write_s = max(0.0, own.flash_write_s)
    own.usb_s = max(0.0, own.usb_s)
    own.cpu_s = max(0.0, own.cpu_s)
    own.ram_bytes = max(0.0, own.ram_bytes)
    return own


def explain_analyze(plan: lp.PlanNode, cost_model: CostModel) -> str:
    """Estimated vs measured, per node, after the plan has executed.

    Requires the plan object to have gone through
    :meth:`repro.engine.executor.Executor.execute`, which attaches the
    physical operator statistics to each logical node.
    """
    lines: list[str] = []
    _render_analyzed(plan, cost_model, 0, lines)
    return "\n".join(lines)


def _render_analyzed(
    node: lp.PlanNode,
    cost_model: CostModel,
    depth: int,
    lines: list[str],
) -> None:
    prefix = "  " * depth
    est = cost_model.estimate(node)
    own = self_estimate(node, cost_model)
    est_flash_ms = (own.flash_read_s + own.flash_write_s) * 1000
    estimate = (
        f"est ~{est.out_count:.0f} out, ~{own.seconds * 1000:.2f} ms self, "
        f"flash ~{est_flash_ms:.2f} ms, usb ~{own.usb_s * 1000:.2f} ms, "
        f"ram ~{own.ram_bytes / 1024:.1f} KiB"
    )
    measured = getattr(node, "_measured", None)
    if measured is None:
        lines.append(f"{prefix}{node.label()}  [{estimate} | (not executed)]")
    else:
        lookups = measured.cache_hits + measured.cache_misses
        if lookups:
            cache = f", cache {measured.cache_hits / lookups:.0%} hit"
        else:
            cache = ""
        actual = (
            f"actual {measured.tuples_out} out, "
            f"{measured.self_seconds * 1000:.2f} ms self, "
            f"flash {measured.self_flash_seconds * 1000:.2f} ms "
            f"({measured.flash_page_reads}r/{measured.flash_page_writes}w), "
            f"usb {measured.self_usb_seconds * 1000:.2f} ms "
            f"({measured.usb_messages} msgs), "
            f"ram {measured.ram_bytes} B{cache}"
        )
        flag = _misestimate_flag(own.seconds, measured.self_seconds)
        lines.append(f"{prefix}{node.label()}  [{estimate} | {actual}]{flag}")
    for child in node.children():
        _render_analyzed(child, cost_model, depth + 1, lines)


def _misestimate_flag(est_seconds: float, meas_seconds: float) -> str:
    """`` <- MISESTIMATE (Nx)`` when the node's own time was badly off."""
    if max(est_seconds, meas_seconds) < _MIN_FLAG_SECONDS:
        return ""
    ratio = est_seconds / max(meas_seconds, 1e-12)
    if 1 / MISESTIMATE_THRESHOLD <= ratio <= MISESTIMATE_THRESHOLD:
        return ""
    return f"  <- MISESTIMATE ({ratio:.2f}x est/meas)"
