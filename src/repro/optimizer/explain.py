"""EXPLAIN: render a plan tree with per-node estimates.

The demo GUI shows the operator tree and, per operator, estimated and
measured statistics; this module produces the textual equivalent.
"""

from __future__ import annotations

from repro.engine import plan as lp
from repro.optimizer.cost import CostModel


def explain_plan(plan: lp.PlanNode, cost_model: CostModel | None = None) -> str:
    """A printable plan tree, optionally annotated with cost estimates."""
    lines: list[str] = []
    _render(plan, cost_model, 0, lines)
    return "\n".join(lines)


def _render(
    node: lp.PlanNode,
    cost_model: CostModel | None,
    depth: int,
    lines: list[str],
) -> None:
    prefix = "  " * depth
    if cost_model is not None:
        est = cost_model.estimate(node)
        lines.append(
            f"{prefix}{node.label()}  "
            f"[~{est.out_count:.0f} out, ~{est.seconds * 1000:.2f} ms, "
            f"~{est.ram_bytes / 1024:.1f} KiB]"
        )
    else:
        lines.append(f"{prefix}{node.label()}")
    for child in node.children():
        _render(child, cost_model, depth + 1, lines)


def explain_analyze(plan: lp.PlanNode, cost_model: CostModel) -> str:
    """Estimated vs measured, per node, after the plan has executed.

    Requires the plan object to have gone through
    :meth:`repro.engine.executor.Executor.execute`, which attaches the
    physical operator statistics to each logical node.
    """
    lines: list[str] = []
    _render_analyzed(plan, cost_model, 0, lines)
    return "\n".join(lines)


def _render_analyzed(
    node: lp.PlanNode,
    cost_model: CostModel,
    depth: int,
    lines: list[str],
) -> None:
    prefix = "  " * depth
    est = cost_model.estimate(node)
    measured = getattr(node, "_measured", None)
    if measured is None:
        actual = "(not executed)"
    else:
        actual = (
            f"actual {measured.tuples_out} out, "
            f"{measured.self_seconds * 1000:.2f} ms self"
        )
    lines.append(
        f"{prefix}{node.label()}  "
        f"[est ~{est.out_count:.0f} out, ~{est.seconds * 1000:.2f} ms | "
        f"{actual}]"
    )
    for child in node.children():
        _render_analyzed(child, cost_model, depth + 1, lines)
