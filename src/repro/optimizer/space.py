"""Plan-space enumeration: Pre-, Post- and Cross-filtering candidates.

A *strategy* assigns each visible predicate to PRE (evaluate on the PC,
ship the IDs, climb them to the query root before the SKT access) or POST
(apply after the hidden joins through a Bloom filter).  Hidden predicates
always run on the device: through their climbing index when one exists,
through a heap scan otherwise, or as residual checks during projection
when they cannot drive an ID list (e.g. ``<>``).

Cross-filtering falls out of plan construction: whenever a table
contributes several PRE-side ID streams (hidden index output, visible ID
lists, scan output), they are intersected *at that table's level* before
a single conversion climbs to the root -- "the selectivities of visible
and hidden selections can be combined before accessing a climbing index".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.engine import plan as lp
from repro.engine.database import HiddenDatabase
from repro.sql.binder import BoundQuery, EQ, IN, NEQ, RANGE, Predicate

PRE = "pre"
POST = "post"


@dataclass(frozen=True)
class Strategy:
    """One PRE/POST assignment for a query's visible predicates."""

    assignments: tuple[str, ...]

    def of(self, index: int) -> str:
        return self.assignments[index]

    def label(self, query: BoundQuery) -> str:
        if not self.assignments:
            return "no visible predicates"
        parts = [
            f"{p.table}.{p.column}={choice}"
            for p, choice in zip(query.visible_predicates, self.assignments)
        ]
        return ", ".join(parts)

    @classmethod
    def all_pre(cls, query: BoundQuery) -> "Strategy":
        return cls(tuple(PRE for _ in query.visible_predicates))

    @classmethod
    def all_post(cls, query: BoundQuery) -> "Strategy":
        return cls(tuple(POST for _ in query.visible_predicates))


def enumerate_strategies(query: BoundQuery) -> list[Strategy]:
    """Every PRE/POST assignment (2^v candidates)."""
    v = len(query.visible_predicates)
    return [
        Strategy(assignment)
        for assignment in itertools.product((PRE, POST), repeat=v)
    ]


class PlanBuilder:
    """Builds an executable plan for one (query, strategy) pair."""

    def __init__(self, db: HiddenDatabase, query: BoundQuery):
        self.db = db
        self.tree = db.tree
        self.query = query
        self.root = query.root

    # ------------------------------------------------------------------

    def build(self, strategy: Strategy) -> lp.PlanNode:
        if len(strategy.assignments) != len(self.query.visible_predicates):
            raise ValueError(
                "strategy arity does not match the query's visible "
                "predicates"
            )
        pre_visible: list[Predicate] = []
        post_visible: list[Predicate] = []
        for predicate, choice in zip(
            self.query.visible_predicates, strategy.assignments
        ):
            if choice == PRE:
                pre_visible.append(predicate)
            elif choice == POST:
                post_visible.append(predicate)
            else:
                raise ValueError(f"unknown strategy choice {choice!r}")

        residual: list[Predicate] = []
        indexed: dict[str, list[Predicate]] = {}
        scanned: dict[str, list[Predicate]] = {}
        for predicate in self.query.hidden_predicates:
            if predicate.kind == NEQ:
                residual.append(predicate)
                continue
            index = self.db.climbing_index(predicate.table, predicate.column)
            if index is not None and predicate.kind in (EQ, RANGE, IN):
                indexed.setdefault(predicate.table, []).append(predicate)
            else:
                scanned.setdefault(predicate.table, []).append(predicate)

        visible_by_table: dict[str, list[Predicate]] = {}
        for predicate in pre_visible:
            visible_by_table.setdefault(predicate.table, []).append(predicate)

        arms = self._build_arms(indexed, scanned, visible_by_table)
        tuple_stream = self._tuple_stream(arms)
        for predicate in sorted(
            post_visible, key=lambda p: p.column
        ):
            tuple_stream = lp.BloomProbe(tuple_stream, predicate)
        plan: lp.PlanNode = lp.Project(
            child=tuple_stream,
            projections=list(self.query.projections),
            visible_recheck=list(post_visible),
            residual_hidden=residual,
        )
        query = self.query
        if query.is_grouped:
            plan = lp.Aggregate(
                child=plan,
                group_indexes=list(query.group_by_indexes),
                aggregates=list(query.aggregates),
                output_items=list(query.output_items),
                labels=list(query.output_labels),
                input_dtypes=[c.dtype for _t, c in query.projections],
                having=list(query.having),
            )
        if query.order_by:
            plan = lp.OrderBy(
                child=plan,
                keys=list(query.order_by),
                row_dtypes=list(query.output_dtypes),
            )
        if query.limit is not None:
            plan = lp.Limit(child=plan, count=query.limit)
        return plan

    # ------------------------------------------------------------------

    def _build_arms(
        self,
        indexed: dict[str, list[Predicate]],
        scanned: dict[str, list[Predicate]],
        visible_by_table: dict[str, list[Predicate]],
    ) -> list[lp.PlanNode]:
        """One root-level sorted ID stream per predicate group."""
        arms: list[lp.PlanNode] = []
        tables = set(indexed) | set(scanned) | set(visible_by_table)
        for table in sorted(tables):
            local_streams: list[lp.PlanNode] = []
            for predicate in visible_by_table.get(table, []):
                local_streams.append(lp.VisibleSelect(predicate))
            if table in scanned:
                local_streams.append(
                    lp.DeviceScanSelect(table, scanned[table])
                )
            index_preds = indexed.get(table, [])
            cross = len(local_streams) > 0 and table != self.root
            if cross and index_preds:
                # Cross-filtering: bring the hidden index output down to
                # this table's level and intersect before converting once.
                for predicate in index_preds:
                    local_streams.append(
                        lp.ClimbingSelect(predicate, target_table=table)
                    )
                index_preds = []
            for predicate in index_preds:
                arms.append(self._index_arm(predicate))
            if not local_streams:
                continue
            if len(local_streams) == 1:
                combined = local_streams[0]
            else:
                combined = lp.MergeIntersect(local_streams)
            if table != self.root:
                combined = self._convert_to_root(combined)
            arms.append(combined)
        return arms

    def _index_arm(self, predicate: Predicate) -> lp.PlanNode:
        """Plain pre-filtering: the climbing index jumps straight to the
        query root in a single traversal, no conversion needed."""
        return lp.ClimbingSelect(predicate, target_table=self.root)

    def _convert_to_root(self, node: lp.PlanNode) -> lp.PlanNode:
        """Climb an ID stream to the query root in one jump (the key
        climbing index precomputes the whole path)."""
        return lp.ConvertIds(node, target_table=self.root)

    def _tuple_stream(self, arms: list[lp.PlanNode]) -> lp.PlanNode:
        root_ids: lp.PlanNode | None
        if not arms:
            root_ids = None
        elif len(arms) == 1:
            root_ids = arms[0]
        else:
            root_ids = lp.MergeIntersect(arms)
        single_table = len(self.query.tables) == 1
        if single_table:
            if root_ids is None:
                root_ids = lp.DeviceScanSelect(self.root, [])
            return lp.IdsToTuples(root_ids)
        skt = self.db.skt_for_root(self.root)
        if skt is None:
            raise ValueError(
                f"query root {self.root!r} has no SKT; cannot plan a "
                f"multi-table query"
            )
        node = lp.SktAccess(skt_root=self.root, child=root_ids)
        node._tables = skt.tables
        return node
