"""Plan choice: enumerate, price, rank, annotate.

The optimizer runs on the device (it must see hidden-column statistics),
using visible-column statistics the PC shared at plug-in time.  It prices
every PRE/POST assignment of the visible predicates and returns the
candidates ranked by estimated simulated time -- the ranking the demo's
"find the fastest plan" game is played against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import plan as lp
from repro.engine.database import HiddenDatabase
from repro.hardware.profiles import HardwareProfile
from repro.obs import Observability, get_logger
from repro.optimizer.cost import CostEstimate, CostModel, StatsProvider
from repro.optimizer.space import PlanBuilder, Strategy, enumerate_strategies
from repro.sql.binder import BoundQuery
from repro.visible.site import VisibleSite

log = get_logger(__name__)


@dataclass
class RankedPlan:
    """One candidate with its strategy and estimated cost."""

    strategy: Strategy
    plan: lp.Project
    estimate: CostEstimate

    def label(self, query: BoundQuery) -> str:
        return self.strategy.label(query)


class Optimizer:
    """Prices the strategy space and picks the cheapest plan."""

    def __init__(
        self,
        db: HiddenDatabase,
        site: VisibleSite,
        profile: HardwareProfile,
        fan_in: int = 16,
        bloom_fp_target: float = 0.01,
        obs: Observability | None = None,
        cache_pages: int = 0,
    ):
        self.db = db
        self.profile = profile
        self.obs = obs or Observability()
        self.stats = StatsProvider(db, site)
        # The executor adapts merge fan-in to free RAM at run time, so
        # the cost model must price with the fan-in the device can
        # actually afford, not the configured ceiling.
        affordable = profile.ram_bytes // profile.page_size - 4
        self.cost_model = CostModel(
            profile=profile,
            stats=self.stats,
            db=db,
            fan_in=max(2, min(fan_in, affordable)),
            bloom_fp_target=bloom_fp_target,
            cache_pages=cache_pages,
        )

    def rank(self, query: BoundQuery) -> list[RankedPlan]:
        """All candidates, cheapest first."""
        builder = PlanBuilder(self.db, query)
        tracer = self.obs.tracer
        ranked = []
        with tracer.span("optimizer.rank", category="optimizer") as span:
            for strategy in enumerate_strategies(query):
                with tracer.span(
                    "optimizer.candidate", category="optimizer"
                ) as cspan:
                    plan = builder.build(strategy)
                    self.annotate(plan)
                    estimate = self.cost_model.estimate(plan)
                    cspan.set("strategy", strategy.label(query))
                    cspan.set("est_ms", estimate.seconds * 1e3)
                    cspan.set("est_ram_bytes", estimate.ram_bytes)
                ranked.append(
                    RankedPlan(
                        strategy=strategy, plan=plan, estimate=estimate
                    )
                )
            span.set("candidates", len(ranked))
        self.obs.registry.counter("ghostdb_plans_considered_total").inc(
            len(ranked)
        )
        ranked.sort(key=lambda r: r.estimate.seconds)
        return ranked

    def optimize(self, query: BoundQuery) -> RankedPlan:
        """The cheapest candidate *that fits the device RAM*.

        A plan whose estimated working set exceeds the budget would die
        with :class:`~repro.hardware.ram.RamExhaustedError` mid-flight;
        the optimizer prefers a slower plan that fits (Post-filtering
        exists precisely for this).  If nothing is estimated to fit, the
        smallest-footprint candidate is returned as a best effort.
        """
        with self.obs.tracer.span(
            "optimizer.choose", category="optimizer"
        ) as span:
            ranked = self.rank(query)
            budget = 0.8 * self.profile.ram_bytes
            fitting = [r for r in ranked if r.estimate.ram_bytes <= budget]
            chosen = (
                fitting[0]
                if fitting
                else min(ranked, key=lambda r: r.estimate.ram_bytes)
            )
            span.set("chosen", chosen.strategy.label(query))
            span.set("fitting", len(fitting))
            span.set("est_ms", chosen.estimate.seconds * 1e3)
        log.debug(
            "optimizer chose 1 of %d candidates (%d fit the RAM budget)",
            len(ranked), len(fitting),
        )
        return chosen

    def annotate(self, plan: lp.Project) -> None:
        """Fill expected-cardinality hints the executor uses at run time
        (SKT access density, Bloom filter sizing)."""
        for node in plan.walk():
            if isinstance(node, lp.SktAccess) and node.child is not None:
                child_est = self.cost_model.estimate(node.child)
                node.expected_count = max(1, round(child_est.out_count))
            elif isinstance(node, lp.BloomProbe):
                node.expected_ids = max(
                    1, round(self.stats.matching_rows(node.predicate))
                )
