"""Baseline algorithms the paper argues against (Section 4).

"We show that the first part of the problem leads to unacceptable
performance with last resort join algorithms (like hash joins) as well as
with known indexing techniques like join indices."

* :mod:`repro.baselines.hashjoin` -- a grace hash join that genuinely
  collides with the RAM budget and spills partitions to flash.
* :mod:`repro.baselines.joinindex` -- classical *binary* join indices:
  one precomputed edge at a time instead of the climbing index's direct
  jump to the root.
"""

from repro.baselines.hashjoin import HashJoinBaseline, run_hash_join_query
from repro.baselines.joinindex import StepwisePlanBuilder, run_join_index_query

__all__ = [
    "HashJoinBaseline",
    "StepwisePlanBuilder",
    "run_hash_join_query",
    "run_join_index_query",
]
