"""Binary join indices: the classical indexing baseline.

A traditional join index precomputes one join edge.  Executing a deep
selection then means *walking* the tree: Doctor IDs become Visit IDs,
Visit IDs become Prescription IDs, with a full union merge (and its
directory probes, and possibly its flash spills) at every intermediate
level.  The climbing index's entire advantage is skipping those
intermediate materialisations by storing root-level postings directly.

:class:`StepwisePlanBuilder` reuses the regular plan space but forces
every climb to proceed edge by edge, which is exactly what binary join
indices can do.
"""

from __future__ import annotations

from repro.engine import plan as lp
from repro.engine.executor import QueryResult
from repro.optimizer.space import PlanBuilder, Strategy
from repro.sql.binder import Predicate


class StepwisePlanBuilder(PlanBuilder):
    """Plan builder restricted to one-edge (binary join index) climbs."""

    def _index_arm(self, predicate: Predicate) -> lp.PlanNode:
        # A binary index can only answer at the indexed table's own
        # level; the rest of the climb is explicit conversions.
        node: lp.PlanNode = lp.ClimbingSelect(
            predicate, target_table=predicate.table
        )
        return self._convert_to_root(node)

    def _convert_to_root(self, node: lp.PlanNode) -> lp.PlanNode:
        table = node.output_table
        path = self.tree.path_to_root(table)
        root_pos = path.index(self.root)
        for upper in path[1 : root_pos + 1]:
            node = lp.ConvertIds(node, target_table=upper)
        return node


def run_join_index_query(session, sql: str, strategy=None) -> QueryResult:
    """Execute ``sql`` using binary-join-index plans on a GhostDB session.

    ``strategy`` defaults to all-PRE (join indices have no Post-filtering
    story of their own; the Bloom machinery is GhostDB's).
    """
    bound = session.bind(sql)
    if strategy is None:
        strategy = Strategy.all_pre(bound)
    builder = StepwisePlanBuilder(session.hidden, bound)
    plan = builder.build(strategy)
    session.optimizer.annotate(plan)
    return session.executor.execute(plan)
