"""Grace hash join: the "last resort" baseline (paper, Section 4).

Joins on the device without SKTs or climbing indexes: each joined table
contributes a qualifying-ID set (from a device scan for hidden
predicates, from the PC for visible ones); the root table is scanned and
filtered by hash-set membership on its foreign keys.

The tiny RAM is the whole story.  A membership set that fits the budget
is built in RAM like any hash join would; one that does not triggers
grace partitioning -- both sides are hashed into partitions *written to
flash* and joined partition by partition.  Flash writes are 3-10x reads,
so this is precisely the behaviour the paper calls unacceptable, and the
benchmarks show it.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field

from repro.engine.executor import QueryResult
from repro.engine.metrics import ExecutionMetrics, OperatorStats
from repro.engine.plan import PlanNode
from repro.hardware.ram import RamExhaustedError
from repro.sql.binder import BoundQuery, NEQ, Predicate
from repro.storage.intlist import ID_WIDTH
from repro.storage.runs import Run, RunReader, RunWriter

_PACK = struct.Struct(">I")

#: Modeled bytes of device RAM per entry of an in-RAM hash set
#: (4 B key + bucket pointer overhead on a 32-bit chip).
HASH_SET_ENTRY_BYTES = 12


@dataclass
class _HashJoinPlanStub(PlanNode):
    """Placeholder so QueryResult.plan renders something meaningful."""

    description: str = "grace hash join baseline"

    def label(self) -> str:
        return self.description


@dataclass
class HashJoinBaseline:
    """Executes one bound query with hash joins on a GhostDB session."""

    session: "GhostDB"  # noqa: F821
    stats: list[OperatorStats] = field(default_factory=list)

    # ------------------------------------------------------------------

    def execute(self, query: BoundQuery) -> QueryResult:
        session = self.session
        device = session.device
        tree = session.tree
        root = query.root

        for table, _column in query.projections:
            if table != root and tree.parent_of(table)[0] != root:
                raise ValueError(
                    "the hash-join baseline projects root and depth-1 "
                    f"tables only; {table!r} is deeper"
                )

        before = device.counters()

        # 1. Qualifying-ID sets per non-root table, computed bottom-up so
        #    deep predicates propagate through their parents.
        id_lists = self._qualifying_ids(query)

        # 2. Scan the root, apply root predicates, keep FK tuples.
        root_tuples, tables = self._filtered_root_tuples(query)

        # 3. Membership-join against each child's ID list.
        for child_table, ids in id_lists.items():
            if child_table == root:
                continue
            if child_table not in tables:
                continue
            position = tables.index(child_table)
            root_tuples = self._membership_join(
                root_tuples, position, ids, label=child_table
            )

        # 4. Project.
        rows = self._project(query, root_tuples, tables)
        after = device.counters()
        metrics = ExecutionMetrics.from_counters(
            before, after, self.stats, len(rows)
        )
        columns = [f"{t}.{c.name}" for t, c in query.projections]
        return QueryResult(
            rows=rows,
            columns=columns,
            metrics=metrics,
            plan=_HashJoinPlanStub(),
        )

    # ------------------------------------------------------------------
    # Phase 1: per-table qualifying IDs
    # ------------------------------------------------------------------

    def _qualifying_ids(self, query: BoundQuery) -> dict[str, Run | None]:
        """table -> Run of sorted qualifying IDs (None = unconstrained).

        Constraints from descendant tables are folded into their parents
        (a visit qualifies only if its doctor qualifies), so the final
        root scan only needs depth-1 membership tests.
        """
        session = self.session
        tree = session.tree
        device = session.device
        preds_by_table: dict[str, list[Predicate]] = {}
        for predicate in query.predicates:
            preds_by_table.setdefault(predicate.table, []).append(predicate)

        runs: dict[str, Run | None] = {}
        # Bottom-up: deepest tables first.
        order = sorted(
            (t for t in query.tables if t != query.root),
            key=lambda t: -len(tree.path_to_root(t)),
        )
        for table in order:
            hidden = [
                p for p in preds_by_table.get(table, []) if p.hidden
            ]
            visible = [
                p for p in preds_by_table.get(table, []) if not p.hidden
            ]
            child_constraints = [
                (child, runs[child])
                for _fk, child in tree.children_of(table)
                if runs.get(child) is not None
            ]
            if not hidden and not visible and not child_constraints:
                runs[table] = None
                continue
            runs[table] = self._table_ids(
                table, hidden, visible, child_constraints
            )
        return runs

    def _table_ids(
        self,
        table: str,
        hidden: list[Predicate],
        visible: list[Predicate],
        child_constraints,
    ) -> Run:
        """Scan ``table`` (and ask the PC) for qualifying IDs."""
        session = self.session
        device = session.device
        op = OperatorStats(
            name="hj-select", detail=f"qualify {table}"
        )
        self.stats.append(op)
        heap = session.hidden.heaps[table]
        table_def = session.tree.table(table)

        # Visible side first: one sorted ID run from the PC.
        visible_run: Run | None = None
        if visible:
            writer = RunWriter(device, ID_WIDTH, f"hj-vis:{table}")
            stream = None
            for predicate in visible:
                if stream is None:
                    stream = set(
                        session.link.select_ids(table, predicate)
                    )
                else:
                    stream &= set(
                        session.link.select_ids(table, predicate)
                    )
            for pk in sorted(stream):
                writer.append(_PACK.pack(pk))
            visible_run = writer.finish()

        # Device scan applying hidden predicates and child memberships.
        child_sets = [
            (self._fk_index(table, child), run)
            for child, run in child_constraints
        ]
        writer = RunWriter(device, ID_WIDTH, f"hj-ids:{table}")
        scan_tuples = self._scan_with_predicates(
            heap, table_def, hidden,
            extra_fields=[idx for idx, _run in child_sets],
        )
        if child_sets:
            arity = 1 + len(child_sets)
            run = self._materialise(scan_tuples, arity)
            for i, (_idx, child_run) in enumerate(child_sets):
                run = self._membership_join(
                    run, 1 + i, child_run, label=f"{table}-child"
                )
            for tup in self._replay(run, arity):
                writer.append(_PACK.pack(tup[0]))
                op.tuples_out += 1
        else:
            for tup in scan_tuples:
                writer.append(_PACK.pack(tup[0]))
                op.tuples_out += 1
        scanned = writer.finish()

        if visible_run is None:
            return scanned
        # Intersect the scanned run with the visible run (sorted merge).
        merged = self._intersect_runs(scanned, visible_run, table)
        scanned.free(device)
        visible_run.free(device)
        return merged

    # ------------------------------------------------------------------
    # Root scan
    # ------------------------------------------------------------------

    def _filtered_root_tuples(self, query: BoundQuery):
        session = self.session
        tree = session.tree
        root = query.root
        heap = session.hidden.heaps[root]
        table_def = tree.table(root)
        hidden = [
            p for p in query.predicates if p.table == root and p.hidden
        ]
        visible = [
            p for p in query.predicates if p.table == root and not p.hidden
        ]
        fk_children = [
            (table_def.device_column_index(fk), child)
            for fk, child in tree.children_of(root)
            if child in query.tables
        ]
        tables = [root] + [child for _idx, child in fk_children]
        op = OperatorStats(name="hj-root-scan", detail=root)
        self.stats.append(op)

        tuples = self._scan_with_predicates(
            heap, table_def, hidden,
            extra_fields=[idx for idx, _child in fk_children],
        )
        run = self._materialise(tuples, len(tables), count_into=op)
        if visible:
            # Root visible predicates: intersect with the PC's ID run.
            ids = None
            for predicate in visible:
                got = set(session.link.select_ids(root, predicate))
                ids = got if ids is None else ids & got
            writer = RunWriter(
                session.device, ID_WIDTH, f"hj-vis:{root}"
            )
            for pk in sorted(ids):
                writer.append(_PACK.pack(pk))
            vis_run = writer.finish()
            run = self._membership_join(run, 0, vis_run, label=root)
            vis_run.free(session.device)
        return run, tables

    # ------------------------------------------------------------------
    # Membership join with grace spilling
    # ------------------------------------------------------------------

    def _membership_join(
        self, tuples_run: Run, key_position: int, ids_run: Run | None,
        label: str,
    ) -> Run:
        """Filter a tuple run by membership of one field in an ID run."""
        device = self.session.device
        if ids_run is None:
            return tuples_run
        op = OperatorStats(name="hj-membership", detail=label)
        self.stats.append(op)
        needed = ids_run.count * HASH_SET_ENTRY_BYTES
        try:
            alloc = device.ram.allocate(needed, f"hj-set:{label}")
        except RamExhaustedError:
            op.detail += " [grace spill]"
            return self._grace_join(
                tuples_run, key_position, ids_run, label, op
            )
        try:
            op.ram_bytes = needed
            members = set()
            with RunReader(device, ids_run, f"hj-ids:{label}") as reader:
                for raw in reader:
                    device.chip.charge("hash")
                    members.add(_PACK.unpack(raw)[0])
            out = RunWriter(device, tuples_run.record_width, f"hj-out:{label}")
            arity = tuples_run.record_width // ID_WIDTH
            with RunReader(device, tuples_run, f"hj-in:{label}") as reader:
                for raw in reader:
                    device.chip.charge("hash")
                    key = _PACK.unpack_from(
                        raw, key_position * ID_WIDTH
                    )[0]
                    if key in members:
                        out.append(raw)
                        op.tuples_out += 1
            result = out.finish()
        finally:
            alloc.release()
        tuples_run.free(device)
        return result

    def _grace_join(
        self, tuples_run: Run, key_position: int, ids_run: Run | None,
        label: str, op: OperatorStats,
    ) -> Run:
        """Partition both sides to flash, join partition by partition."""
        device = self.session.device
        budget = max(ID_WIDTH * 64, device.ram.soft_available // 2)
        partitions = max(
            2,
            math.ceil(ids_run.count * HASH_SET_ENTRY_BYTES / budget),
        )
        # One page buffer per open partition writer: the fan-out itself
        # is RAM-limited, so huge inputs recurse instead (multi-level
        # grace partitioning, as on real hardware).
        page = device.profile.page_size
        max_fanout = max(2, device.ram.soft_available // (2 * page) - 1)
        partitions = min(partitions, max_fanout)
        op.ram_bytes = budget

        def partition_run(run: Run, pos: int, tag: str) -> list[Run]:
            writers = [
                RunWriter(device, run.record_width, f"hj-part:{tag}:{p}")
                for p in range(partitions)
            ]
            with RunReader(device, run, f"hj-split:{tag}") as reader:
                for raw in reader:
                    device.chip.charge("hash")
                    key = _PACK.unpack_from(raw, pos * ID_WIDTH)[0]
                    writers[key % partitions].append(raw)
            return [w.finish() for w in writers]

        id_parts = partition_run(ids_run, 0, f"{label}-ids")
        tuple_parts = partition_run(tuples_run, key_position, f"{label}-tup")
        tuples_run.free(device)
        out = RunWriter(device, tuple_parts[0].record_width, f"hj-out:{label}")
        for id_part, tuple_part in zip(id_parts, tuple_parts):
            needed = max(1, id_part.count) * HASH_SET_ENTRY_BYTES
            try:
                alloc = device.ram.allocate(needed, f"hj-set:{label}")
            except RamExhaustedError:
                # Partition still too big for RAM: recurse (multi-level
                # grace partitioning).
                sub = self._grace_join(
                    tuple_part, key_position, id_part, f"{label}*", op
                )
                with RunReader(device, sub, "hj-cat") as reader:
                    for raw in reader:
                        out.append(raw)
                sub.free(device)
                id_part.free(device)
                continue
            try:
                members = set()
                with RunReader(device, id_part, "hj-p-ids") as reader:
                    for raw in reader:
                        device.chip.charge("hash")
                        members.add(_PACK.unpack(raw)[0])
                with RunReader(device, tuple_part, "hj-p-tup") as reader:
                    for raw in reader:
                        device.chip.charge("hash")
                        key = _PACK.unpack_from(
                            raw, key_position * ID_WIDTH
                        )[0]
                        if key in members:
                            out.append(raw)
                            op.tuples_out += 1
            finally:
                alloc.release()
            id_part.free(device)
            tuple_part.free(device)
        return out.finish()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _fk_index(self, table: str, child: str) -> int:
        table_def = self.session.tree.table(table)
        for fk, ch in self.session.tree.children_of(table):
            if ch == child:
                return table_def.device_column_index(fk)
        raise KeyError(f"{table} has no FK to {child}")

    def _scan_with_predicates(self, heap, table_def, predicates, extra_fields):
        device = self.session.device
        field_of = {
            p.column: table_def.device_column_index(p.column)
            for p in predicates
        }
        with heap.reader(f"hj-scan:{heap.name}") as reader:
            for raw in reader.scan():
                ok = True
                for predicate in predicates:
                    value = heap.codec.decode_field(
                        raw, field_of[predicate.column]
                    )
                    device.chip.charge("decode_field")
                    device.chip.charge("compare")
                    if not predicate.matches(value):
                        ok = False
                        break
                if not ok:
                    continue
                pk = heap.codec.decode_field(raw, heap.pk_field)
                extras = tuple(
                    heap.codec.decode_field(raw, idx) for idx in extra_fields
                )
                device.chip.charge("decode_field", 1 + len(extra_fields))
                yield (pk,) + extras

    def _materialise(self, tuples, arity: int, count_into=None) -> Run:
        device = self.session.device
        writer = RunWriter(device, arity * ID_WIDTH, "hj-materialise")
        for tup in tuples:
            writer.append(b"".join(_PACK.pack(v) for v in tup))
            if count_into is not None:
                count_into.tuples_out += 1
        return writer.finish()

    def _replay(self, run: Run, arity: int):
        device = self.session.device
        with RunReader(device, run, "hj-replay") as reader:
            for raw in reader:
                yield tuple(
                    _PACK.unpack_from(raw, i * ID_WIDTH)[0]
                    for i in range(arity)
                )
        run.free(device)

    def _intersect_runs(self, a: Run, b: Run, label: str) -> Run:
        device = self.session.device
        out = RunWriter(device, ID_WIDTH, f"hj-intersect:{label}")
        with RunReader(device, a, "hj-a") as ra, RunReader(
            device, b, "hj-b"
        ) as rb:
            ia, ib = iter(ra), iter(rb)
            va, vb = next(ia, None), next(ib, None)
            while va is not None and vb is not None:
                device.chip.charge("compare")
                if va == vb:
                    out.append(va)
                    va, vb = next(ia, None), next(ib, None)
                elif va < vb:
                    va = next(ia, None)
                else:
                    vb = next(ib, None)
        return out.finish()

    def _project(self, query: BoundQuery, tuples_run: Run, tables) -> list:
        session = self.session
        device = session.device
        op = OperatorStats(name="hj-project")
        self.stats.append(op)
        arity = len(tables)
        visible_cols: dict[str, list[str]] = {}
        for table, column in query.projections:
            if not column.hidden and not column.primary_key:
                visible_cols.setdefault(table, []).append(column.name.lower())
        readers = {}
        rows = []
        try:
            batch = []
            for tup in self._replay(tuples_run, arity):
                batch.append(tup)
            fetched: dict[str, dict[int, tuple]] = {}
            for table, cols in visible_cols.items():
                position = tables.index(table)
                ids = sorted({t[position] for t in batch})
                fetched[table] = session.link.fetch_values(table, ids, cols)
            for tup in batch:
                out = []
                usable = True
                for table, column in query.projections:
                    position = tables.index(table)
                    key = tup[position]
                    if column.primary_key:
                        out.append(key)
                    elif column.hidden:
                        heap = session.hidden.heaps[table]
                        if table not in readers:
                            readers[table] = heap.reader(f"hj-proj:{table}")
                        field_idx = session.tree.table(
                            table
                        ).device_column_index(column.name)
                        off, width = heap.codec.field_slice(field_idx)
                        rowid = heap.rowid_for_pk(key)
                        raw = readers[table].field(rowid, off, width)
                        device.chip.charge("decode_field")
                        out.append(heap.codec.types[field_idx].decode(raw))
                    else:
                        values = fetched[table].get(key)
                        if values is None:
                            usable = False
                            break
                        col_pos = visible_cols[table].index(
                            column.name.lower()
                        )
                        out.append(values[col_pos])
                if usable:
                    rows.append(tuple(out))
                    op.tuples_out += 1
        finally:
            for reader in readers.values():
                reader.close()
        return rows


def run_hash_join_query(session, sql: str) -> QueryResult:
    """Execute ``sql`` on a loaded GhostDB session via the baseline."""
    bound = session.bind(sql)
    for predicate in bound.predicates:
        if predicate.kind == NEQ:
            raise ValueError(
                "the hash-join baseline does not evaluate <> predicates"
            )
    return HashJoinBaseline(session).execute(bound)
