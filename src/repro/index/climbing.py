"""Climbing indexes (paper, Section 4 and Figure 4).

A climbing index on column ``T.A`` maps each value to sorted ID lists for
``T`` *and for every ancestor of T on the way to the root*: the entry for
"Spain" in Doctor.Country holds Doctor IDs, Visit IDs and Prescription
IDs, precomputing the joins along the Doctor -> Visit -> Prescription
path.  Selections on any level can therefore produce root IDs in one
index traversal, ready to merge with other predicates' lists.

A climbing index on a table's *primary key* is the ID-conversion index:
given a VisID, its Prescription-level posting is the list of PreIDs whose
prescriptions belong to that visit.  That is how visible selections,
which arrive as ID lists from the PC, climb to the root (the paper
converts the Vis.Date result "into lists of PreID thanks to the climbing
index on Vis.VisID").

The per-value, per-level posting lists live in packed posting files
(:mod:`repro.index.posting`).  The directory (value -> refs) is a B-tree
on a real device; the simulator keeps its content in host memory and
charges the modeled probe I/O explicitly (see ``DIRECTORY_PROBE_READS``).
"""

from __future__ import annotations

import bisect
import heapq
from dataclasses import dataclass

from repro.catalog.tree import SchemaTree
from repro.hardware.device import SmartUsbDevice
from repro.index.posting import PostingFileWriter, PostingRef
from repro.storage.heap import HeapTable

#: Partial page reads charged per directory probe (root + leaf of the
#: modeled two-level B-tree).
DIRECTORY_PROBE_READS = 2


@dataclass
class LevelStats:
    """Optimizer inputs for one level of a climbing index."""

    table: str
    total_ids: int = 0

    def avg_posting(self, n_values: int) -> float:
        return self.total_ids / n_values if n_values else 0.0


def build_edge_map(
    device: SmartUsbDevice,
    heaps: dict[str, HeapTable],
    parent: str,
    fk_col_index: int,
) -> dict[int, list[int]]:
    """Invert one FK edge: child PK -> sorted list of parent PKs.

    One full scan of the parent heap, charged to the device.
    """
    heap = heaps[parent]
    mapping: dict[int, list[int]] = {}
    with heap.reader(f"edge-scan:{parent}") as reader:
        for raw in reader.scan():
            parent_pk = heap.codec.decode_field(raw, heap.pk_field)
            child_pk = heap.codec.decode_field(raw, fk_col_index)
            device.chip.charge("decode_field", 2)
            mapping.setdefault(child_pk, []).append(parent_pk)
    return mapping


class ClimbingIndex:
    """One climbing index: a column's values -> per-level sorted IDs."""

    def __init__(
        self,
        device: SmartUsbDevice,
        table: str,
        column: str,
        levels: list[str],
        is_key_index: bool,
    ):
        self.device = device
        self.table = table.lower()
        self.column = column.lower()
        #: level tables, self first, root last.
        self.levels = levels
        self.is_key_index = is_key_index
        #: value -> list of PostingRef per level (index 0 is None for key
        #: indexes: the level-0 posting of a PK value is the value itself).
        self._directory: dict[object, list[PostingRef | None]] = {}
        self._sorted_keys: list = []
        self._files: list = []  # PostingFileReaderFactory per level
        self.level_stats: list[LevelStats] = []

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        device: SmartUsbDevice,
        tree: SchemaTree,
        heaps: dict[str, HeapTable],
        table: str,
        column: str,
        edge_cache: dict | None = None,
    ) -> "ClimbingIndex":
        """Build the index from loaded heaps (a load-time operation).

        ``edge_cache`` shares inverted FK edges across index builds.
        """
        table = table.lower()
        column = column.lower()
        levels = tree.path_to_root(table)
        table_def = tree.table(table)
        column_def = table_def.column(column)
        is_key_index = column_def.primary_key
        index = cls(device, table, column, levels, is_key_index)
        if edge_cache is None:
            edge_cache = {}

        # Level 0: scan the indexed table once.
        heap = heaps[table]
        value_ids: dict[object, list[int]] = {}
        field_idx = table_def.device_column_index(column)
        with heap.reader(f"index-scan:{table}.{column}") as reader:
            for raw in reader.scan():
                pk = heap.codec.decode_field(raw, heap.pk_field)
                value = heap.codec.decode_field(raw, field_idx)
                device.chip.charge("decode_field", 2)
                value_ids.setdefault(value, []).append(pk)

        per_level_ids: list[dict[object, list[int]]] = [value_ids]
        for upper in levels[1:]:
            # Map each value's IDs one level up through the inverted edge.
            lower = levels[len(per_level_ids) - 1]
            parent_info = tree.parent_of(lower)
            parent, fk_col = parent_info
            cache_key = (parent, fk_col.lower())
            if cache_key not in edge_cache:
                fk_idx = tree.table(parent).device_column_index(fk_col)
                edge_cache[cache_key] = build_edge_map(
                    device, heaps, parent, fk_idx
                )
            edge = edge_cache[cache_key]
            mapped: dict[object, list[int]] = {}
            below = per_level_ids[-1]
            for value, ids in below.items():
                lists = [edge.get(i, ()) for i in ids]
                lists = [lst for lst in lists if lst]
                merged = list(heapq.merge(*lists))
                device.chip.charge("merge_step", len(merged))
                mapped[value] = merged
            per_level_ids.append(mapped)

        # Write the posting files and directory, values in sorted order.
        index._sorted_keys = sorted(value_ids)
        index.level_stats = [LevelStats(table=t) for t in levels]
        writers = []
        for li, level_table in enumerate(levels):
            if li == 0 and is_key_index:
                writers.append(None)
                continue
            writers.append(
                PostingFileWriter(device, f"cindex:{table}.{column}:L{li}")
            )
        for value in index._sorted_keys:
            refs: list[PostingRef | None] = []
            for li in range(len(levels)):
                ids = per_level_ids[li].get(value, [])
                index.level_stats[li].total_ids += len(ids)
                if writers[li] is None:
                    refs.append(None)
                    continue
                writers[li].begin_list()
                for i in ids:
                    writers[li].append(i)
                refs.append(writers[li].end_list())
            index._directory[value] = refs
        index._files = [
            w.close() if w is not None else None for w in writers
        ]
        return index

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    @property
    def n_values(self) -> int:
        return len(self._sorted_keys)

    def level_of(self, target_table: str) -> int:
        try:
            return self.levels.index(target_table.lower())
        except ValueError:
            raise KeyError(
                f"climbing index {self.table}.{self.column} has no level "
                f"for {target_table!r} (levels: {self.levels})"
            ) from None

    def _charge_probe(self) -> None:
        self.device.flash.charge_partial_reads(DIRECTORY_PROBE_READS)
        self.device.chip.charge(
            "compare", max(1, self.n_values.bit_length())
        )

    def posting_count(self, value, target_table: str) -> int:
        """Number of IDs ``value`` maps to at ``target_table``'s level."""
        refs = self._directory.get(value)
        if refs is None:
            return 0
        level = self.level_of(target_table)
        if refs[level] is None:
            return 1  # key index, level 0: the value itself
        return refs[level].count

    def stream_eq(self, value, target_table: str, label: str = "cindex"):
        """A stream factory for one value's IDs at the given level.

        Returns a zero-argument callable producing ``(iterator, closer)``
        (the shape :func:`merge_posting_streams` consumes), or ``None``
        when the value is absent.  Charges the directory probe now.
        """
        self._charge_probe()
        refs = self._directory.get(value)
        if refs is None:
            return None
        level = self.level_of(target_table)
        ref = refs[level]
        if ref is None:
            pk = value

            def open_identity():
                return iter((pk,)), lambda: None

            return open_identity
        file = self._files[level]

        def open_stream():
            reader = file.open(f"{label}:{self.table}.{self.column}")
            return reader.read_list(ref), reader.close

        return open_stream

    def streams_range(
        self,
        low,
        low_inclusive: bool,
        high,
        high_inclusive: bool,
        target_table: str,
        label: str = "cindex",
    ) -> list:
        """Stream factories for every value in the range, in value order.

        Charges one directory probe for the descent plus one modeled leaf
        read per 64 qualifying values (leaf scans are sequential).
        """
        self._charge_probe()
        keys = self._sorted_keys
        if low is None:
            lo_idx = 0
        elif low_inclusive:
            lo_idx = bisect.bisect_left(keys, low)
        else:
            lo_idx = bisect.bisect_right(keys, low)
        if high is None:
            hi_idx = len(keys)
        elif high_inclusive:
            hi_idx = bisect.bisect_right(keys, high)
        else:
            hi_idx = bisect.bisect_left(keys, high)
        matching = keys[lo_idx:hi_idx]
        if matching:
            self.device.flash.charge_partial_reads(1 + len(matching) // 64)
        level = self.level_of(target_table)
        file = self._files[level]
        factories = []
        for value in matching:
            ref = self._directory[value][level]
            if ref is None:
                pk = value

                def open_identity(pk=pk):
                    return iter((pk,)), lambda: None

                factories.append(open_identity)
                continue

            def open_stream(ref=ref):
                reader = file.open(f"{label}:{self.table}.{self.column}")
                return reader.read_list(ref), reader.close

            factories.append(open_stream)
        return factories

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def flash_bytes(self) -> int:
        """Flash footprint: posting files plus the modeled directory."""
        postings = sum(f.flash_bytes for f in self._files if f is not None)
        key_width = 8  # modeled directory key slot
        entry = key_width + 8 * len(self.levels)
        return postings + self.n_values * entry

    def describe(self) -> str:
        parts = [f"climbing index on {self.table}.{self.column}"]
        for li, stats in enumerate(self.level_stats):
            parts.append(
                f"  level {li} ({stats.table}): {stats.total_ids} ids"
            )
        return "\n".join(parts)
