"""GhostDB's index structures (paper, Section 4).

* :class:`~repro.index.skt.SubtreeKeyTable` -- the generalized join index:
  every key of a subtree, one row per root-table row, in root-ID order.
* :class:`~repro.index.climbing.ClimbingIndex` -- value -> sorted ID lists
  for the indexed table *and every ancestor up to the root*, precomputing
  the joins along that path.  A climbing index on a table's primary key is
  the ID-conversion index used to turn visible selection results into
  root IDs.
* :class:`~repro.index.bloom.BloomFilter` -- the compact membership filter
  Post-filtering plans build from visible ID streams.
* :mod:`~repro.index.posting` -- the packed posting-list file both index
  kinds store their ID lists in.
"""

from repro.index.bloom import BloomFilter, bloom_parameters
from repro.index.posting import (
    PostingFileReader,
    PostingFileWriter,
    PostingRef,
    merge_posting_streams,
)
from repro.index.skt import SubtreeKeyTable
from repro.index.climbing import ClimbingIndex

__all__ = [
    "BloomFilter",
    "ClimbingIndex",
    "PostingFileReader",
    "PostingFileWriter",
    "PostingRef",
    "SubtreeKeyTable",
    "bloom_parameters",
    "merge_posting_streams",
]
