"""Bloom filters (paper, Section 4; Bloom 1970).

Post-filtering plans apply an unselective visible predicate *after* the
hidden joins: the PC streams the qualifying IDs over USB and the device
folds them into a Bloom filter -- "compactness and a very low false
positive rate, making them well adapted to RAM-constrained environments".

The filter's bit array is a real allocation against the device RAM
budget, so a filter sized too generously genuinely collides with the rest
of the plan's memory needs.  False positives are possible by design; the
engine removes them during projection, when the PC re-checks its own
predicate while serving visible values (no hidden information leaves the
device in either case).
"""

from __future__ import annotations

import math

from repro.hardware.device import SmartUsbDevice

#: splitmix64 constants for deterministic double hashing.
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_MASK = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    x = (x + _GOLDEN) & _MASK
    x = ((x ^ (x >> 30)) * _MIX1) & _MASK
    x = ((x ^ (x >> 27)) * _MIX2) & _MASK
    return x ^ (x >> 31)


def bloom_parameters(expected_n: int, target_fp: float) -> tuple[int, int]:
    """Optimal (bits, hash count) for ``expected_n`` keys at ``target_fp``.

    Classical sizing: m = -n ln p / (ln 2)^2, k = (m/n) ln 2.
    """
    if expected_n <= 0:
        return 8, 1
    if not 0 < target_fp < 1:
        raise ValueError(f"false-positive target must be in (0,1): {target_fp}")
    ln2 = math.log(2)
    m = math.ceil(-expected_n * math.log(target_fp) / (ln2 * ln2))
    k = max(1, round((m / expected_n) * ln2))
    return max(8, m), k


class BloomFilter:
    """A k-hash Bloom filter over 32-bit IDs, RAM-budgeted."""

    def __init__(
        self,
        device: SmartUsbDevice,
        bits: int,
        hashes: int,
        label: str = "bloom",
    ):
        if bits < 8:
            raise ValueError("a Bloom filter needs at least 8 bits")
        if hashes < 1:
            raise ValueError("a Bloom filter needs at least one hash")
        self.device = device
        self.bits = bits
        self.hashes = hashes
        self.label = label
        self.inserted = 0
        self._alloc = device.ram.allocate((bits + 7) // 8, label)
        self._array = bytearray((bits + 7) // 8)
        self._closed = False

    @classmethod
    def for_expected(
        cls,
        device: SmartUsbDevice,
        expected_n: int,
        target_fp: float = 0.01,
        label: str = "bloom",
    ) -> "BloomFilter":
        bits, hashes = bloom_parameters(expected_n, target_fp)
        return cls(device, bits, hashes, label)

    # ------------------------------------------------------------------

    def _positions(self, key: int):
        h = _splitmix64(key)
        h1 = h & 0xFFFFFFFF
        h2 = (h >> 32) | 1  # odd, so the double-hash walk covers all bits
        for i in range(self.hashes):
            yield (h1 + i * h2) % self.bits

    def insert(self, key: int) -> None:
        if self._closed:
            raise ValueError("Bloom filter already released")
        self.device.chip.charge("bloom_insert")
        for pos in self._positions(key):
            self._array[pos >> 3] |= 1 << (pos & 7)
        self.inserted += 1

    def may_contain(self, key: int) -> bool:
        if self._closed:
            raise ValueError("Bloom filter already released")
        self.device.chip.charge("bloom_probe")
        for pos in self._positions(key):
            if not self._array[pos >> 3] & (1 << (pos & 7)):
                return False
        return True

    def insert_many(self, keys) -> None:
        """Insert a batch of keys, charging the per-key cycles in bulk
        (identical totals to per-key :meth:`insert` calls)."""
        if self._closed:
            raise ValueError("Bloom filter already released")
        keys = list(keys)
        if not keys:
            return
        self.device.chip.charge("bloom_insert", len(keys))
        array = self._array
        for key in keys:
            for pos in self._positions(key):
                array[pos >> 3] |= 1 << (pos & 7)
        self.inserted += len(keys)

    def probe_many(self, keys) -> list[bool]:
        """Probe a batch of keys, charging the per-key cycles in bulk
        (identical totals to per-key :meth:`may_contain` calls)."""
        if self._closed:
            raise ValueError("Bloom filter already released")
        keys = list(keys)
        if not keys:
            return []
        self.device.chip.charge("bloom_probe", len(keys))
        array = self._array
        results = []
        for key in keys:
            hit = True
            for pos in self._positions(key):
                if not array[pos >> 3] & (1 << (pos & 7)):
                    hit = False
                    break
            results.append(hit)
        return results

    # ------------------------------------------------------------------

    @property
    def ram_bytes(self) -> int:
        return (self.bits + 7) // 8

    def expected_fp_rate(self) -> float:
        """Theoretical FP rate for the number of keys actually inserted."""
        if self.inserted == 0:
            return 0.0
        exponent = -self.hashes * self.inserted / self.bits
        return (1.0 - math.exp(exponent)) ** self.hashes

    def fill_ratio(self) -> float:
        """Fraction of bits set (diagnostic)."""
        set_bits = sum(bin(b).count("1") for b in self._array)
        return set_bits / self.bits

    def close(self) -> None:
        if not self._closed:
            self._alloc.release()
            self._closed = True

    def __enter__(self) -> "BloomFilter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
