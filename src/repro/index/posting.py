"""Packed posting files: many sorted ID lists in one flash extent.

A climbing index stores, per distinct value and per level, a sorted list
of 32-bit IDs.  Most lists are short, so giving each its own page would
inflate the index's flash footprint (which the paper explicitly counts as
the price of its indexing model).  Instead, all lists of one (index,
level) live packed back to back in a single extent; the directory
remembers ``(start offset, count)`` per value.

Reading a list streams whole pages only when the list spans them and uses
cheap partial reads otherwise.  Merging many lists -- the union step of an
ID conversion -- respects the RAM budget by merging at a bounded fan-in
and spilling intermediate runs to flash, which is precisely the cost that
makes Post-filtering attractive for unselective predicates.
"""

from __future__ import annotations

import heapq
import struct
from dataclasses import dataclass

from repro.columns import IdColumn
from repro.hardware.device import SmartUsbDevice
from repro.storage.intlist import ID_WIDTH, MAX_ID
from repro.storage.runs import Run, RunReader, RunWriter

_PACK = struct.Struct(">I")


@dataclass(frozen=True)
class PostingRef:
    """Directory entry: where one value's ID list lives in the extent."""

    start: int  # byte offset within the posting file
    count: int  # number of IDs

    @property
    def byte_length(self) -> int:
        return self.count * ID_WIDTH


class PostingFileWriter:
    """Packs consecutive sorted ID lists into one extent."""

    def __init__(self, device: SmartUsbDevice, label: str):
        self.device = device
        self.label = label
        self.pages: list[int] = []
        self._buffer = bytearray()
        self._offset = 0
        self._page_size = device.profile.page_size
        self._alloc = device.ram.allocate(self._page_size, label)
        self._closed = False
        self._list_open = False
        self._list_start = 0
        self._list_count = 0
        self._last_id: int | None = None

    def begin_list(self) -> None:
        if self._list_open:
            raise ValueError("previous posting list not finished")
        self._list_open = True
        self._list_start = self._offset
        self._list_count = 0
        self._last_id = None

    def append(self, value: int) -> None:
        if not self._list_open:
            raise ValueError("no posting list open")
        if not 0 <= value <= MAX_ID:
            raise ValueError(f"ID {value} out of 32-bit range")
        if self._last_id is not None and value < self._last_id:
            raise ValueError(
                f"posting lists must be sorted: {value} after {self._last_id}"
            )
        self._last_id = value
        self._buffer.extend(_PACK.pack(value))
        self._offset += ID_WIDTH
        self._list_count += 1
        if len(self._buffer) >= self._page_size:
            self._flush_page()

    def end_list(self) -> PostingRef:
        if not self._list_open:
            raise ValueError("no posting list open")
        self._list_open = False
        return PostingRef(start=self._list_start, count=self._list_count)

    def _flush_page(self) -> None:
        while len(self._buffer) >= self._page_size:
            chunk = bytes(self._buffer[: self._page_size])
            lpage = self.device.ftl.allocate()
            self.device.ftl.write(lpage, chunk)
            self.pages.append(lpage)
            del self._buffer[: self._page_size]

    def close(self) -> "PostingFileReaderFactory":
        if self._closed:
            raise ValueError("posting file already closed")
        if self._list_open:
            raise ValueError("a posting list is still open")
        if self._buffer:
            lpage = self.device.ftl.allocate()
            self.device.ftl.write(lpage, bytes(self._buffer))
            self.pages.append(lpage)
            self._buffer.clear()
        self._alloc.release()
        self._closed = True
        return PostingFileReaderFactory(
            device=self.device, pages=self.pages, total_bytes=self._offset
        )


@dataclass
class PostingFileReaderFactory:
    """Handle to a closed posting file; opens budget-charged readers."""

    device: SmartUsbDevice
    pages: list[int]
    total_bytes: int

    def open(self, label: str) -> "PostingFileReader":
        return PostingFileReader(self.device, self.pages, label)

    @property
    def flash_bytes(self) -> int:
        """Flash footprint (whole pages) -- the index storage cost."""
        return len(self.pages) * self.device.profile.page_size


class PostingFileReader:
    """Reads individual posting lists; holds one page buffer of RAM."""

    def __init__(self, device: SmartUsbDevice, pages: list[int], label: str):
        self.device = device
        self.pages = pages
        self.label = label
        self._page_size = device.profile.page_size
        self._alloc = device.ram.allocate(self._page_size, label)
        self._closed = False

    def read_list(self, ref: PostingRef):
        """Yield the IDs of one posting list, in sorted order.

        Each page the list spans is read once per call (full reads go
        through the device's buffer pool, so lists packed onto the same
        page -- or re-read lists -- hit it for free); small tails use
        cheap partial reads.
        """
        page_size = self._page_size
        remaining = ref.count
        offset = ref.start
        while remaining > 0:
            page_idx, in_page = divmod(offset, page_size)
            available = (page_size - in_page) // ID_WIDTH
            take = min(remaining, available)
            if take * ID_WIDTH <= page_size // 4:
                # Small tail: cheap partial read, not worth a full page.
                raw = self.device.ftl.read(
                    self.pages[page_idx], in_page, take * ID_WIDTH
                )
                yield from IdColumn.from_be_bytes(raw, take)
            else:
                data = self.device.ftl.read(self.pages[page_idx])
                yield from IdColumn.from_be_bytes(data, take, offset=in_page)
            offset += take * ID_WIDTH
            remaining -= take

    def close(self) -> None:
        if not self._closed:
            self._alloc.release()
            self._closed = True

    def __enter__(self) -> "PostingFileReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def merge_posting_streams(
    device: SmartUsbDevice,
    open_stream_factories,
    label: str,
    fan_in: int,
    dedup: bool = True,
):
    """Union many sorted ID streams under a bounded fan-in.

    ``open_stream_factories`` is a sequence of zero-argument callables,
    each returning ``(iterator, closer)`` for one sorted ID stream.  At
    most ``fan_in`` streams are open (each holding its page buffer) at any
    moment; larger inputs go through intermediate runs on flash -- paying
    the flash writes that make this the expensive path the paper's
    Post-filtering avoids.

    Yields the merged (optionally deduplicated) IDs in sorted order.
    """
    if fan_in < 2:
        raise ValueError("fan-in must be at least 2")
    factories = list(open_stream_factories)
    if not factories:
        return
    if len(factories) <= fan_in:
        yield from _heap_merge(device, factories, dedup)
        return
    # Too many streams: merge groups into temporary runs, then merge runs.
    # ``live`` owns every temporary run not yet freed, so a failure at
    # any point (e.g. RAM exhaustion opening a stream) releases both the
    # writer's RAM buffer (finish() in the finally) and the flash pages.
    live: list[Run] = []

    def merge_into_run(stream_factories) -> Run:
        writer = RunWriter(device, ID_WIDTH, f"convert-spill:{label}")
        try:
            for value in _heap_merge(device, stream_factories, dedup):
                writer.append(_PACK.pack(value))
        finally:
            run = writer.finish()
            live.append(run)
        return run

    try:
        level = []
        for start in range(0, len(factories), fan_in):
            level.append(merge_into_run(factories[start : start + fan_in]))
        while len(level) > fan_in:
            next_level: list[Run] = []
            for start in range(0, len(level), fan_in):
                group = level[start : start + fan_in]
                if len(group) == 1:
                    next_level.append(group[0])
                    continue
                factories_r = [
                    _run_stream_factory(device, run, label) for run in group
                ]
                next_level.append(merge_into_run(factories_r))
                for run in group:
                    run.free(device)
                    live.remove(run)
            level = next_level
        factories_r = [_run_stream_factory(device, run, label) for run in level]
        yield from _heap_merge(device, factories_r, dedup)
    finally:
        for run in live:
            run.free(device)


def _run_stream_factory(device: SmartUsbDevice, run: Run, label: str):
    def open_stream():
        reader = RunReader(device, run, f"convert-merge:{label}")
        iterator = (_PACK.unpack(raw)[0] for raw in reader)
        return iterator, reader.close

    return open_stream


def _heap_merge(device: SmartUsbDevice, factories, dedup: bool):
    """K-way merge of the streams produced by ``factories``."""
    streams = []
    closers = []
    try:
        for factory in factories:
            iterator, closer = factory()
            streams.append(iterator)
            closers.append(closer)
        heap = []
        for idx, stream in enumerate(streams):
            first = next(stream, None)
            if first is not None:
                heap.append((first, idx))
        heapq.heapify(heap)
        last = None
        while heap:
            value, idx = heapq.heappop(heap)
            device.chip.charge("merge_step")
            if not (dedup and value == last):
                yield value
                last = value
            nxt = next(streams[idx], None)
            if nxt is not None:
                heapq.heappush(heap, (nxt, idx))
    finally:
        for closer in closers:
            closer()
