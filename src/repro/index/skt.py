"""Subtree Key Tables (paper, Section 4 and Figure 3).

An SKT "joins all tables in the subtree to the subtree root with the IDs
sorted based on the order of IDs in the root table".  For the demo schema
the SKT rooted at Prescription has columns (PreID, MedID, VisID, DocID,
PatID), one row per prescription, sorted by PreID.

With it, once a plan knows the qualifying root IDs it can "directly
associate" any tuple of the subtree without running joins: one SKT row
fetch yields the matching key of every table at once.
"""

from __future__ import annotations

import struct

from repro.catalog.tree import SchemaTree
from repro.hardware.device import SmartUsbDevice
from repro.storage.heap import HeapTable
from repro.storage.intlist import ID_WIDTH
from repro.storage.pagestore import PageReader, PageStore

_PACK = struct.Struct(">I")


class SubtreeKeyTable:
    """The generalized join index for one subtree root."""

    def __init__(self, device: SmartUsbDevice, root: str, tables: list[str]):
        """``tables`` is the pre-order subtree list; ``tables[0] == root``."""
        if not tables or tables[0] != root:
            raise ValueError("tables must start with the subtree root")
        self.device = device
        self.root = root
        self.tables = tables
        self.record_width = ID_WIDTH * len(tables)
        self.pages: list[int] = []
        self.count = 0
        self._store = PageStore(device)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        device: SmartUsbDevice,
        tree: SchemaTree,
        root: str,
        heaps: dict[str, HeapTable],
    ) -> "SubtreeKeyTable":
        """Materialise the SKT from loaded device heaps.

        The build walks root rows in PK order and resolves each deeper
        table's key by following FK fields through the heaps -- paying the
        (load-time) flash reads that a real device would.
        """
        root = root.lower()
        tables = tree.subtree_of(root)
        skt = cls(device, root, tables)
        root_heap = heaps[root]
        column_of = {name: i for i, name in enumerate(tables)}

        # Precompute, per table, where its FK fields live in its device
        # record and which subtree slot each one fills.
        fk_layout: dict[str, list[tuple[int, str]]] = {}
        for name in tables:
            table_def = tree.table(name)
            entries = []
            for fk_col, child in tree.children_of(name):
                field_idx = table_def.device_column_index(fk_col)
                entries.append((field_idx, child))
            fk_layout[name] = entries

        readers = {
            name: heaps[name].reader(f"skt-build:{name}")
            for name in tables
            if fk_layout[name] or name == root
        }
        try:
            with skt._store.writer(skt.record_width, f"skt:{root}") as writer:
                for raw in readers[root].scan():
                    row_ids = [0] * len(tables)
                    skt._resolve(
                        tree, heaps, readers, fk_layout, column_of,
                        root, raw, row_ids,
                    )
                    writer.append(
                        b"".join(_PACK.pack(v) for v in row_ids)
                    )
                skt.pages = writer.pages
                skt.count = writer.count
        finally:
            for reader in readers.values():
                reader.close()
        return skt

    def _resolve(
        self, tree, heaps, readers, fk_layout, column_of,
        table: str, raw: bytes, row_ids: list[int],
    ) -> None:
        """Fill ``row_ids`` for ``table``'s subtree, given its raw record."""
        heap = heaps[table]
        pk = heap.codec.decode_field(raw, heap.pk_field)
        self.device.chip.charge("decode_field")
        row_ids[column_of[table]] = pk
        for field_idx, child in fk_layout[table]:
            fk_value = heap.codec.decode_field(raw, field_idx)
            self.device.chip.charge("decode_field")
            child_heap = heaps[child]
            child_rowid = child_heap.rowid_for_pk(fk_value)
            if fk_layout[child]:
                child_raw = readers[child].record(child_rowid)
                self._resolve(
                    tree, heaps, readers, fk_layout, column_of,
                    child, child_raw, row_ids,
                )
            else:
                row_ids[column_of[child]] = fk_value

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def column_index(self, table: str) -> int:
        try:
            return self.tables.index(table.lower())
        except ValueError:
            raise KeyError(
                f"SKT rooted at {self.root!r} has no column for "
                f"{table!r}"
            ) from None

    def reader(self, label: str) -> PageReader:
        return self._store.reader(self.pages, self.record_width, self.count, label)

    def decode(self, raw: bytes) -> tuple[int, ...]:
        """Decode one SKT row into a tuple of IDs (subtree pre-order)."""
        return tuple(
            _PACK.unpack_from(raw, i * ID_WIDTH)[0]
            for i in range(len(self.tables))
        )

    @property
    def flash_bytes(self) -> int:
        return len(self.pages) * self.device.profile.page_size
