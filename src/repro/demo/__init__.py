"""The VLDB'07 demonstration scenario (paper, Section 5).

Three phases: checking security (the spy's view plus the leak checker),
testing the query engine (Pre- vs Post-filtering, per-operator stats,
the Figure 5/6 plans), and the find-the-fastest-plan game.
"""

from repro.demo.plans import (
    figure5_postfilter_plan,
    named_demo_plans,
    prefilter_plan,
)
from repro.demo.scenario import DemoScenario
from repro.demo.game import PlanGame

__all__ = [
    "DemoScenario",
    "PlanGame",
    "figure5_postfilter_plan",
    "named_demo_plans",
    "prefilter_plan",
]
