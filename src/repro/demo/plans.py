"""Named ad-hoc plans for the demo query (Figures 5 and 6).

``P1`` is the intuitive Pre-filtering plan of Section 4 (all selections
pushed through climbing indexes before the SKT access).  ``P2`` is the
Post-filtering plan drawn in Figure 5: the hidden selection drives the
SKT access, the intermediate (PreID, MedID, VisID, ...) tuples are
Stored, and the two visible selections apply afterwards through Bloom
filters.
"""

from __future__ import annotations

from repro.engine import plan as lp
from repro.engine.database import HiddenDatabase
from repro.optimizer.space import PlanBuilder, Strategy
from repro.sql.binder import BoundQuery


def prefilter_plan(db: HiddenDatabase, query: BoundQuery) -> lp.Project:
    """P1: every predicate pre-filters (climbing indexes + conversions)."""
    return PlanBuilder(db, query).build(Strategy.all_pre(query))


def figure5_postfilter_plan(db: HiddenDatabase, query: BoundQuery) -> lp.Project:
    """P2: the exact Figure 5 QEP.

    Index on Vis (hidden purpose) -> Access SKT -> Store -> Bloom filter
    on Vis.Date -> Bloom filter on Med.Type -> Projections.  Hidden
    predicates feed the SKT access; every visible predicate becomes a
    Bloom probe over the stored intermediate result.
    """
    builder = PlanBuilder(db, query)
    plan = builder.build(Strategy.all_post(query))
    if not isinstance(plan, lp.Project):
        raise ValueError(
            "the Figure 5 plan shape applies to plain SPJ queries "
            "(no GROUP BY / ORDER BY / LIMIT)"
        )
    # The builder produces Project(BloomProbe*(SktAccess)); Figure 5 adds
    # a Store between the SKT access and the Bloom filters.
    return _insert_store_below_blooms(plan)


def _insert_store_below_blooms(plan: lp.Project) -> lp.Project:
    node = plan.child
    blooms: list[lp.BloomProbe] = []
    while isinstance(node, lp.BloomProbe):
        blooms.append(node)
        node = node.child
    stored = lp.Store(node)
    for bloom in reversed(blooms):
        stored = lp.BloomProbe(
            stored, bloom.predicate, expected_ids=bloom.expected_ids
        )
    return lp.Project(
        child=stored,
        projections=plan.projections,
        visible_recheck=plan.visible_recheck,
        residual_hidden=plan.residual_hidden,
    )


def named_demo_plans(
    db: HiddenDatabase, query: BoundQuery
) -> dict[str, lp.Project]:
    """The Figure 6 bar chart's competitors."""
    return {
        "P1 (pre-filtering)": prefilter_plan(db, query),
        "P2 (post-filtering, Fig. 5)": figure5_postfilter_plan(db, query),
    }
