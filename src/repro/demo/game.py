"""The find-the-fastest-plan game (demo phase 3).

"The last phase of the demo invites the visitors to assess their ability
to select the best plan for a simple query.  The rather unusual query
execution strategies implemented in GhostDB may generate unexpected
results for newcomers."

A :class:`PlanGame` presents every PRE/POST strategy for a query, lets
the player guess which will be fastest, then measures them all and
scores the guess (and, for reference, the optimizer's pick).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ghostdb import GhostDB
from repro.optimizer.space import Strategy, enumerate_strategies


@dataclass
class GameOutcome:
    """Measured leaderboard for one game round."""

    labels: list[str]
    measured_ms: list[float]
    winner_index: int
    guess_index: int | None
    optimizer_index: int
    #: The cost model's price for every candidate -- losers included, so
    #: the scorecard can grade the whole ranking, not just the pick.
    estimated_ms: list[float] = field(default_factory=list)

    @property
    def guess_was_right(self) -> bool:
        return self.guess_index == self.winner_index

    @property
    def optimizer_was_right(self) -> bool:
        return self.optimizer_index == self.winner_index

    @property
    def chosen_vs_best_ratio(self) -> float:
        """Measured time of the optimizer's pick over the winner's
        (1.0 means the optimizer picked the fastest plan)."""
        best = self.measured_ms[self.winner_index]
        if best <= 0:
            return 1.0
        return self.measured_ms[self.optimizer_index] / best

    def leaderboard(self) -> str:
        order = sorted(
            range(len(self.labels)), key=lambda i: self.measured_ms[i]
        )
        lines = ["measured leaderboard:"]
        for rank, i in enumerate(order, start=1):
            marks = []
            if i == self.guess_index:
                marks.append("your guess")
            if i == self.optimizer_index:
                marks.append("optimizer")
            suffix = f"   <- {', '.join(marks)}" if marks else ""
            estimate = (
                f"  (est {self.estimated_ms[i]:9.3f} ms)"
                if self.estimated_ms
                else ""
            )
            lines.append(
                f"  {rank}. {self.labels[i]:55s} "
                f"{self.measured_ms[i]:9.3f} ms{estimate}{suffix}"
            )
        return "\n".join(lines)


@dataclass
class PlanGame:
    """One round of the game over one query."""

    db: GhostDB
    sql: str
    strategies: list[Strategy] = field(init=False)
    labels: list[str] = field(init=False)

    def __post_init__(self):
        bound = self.db.bind(self.sql)
        self.strategies = enumerate_strategies(bound)
        self.labels = [s.label(bound) for s in self.strategies]

    def candidates(self) -> list[str]:
        """The strategies on offer, as human-readable labels."""
        return list(self.labels)

    def play(self, guess_index: int | None = None) -> GameOutcome:
        """Measure every candidate and score the guess."""
        if guess_index is not None and not (
            0 <= guess_index < len(self.strategies)
        ):
            raise IndexError(
                f"guess {guess_index} out of range "
                f"[0, {len(self.strategies)})"
            )
        bound = self.db.bind(self.sql)
        ranked = self.db.optimizer.rank(bound)
        optimizer_strategy = ranked[0].strategy
        optimizer_index = self.strategies.index(optimizer_strategy)
        estimates_by_strategy = {
            r.strategy: r.estimate.seconds * 1000 for r in ranked
        }
        measured: list[float] = []
        for strategy in self.strategies:
            self.db.reset_measurements()
            result = self.db.query_with_strategy(self.sql, strategy)
            measured.append(result.metrics.elapsed_seconds * 1000)
        winner = min(range(len(measured)), key=measured.__getitem__)
        return GameOutcome(
            labels=list(self.labels),
            measured_ms=measured,
            winner_index=winner,
            guess_index=guess_index,
            optimizer_index=optimizer_index,
            estimated_ms=[
                estimates_by_strategy[s] for s in self.strategies
            ],
        )
