"""The three-phase demonstration driver (paper, Section 5).

Builds the demo platform (device + visible site + dataset) and runs:

1. **Checking security** -- execute the demo query, render what a spy on
   the USB bus observes, and run the leak checker.
2. **Testing the query engine** -- execute P1 (Pre-filtering) and P2
   (Post-filtering, Figure 5) and compare processing time and RAM
   consumption, with per-operator popup statistics.
3. **The game** -- rank all candidate plans by measured time and see
   whether the optimizer (or the visitor) picked the winner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ghostdb import GhostDB, SessionConfig
from repro.demo.plans import named_demo_plans
from repro.engine.executor import QueryResult
from repro.privacy.leakcheck import LeakChecker, LeakReport
from repro.privacy.spy import SpyView
from repro.workload.datagen import DatasetConfig, MedicalDataGenerator
from repro.workload.queries import DEMO_SCHEMA_DDL, demo_query


@dataclass
class PhaseOneResult:
    result: QueryResult
    spy: SpyView
    leak_report: LeakReport


@dataclass
class PhaseTwoResult:
    runs: dict[str, QueryResult]

    def comparison(self) -> str:
        lines = ["plan comparison (the Figure 6 bar chart):"]
        for name, result in self.runs.items():
            m = result.metrics
            lines.append(
                f"  {name:32s} time={m.elapsed_seconds * 1000:9.3f} ms  "
                f"ram={m.ram_high_water:6d} B  rows={m.result_rows}"
            )
        return "\n".join(lines)


class DemoScenario:
    """One self-contained demo platform instance."""

    def __init__(
        self,
        n_prescriptions: int = 20_000,
        seed: int = 2007,
        session_config: SessionConfig | None = None,
    ):
        self.dataset_config = DatasetConfig(
            n_prescriptions=n_prescriptions, seed=seed
        )
        self.db = GhostDB(config=session_config)
        for ddl in DEMO_SCHEMA_DDL:
            self.db.execute(ddl)
        self.data = MedicalDataGenerator(self.dataset_config).generate()
        self.db.load(self.data)
        self.leak_checker = LeakChecker(self.db.schema, self.data)
        self.sql = demo_query()

    # ------------------------------------------------------------------

    def phase_security(self) -> PhaseOneResult:
        """Phase 1: run the query, show the spy view, check for leaks."""
        self.db.reset_measurements()
        result = self.db.query(self.sql)
        records = self.db.usb_log
        return PhaseOneResult(
            result=result,
            spy=SpyView(records),
            leak_report=self.leak_checker.check(records),
        )

    def phase_engine(self) -> PhaseTwoResult:
        """Phase 2: P1 vs P2, measured on identical state."""
        bound = self.db.bind(self.sql)
        runs: dict[str, QueryResult] = {}
        for name, plan in named_demo_plans(self.db.hidden, bound).items():
            self.db.optimizer.annotate(plan)
            self.db.reset_measurements()
            runs[name] = self.db.execute_plan(plan)
        return PhaseTwoResult(runs=runs)

    def phase_game(self, sql: str | None = None):
        """Phase 3: the find-the-fastest-plan game."""
        from repro.demo.game import PlanGame

        return PlanGame(self.db, sql or self.sql)
