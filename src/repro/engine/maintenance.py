"""Incremental maintenance: appending rows after the secure load.

The paper loads the device once "in a secure setting"; real deployments
need re-synchronisation sessions (the authors' follow-up system, PlugDB,
made this a first-class feature).  This module implements batch appends
with the storage model we have: NAND flash forbids in-place writes, so
an append *rebuilds* each affected structure -- reading the old extents,
writing merged ones, and freeing the old pages, which feeds the FTL's
garbage collector and the wear counters.  All of that cost is charged to
the device, making maintenance measurable (the T6 extension bench).

Rebuild scope is minimal per table: its heap, every SKT whose subtree
contains it, and every climbing/key index with the table among its
levels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.statistics import StatisticsCollector
from repro.engine.database import HiddenDatabase
from repro.index.climbing import ClimbingIndex
from repro.index.skt import SubtreeKeyTable
from repro.obs.log import get_logger
from repro.storage.heap import HeapTable

log = get_logger(__name__)


class MaintenanceError(ValueError):
    """An append violated the storage invariants."""


@dataclass
class MaintenanceReport:
    """What one append batch rebuilt."""

    table: str
    appended_rows: int
    rebuilt_skts: list[str]
    rebuilt_indexes: list[str]

    def summary(self) -> str:
        return (
            f"appended {self.appended_rows} rows to {self.table}; "
            f"rebuilt SKTs {self.rebuilt_skts or '[]'} and "
            f"{len(self.rebuilt_indexes)} indexes"
        )


def append_rows(
    db: HiddenDatabase, table: str, new_rows: list[tuple]
) -> MaintenanceReport:
    """Append full rows (schema column order) to one table's hidden part.

    New primary keys must exceed every existing key (appends model new
    entities -- visits that happened, prescriptions written; updates to
    historical rows are out of scope, as in the paper).
    """
    table = table.lower()
    if table not in db.heaps:
        raise MaintenanceError(f"unknown table {table!r}")
    if not new_rows:
        return MaintenanceReport(table, 0, [], [])
    table_def = db.tree.table(table)
    device_cols = table_def.device_columns()
    source_idx = [table_def.column_index(c.name) for c in device_cols]
    reduced = [tuple(row[i] for i in source_idx) for row in new_rows]
    reduced.sort(key=lambda r: r[0])

    old_heap = db.heaps[table]
    if old_heap.count and reduced[0][0] <= old_heap.pk_of_rowid(
        old_heap.count - 1
    ):
        raise MaintenanceError(
            f"{table}: appended keys must exceed the current maximum "
            f"({old_heap.pk_of_rowid(old_heap.count - 1)})"
        )

    # 1. Rebuild the heap: stream old rows + new rows into a new extent,
    #    then free the old one (stale pages -> future GC work).
    device = db.device
    collector = StatisticsCollector(
        table=table,
        column_names=[c.name for c in device_cols],
        dtypes=[c.dtype for c in device_cols],
    )

    def merged_rows():
        for row in old_heap.scan():
            collector.add(row)
            yield row
        for row in reduced:
            validated = tuple(
                c.dtype.validate(v) for c, v in zip(device_cols, row)
            )
            collector.add(validated)
            yield validated

    new_heap = HeapTable(
        device, table, table_def.device_codec(), pk_field=0
    )
    new_heap.load(merged_rows())
    _free_heap(db, old_heap)
    db.heaps[table] = new_heap
    db.stats[table] = collector.finish()

    # 2. Rebuild affected SKTs and indexes from the updated heaps.
    rebuilt_skts = []
    for root, skt in list(db.skts.items()):
        if table in skt.tables:
            _free_pages(db, skt.pages)
            db.skts[root] = SubtreeKeyTable.build(
                device, db.tree, root, db.heaps
            )
            rebuilt_skts.append(f"SKT_{root}")

    rebuilt_indexes = []
    edge_cache: dict = {}
    for key, index in list(db.climbing.items()):
        if table in index.levels:
            _free_index(db, index)
            db.climbing[key] = ClimbingIndex.build(
                device, db.tree, db.heaps, key[0], key[1], edge_cache
            )
            rebuilt_indexes.append(f"cidx:{key[0]}.{key[1]}")
    for name, index in list(db.key_indexes.items()):
        if table in index.levels:
            _free_index(db, index)
            db.key_indexes[name] = ClimbingIndex.build(
                device, db.tree, db.heaps, name,
                db.tree.table(name).pk.name, edge_cache,
            )
            rebuilt_indexes.append(f"kidx:{name}")

    log.info(
        "appended %d rows to %s (rebuilt %d SKTs, %d indexes)",
        len(reduced), table, len(rebuilt_skts), len(rebuilt_indexes),
    )
    return MaintenanceReport(
        table=table,
        appended_rows=len(reduced),
        rebuilt_skts=rebuilt_skts,
        rebuilt_indexes=rebuilt_indexes,
    )


def _free_pages(db: HiddenDatabase, pages: list[int]) -> None:
    for lpage in pages:
        db.device.ftl.free(lpage)


def _free_heap(db: HiddenDatabase, heap: HeapTable) -> None:
    _free_pages(db, heap.pages)
    _free_pages(db, heap._pk_pages)


def _free_index(db: HiddenDatabase, index: ClimbingIndex) -> None:
    for file in index._files:
        if file is not None:
            _free_pages(db, file.pages)
