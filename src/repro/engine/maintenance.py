"""Incremental maintenance: rebuilding table extents after the load.

The paper loads the device once "in a secure setting"; real deployments
need re-synchronisation sessions (the authors' follow-up system, PlugDB,
made this a first-class feature).  This module implements batch appends
-- and the rebuild transaction UPDATE/DELETE ride on -- with the storage
model we have: NAND flash forbids in-place writes, so a mutation
*rebuilds* each affected structure.  All of that cost is charged to the
device, making maintenance measurable (the T6 extension bench).

Rebuild scope is minimal per table: its heap, every SKT whose subtree
contains it, and every climbing/key index with the table among its
levels.

Crash atomicity (:func:`rebuild_table`) follows a strict build-all-then-
swap discipline.  Every flash write happens while the catalog still
points at the old extents; the commit -- swapping catalog dicts and
freeing old pages -- is pure host-side bookkeeping with no flash I/O, so
no fault decision (power cut, bad block, read-only latch) can land
inside it.  A failure during the build frees exactly the orphaned new
pages and re-raises, leaving the old state untouched; a power cut leaves
the new pages unreferenced, where the mount-time orphan sweep reclaims
them.  Either way, recovery sees the old version or the new version of
a statement -- never a torn mix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.statistics import StatisticsCollector
from repro.engine.database import HiddenDatabase
from repro.index.climbing import ClimbingIndex
from repro.index.skt import SubtreeKeyTable
from repro.obs.log import get_logger
from repro.storage.heap import HeapTable

log = get_logger(__name__)


class MaintenanceError(ValueError):
    """An append violated the storage invariants."""


@dataclass
class MaintenanceReport:
    """What one append batch rebuilt."""

    table: str
    appended_rows: int
    rebuilt_skts: list[str]
    rebuilt_indexes: list[str]

    def summary(self) -> str:
        return (
            f"appended {self.appended_rows} rows to {self.table}; "
            f"rebuilt SKTs {self.rebuilt_skts or '[]'} and "
            f"{len(self.rebuilt_indexes)} indexes"
        )


def append_rows(
    db: HiddenDatabase, table: str, new_rows: list[tuple]
) -> MaintenanceReport:
    """Append full rows (schema column order) to one table's hidden part.

    New primary keys must exceed every existing key (appends model new
    entities -- visits that happened, prescriptions written; updates to
    historical rows are out of scope, as in the paper).
    """
    table = table.lower()
    if table not in db.heaps:
        raise MaintenanceError(f"unknown table {table!r}")
    if not new_rows:
        return MaintenanceReport(table, 0, [], [])
    table_def = db.tree.table(table)
    device_cols = table_def.device_columns()
    source_idx = [table_def.column_index(c.name) for c in device_cols]
    reduced = [tuple(row[i] for i in source_idx) for row in new_rows]
    reduced.sort(key=lambda r: r[0])

    old_heap = db.heaps[table]
    if old_heap.count and reduced[0][0] <= old_heap.pk_of_rowid(
        old_heap.count - 1
    ):
        raise MaintenanceError(
            f"{table}: appended keys must exceed the current maximum "
            f"({old_heap.pk_of_rowid(old_heap.count - 1)})"
        )

    def merged_rows():
        for row in old_heap.scan():
            yield row
        for row in reduced:
            yield tuple(
                c.dtype.validate(v) for c, v in zip(device_cols, row)
            )

    rebuilt_skts, rebuilt_indexes = rebuild_table(db, table, merged_rows())

    log.info(
        "appended %d rows to %s (rebuilt %d SKTs, %d indexes)",
        len(reduced), table, len(rebuilt_skts), len(rebuilt_indexes),
    )
    return MaintenanceReport(
        table=table,
        appended_rows=len(reduced),
        rebuilt_skts=rebuilt_skts,
        rebuilt_indexes=rebuilt_indexes,
    )


def rebuild_table(
    db: HiddenDatabase, table: str, device_rows
) -> tuple[list[str], list[str]]:
    """Atomically replace ``table``'s device extents with ``device_rows``.

    ``device_rows`` is an iterable of *device* rows (device-column
    order, primary key first, sorted ascending).  The heap, every SKT
    containing the table and every climbing/key index over it are built
    into fresh extents first -- the catalog untouched, the old pages
    still live -- and only then swapped in during a flash-free commit.
    On any build failure the freshly written pages are freed and the
    exception re-raised: the old state stays fully intact.

    Returns ``(rebuilt_skts, rebuilt_indexes)`` labels for reporting.
    """
    table_def = db.tree.table(table)
    device_cols = table_def.device_columns()
    device = db.device
    ftl = device.ftl
    collector = StatisticsCollector(
        table=table,
        column_names=[c.name for c in device_cols],
        dtypes=[c.dtype for c in device_cols],
    )

    def collected():
        for row in device_rows:
            collector.add(row)
            yield row

    before = ftl.mapped_lpages()
    try:
        # Build phase: every flash write lands here, into pages the
        # catalog does not reference yet.
        new_heap = HeapTable(
            device, table, table_def.device_codec(), pk_field=0
        )
        new_heap.load(collected())
        heaps_view = {**db.heaps, table: new_heap}

        new_skts = {}
        for root, skt in db.skts.items():
            if table in skt.tables:
                new_skts[root] = SubtreeKeyTable.build(
                    device, db.tree, root, heaps_view
                )

        edge_cache: dict = {}
        new_climbing = {}
        for key, index in db.climbing.items():
            if table in index.levels:
                new_climbing[key] = ClimbingIndex.build(
                    device, db.tree, heaps_view, key[0], key[1], edge_cache
                )
        new_key_indexes = {}
        for name, index in db.key_indexes.items():
            if table in index.levels:
                new_key_indexes[name] = ClimbingIndex.build(
                    device, db.tree, heaps_view, name,
                    db.tree.table(name).pk.name, edge_cache,
                )
    except BaseException:
        # Abort: free exactly the pages this build orphaned.  free() is
        # host-side bookkeeping (no flash I/O), so the abort itself
        # cannot fault.  After a power cut the same cleanup happens via
        # the mount-time orphan sweep instead.
        for lpage in ftl.mapped_lpages() - before:
            ftl.free(lpage)
        raise

    # Commit phase: swap the catalog and free the old extents.  Pure
    # host-side dict/bookkeeping operations -- no flash I/O, so no
    # fault decision can interleave; the statement is atomic.
    _free_heap(db, db.heaps[table])
    db.heaps[table] = new_heap
    db.stats[table] = collector.finish()
    rebuilt_skts = []
    for root, skt in new_skts.items():
        _free_pages(db, db.skts[root].pages)
        db.skts[root] = skt
        rebuilt_skts.append(f"SKT_{root}")
    rebuilt_indexes = []
    for key, index in new_climbing.items():
        _free_index(db, db.climbing[key])
        db.climbing[key] = index
        rebuilt_indexes.append(f"cidx:{key[0]}.{key[1]}")
    for name, index in new_key_indexes.items():
        _free_index(db, db.key_indexes[name])
        db.key_indexes[name] = index
        rebuilt_indexes.append(f"kidx:{name}")
    return rebuilt_skts, rebuilt_indexes


def _free_pages(db: HiddenDatabase, pages: list[int]) -> None:
    for lpage in pages:
        db.device.ftl.free(lpage)


def _free_heap(db: HiddenDatabase, heap: HeapTable) -> None:
    _free_pages(db, heap.pages)
    _free_pages(db, heap._pk_pages)


def _free_index(db: HiddenDatabase, index: ClimbingIndex) -> None:
    for file in index._files:
        if file is not None:
            _free_pages(db, file.pages)
