"""The hidden database living on the smart USB device.

One object bundles everything device-resident: the heaps (PKs, FKs and
hidden columns of every table), the Subtree Key Tables, the climbing
indexes on hidden attributes, the key (PK) climbing indexes used for ID
conversion, and the statistics over device columns.  Loading happens once
"in a secure setting" (Section 2); all load-time I/O is still charged to
the device so the storage/Flash-cost benchmarks are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.statistics import StatisticsCollector, TableStats
from repro.catalog.tree import SchemaTree
from repro.hardware.device import SmartUsbDevice
from repro.index.climbing import ClimbingIndex
from repro.index.skt import SubtreeKeyTable
from repro.storage.heap import HeapTable


@dataclass
class StorageReport:
    """Flash footprint per structure (the paper's 'extra cost in terms
    of Flash storage')."""

    heap_bytes: dict[str, int] = field(default_factory=dict)
    skt_bytes: dict[str, int] = field(default_factory=dict)
    index_bytes: dict[str, int] = field(default_factory=dict)

    @property
    def base_total(self) -> int:
        return sum(self.heap_bytes.values())

    @property
    def index_total(self) -> int:
        return sum(self.skt_bytes.values()) + sum(self.index_bytes.values())


class HiddenDatabase:
    """Device-resident storage, indexes and statistics."""

    def __init__(self, device: SmartUsbDevice, tree: SchemaTree):
        self.device = device
        self.tree = tree
        self.heaps: dict[str, HeapTable] = {}
        self.skts: dict[str, SubtreeKeyTable] = {}
        #: (table, column) -> climbing index on a hidden attribute.
        self.climbing: dict[tuple[str, str], ClimbingIndex] = {}
        #: table -> climbing index on its primary key (ID conversion).
        self.key_indexes: dict[str, ClimbingIndex] = {}
        #: statistics over device columns (hidden attrs, PKs, FKs).
        self.stats: dict[str, TableStats] = {}

    def referenced_pages(self) -> set[int]:
        """Every logical page the catalog currently points at.

        The FTL map of a consistent device is exactly this set; pages
        mapped but not referenced are orphans (e.g. a rebuild cut short
        by power loss) and are reclaimed by the mount-time orphan sweep.
        """
        pages: set[int] = set()
        for heap in self.heaps.values():
            pages.update(heap.pages)
            pages.update(heap._pk_pages)
        for skt in self.skts.values():
            pages.update(skt.pages)
        for index in (*self.climbing.values(), *self.key_indexes.values()):
            for file in index._files:
                if file is not None:
                    pages.update(file.pages)
        return pages

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    @classmethod
    def load(
        cls,
        device: SmartUsbDevice,
        tree: SchemaTree,
        rows_by_table: dict[str, list],
        index_columns: list[tuple[str, str]] | None = None,
        build_key_indexes: bool = True,
    ) -> "HiddenDatabase":
        """Load full rows (schema column order) and build all structures.

        ``index_columns`` selects which hidden attributes get climbing
        indexes; by default every hidden non-FK attribute gets one.
        Rows must be sorted by primary key (the secure loader's job).
        """
        db = cls(device, tree)
        for table_def in tree.schema:
            name = table_def.name.lower()
            if name not in rows_by_table:
                raise ValueError(f"no rows provided for table {name!r}")
            device_cols = table_def.device_columns()
            source_idx = [
                table_def.column_index(c.name) for c in device_cols
            ]
            collector = StatisticsCollector(
                table=name,
                column_names=[c.name for c in device_cols],
                dtypes=[c.dtype for c in device_cols],
            )

            def device_rows(rows=rows_by_table[name], idx=source_idx,
                            coll=collector):
                for row in rows:
                    reduced = tuple(row[i] for i in idx)
                    coll.add(reduced)
                    yield reduced

            heap = HeapTable(
                device, name, table_def.device_codec(), pk_field=0
            )
            heap.load(device_rows())
            db.heaps[name] = heap
            db.stats[name] = collector.finish()

        for root in tree.skt_roots():
            db.skts[root] = SubtreeKeyTable.build(device, tree, root, db.heaps)

        if index_columns is None:
            index_columns = db.default_index_columns()
        edge_cache: dict = {}
        for table, column in index_columns:
            index = ClimbingIndex.build(
                device, tree, db.heaps, table, column, edge_cache
            )
            db.climbing[(table.lower(), column.lower())] = index
        if build_key_indexes:
            for table_def in tree.schema:
                name = table_def.name.lower()
                if name == tree.root:
                    continue
                index = ClimbingIndex.build(
                    device, tree, db.heaps, name,
                    table_def.pk.name, edge_cache,
                )
                db.key_indexes[name] = index
        return db

    def default_index_columns(self) -> list[tuple[str, str]]:
        """Every hidden, non-FK, non-PK attribute gets a climbing index."""
        result = []
        for table_def in self.tree.schema:
            for column in table_def.columns:
                if (
                    column.hidden
                    and not column.primary_key
                    and column.references is None
                ):
                    result.append((table_def.name.lower(), column.name.lower()))
        return result

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def climbing_index(self, table: str, column: str) -> ClimbingIndex | None:
        return self.climbing.get((table.lower(), column.lower()))

    def key_index(self, table: str) -> ClimbingIndex | None:
        return self.key_indexes.get(table.lower())

    def skt_for_root(self, root: str) -> SubtreeKeyTable | None:
        return self.skts.get(root.lower())

    def table_stats(self, table: str) -> TableStats:
        return self.stats[table.lower()]

    def row_count(self, table: str) -> int:
        return self.heaps[table.lower()].count

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def storage_report(self) -> StorageReport:
        report = StorageReport()
        page = self.device.profile.page_size
        for name, heap in self.heaps.items():
            report.heap_bytes[name] = len(heap.pages) * page
        for root, skt in self.skts.items():
            report.skt_bytes[f"SKT_{root}"] = skt.flash_bytes
        for (table, column), index in self.climbing.items():
            report.index_bytes[f"cidx:{table}.{column}"] = index.flash_bytes
        for table, index in self.key_indexes.items():
            report.index_bytes[f"kidx:{table}"] = index.flash_bytes
        return report
