"""Plan lowering and execution.

The executor turns a logical plan into physical operators bound to one
device, runs it to completion, and returns the result rows together with
the full measurement picture (hardware counter diffs plus per-operator
stats).  Results are handed back in host memory -- this models the secure
rendering path (device display / secure socket), *not* the untrusted USB
link, which the result never crosses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.engine import plan as lp
from repro.engine.database import HiddenDatabase
from repro.engine.metrics import ExecutionMetrics
from repro.engine.operators import (
    BloomProbeOp,
    ClimbingSelectOp,
    ConvertIdsOp,
    DeviceScanSelectOp,
    ExecContext,
    MergeIntersectOp,
    MergeUnionOp,
    Operator,
    PlanExecutionError,
    ProjectOp,
    SktAccessOp,
    SktScanOp,
    StoreOp,
    VisibleSelectOp,
)
from repro.engine.operators.adapt import IdsToTuplesOp
from repro.faults.errors import GhostDBFaultError
from repro.hardware.device import SmartUsbDevice
from repro.obs import Observability, get_logger
from repro.obs.flight import plan_fingerprint
from repro.visible.link import DeviceLink

log = get_logger(__name__)


@dataclass
class ExecConfig:
    """Tunables for one execution."""

    max_fan_in: int = 16
    bloom_fp_target: float = 0.01
    fetch_batch: int = 128
    #: Items per attribution-marked operator batch window.  Purely a
    #: host-side setting: any value must produce bit-identical rows and
    #: simulated hardware counters, larger values just cross the
    #: enter/exit accounting boundary less often.
    exec_batch: int = 256


@dataclass
class QueryResult:
    """Rows plus the full measurement record of one plan execution."""

    rows: list[tuple]
    columns: list[str]
    metrics: ExecutionMetrics
    plan: lp.PlanNode

    @property
    def row_count(self) -> int:
        return len(self.rows)


@dataclass
class DmlResult:
    """Outcome of one UPDATE or DELETE statement."""

    table: str
    kind: str  # "update" | "delete"
    matched: int
    changed: int
    metrics: ExecutionMetrics
    plan: lp.PlanNode


class Executor:
    """Lowers and runs logical plans on one device."""

    def __init__(
        self,
        device: SmartUsbDevice,
        link: DeviceLink,
        db: HiddenDatabase,
        config: ExecConfig | None = None,
        obs: Observability | None = None,
    ):
        self.device = device
        self.link = link
        self.db = db
        self.config = config or ExecConfig()
        self.obs = obs or Observability(clock=device.clock)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def execute(self, root: lp.PlanNode) -> QueryResult:
        """Run a plan to completion and collect measurements."""
        steps = self.execute_steps(root)
        while True:
            try:
                next(steps)
            except StopIteration as stop:
                return stop.value

    def execute_steps(self, root: lp.PlanNode):
        """Generator variant of :meth:`execute` for cooperative scheduling.

        Yields ``None`` once after every drained batch window -- the
        natural preemption point: between windows no operator is
        mid-pull, the attribution stack is empty, and foreign work done
        while suspended is not attributed to this plan's operators.  The
        :class:`QueryResult` is the generator's return value
        (``StopIteration.value``); :meth:`execute` drains it inline, so
        serial behaviour is unchanged.  Closing the generator early
        (``GeneratorExit``) tears the operator tree down through the
        same ``finally`` as any abort, releasing RAM reservations.
        """
        if not isinstance(root, (lp.Project, lp.RowNode)):
            raise PlanExecutionError(
                "plan root must be a Project (or a row node above one)"
            )
        ctx = ExecContext(
            device=self.device,
            link=self.link,
            db=self.db,
            max_fan_in=self.config.max_fan_in,
            bloom_fp_target=self.config.bloom_fp_target,
            fetch_batch=self.config.fetch_batch,
            exec_batch=self._effective_batch(root),
        )
        # Snapshot-reset the RAM high-water mark so each query reports
        # its *own* peak: without this the second query on a session
        # inherits the first query's high water from the shared budget.
        self.device.ram.reset_high_water()
        tracer = self.obs.tracer
        flight = self.obs.flight
        fingerprint = plan_fingerprint(root)
        query_index = self.obs.ledger.next_index
        wall_start = time.perf_counter()
        before = self.device.counters()
        flight.record(
            "query_begin", query=query_index, fingerprint=fingerprint
        )
        with tracer.span("executor.execute", category="engine") as span:
            with tracer.span("executor.lower", category="engine") as lspan:
                operator = self.lower(root, ctx)
                lspan.set("operators", len(ctx.operators))
            try:
                operator.open()
                rows = []
                try:
                    for batch in operator.batches():
                        rows.extend(batch)
                        yield
                finally:
                    # Deterministic teardown on every exit path: stamps
                    # end times on short-circuited subtrees and releases
                    # RAM reservations -- before the counter snapshot,
                    # so close-time charges stay inside the measurement.
                    operator.close()
            except GhostDBFaultError as exc:
                # A clean abort: operator close (plus generator
                # unwinding) releases every RAM allocation; the caller
                # decides whether a remount is needed.  The span records
                # what killed the query; the ledger keeps the aborted
                # query's (real) consumption up to the fault, and the
                # flight recorder journals the abort for the postmortem.
                span.set("aborted", type(exc).__name__)
                after = self.device.counters()
                consumed = ExecutionMetrics.from_counters(
                    before, after, ctx.operators, 0
                )
                self.obs.record_aborted_query(
                    consumed,
                    fingerprint,
                    time.perf_counter() - wall_start,
                    reason=type(exc).__name__,
                )
                flight.record(
                    "query_abort",
                    query=query_index,
                    fingerprint=fingerprint,
                    reason=type(exc).__name__,
                )
                raise
            after = self.device.counters()
            metrics = ExecutionMetrics.from_counters(
                before, after, ctx.operators, len(rows)
            )
            if tracer.enabled:
                self._record_operator_spans(root, span, tracer, set())
            span.set("result_rows", len(rows))
            span.set("flash_page_reads", metrics.flash_page_reads)
            span.set("flash_page_writes", metrics.flash_page_writes)
            span.set("flash_block_erases", metrics.flash_block_erases)
            span.set("usb_messages", metrics.usb_messages)
            span.set("usb_bytes_to_device", metrics.usb_bytes_to_device)
            span.set("usb_bytes_to_host", metrics.usb_bytes_to_host)
            span.set("ram_high_water", metrics.ram_high_water)
            for counter, amount in sorted(ctx.counters.items()):
                span.set(counter, amount)
        flight.record(
            "query_end",
            query=query_index,
            fingerprint=fingerprint,
            rows=len(rows),
        )
        self.obs.record_query_metrics(
            metrics, fingerprint, time.perf_counter() - wall_start
        )
        self.obs.registry.counter("ghostdb_bloom_false_positives_total").inc(
            ctx.counters.get("bloom_recheck_dropped", 0)
        )
        log.debug(
            "executed plan: %d operators, %d rows, %.3f ms simulated",
            len(ctx.operators), len(rows), metrics.elapsed_seconds * 1e3,
        )
        return QueryResult(
            rows=rows,
            columns=root.output_labels(),
            metrics=metrics,
            plan=root,
        )

    def execute_dml(
        self, root: lp.UpdatePlan | lp.DeletePlan, site
    ) -> DmlResult:
        """Run a DML plan: scan-match-rebuild with full measurement.

        The statement executes as a rebuild transaction (see
        :mod:`repro.engine.dml`); hardware counter diffs are collected
        the same way :meth:`execute` does for queries, so DML cost shows
        up in benches, the ledger and the flight recorder.
        """
        from repro.engine import dml

        kind = "update" if isinstance(root, lp.UpdatePlan) else "delete"
        self.device.ram.reset_high_water()
        flight = self.obs.flight
        fingerprint = plan_fingerprint(root)
        wall_start = time.perf_counter()
        before = self.device.counters()
        flight.record(
            "dml_begin", statement=kind, table=root.bound.table,
            fingerprint=fingerprint,
        )
        with self.obs.tracer.span("executor.dml", category="engine") as span:
            span.set("kind", kind)
            span.set("table", root.bound.table)
            try:
                if kind == "update":
                    matched, changed = dml.run_update(
                        self.db, site, root.bound
                    )
                else:
                    matched, changed = dml.run_delete(
                        self.db, site, root.bound
                    )
            except GhostDBFaultError as exc:
                span.set("aborted", type(exc).__name__)
                after = self.device.counters()
                consumed = ExecutionMetrics.from_counters(
                    before, after, [], 0
                )
                self.obs.record_aborted_query(
                    consumed,
                    fingerprint,
                    time.perf_counter() - wall_start,
                    reason=type(exc).__name__,
                )
                flight.record(
                    "dml_abort",
                    statement=kind,
                    table=root.bound.table,
                    fingerprint=fingerprint,
                    reason=type(exc).__name__,
                )
                raise
            after = self.device.counters()
            metrics = ExecutionMetrics.from_counters(before, after, [], matched)
            span.set("matched", matched)
            span.set("changed", changed)
            span.set("flash_page_reads", metrics.flash_page_reads)
            span.set("flash_page_writes", metrics.flash_page_writes)
            span.set("flash_block_erases", metrics.flash_block_erases)
            span.set("ram_high_water", metrics.ram_high_water)
        flight.record(
            "dml_end",
            statement=kind,
            table=root.bound.table,
            fingerprint=fingerprint,
            matched=matched,
            changed=changed,
        )
        self.obs.record_query_metrics(
            metrics, fingerprint, time.perf_counter() - wall_start
        )
        log.debug(
            "executed %s on %s: %d matched, %d changed, %.3f ms simulated",
            kind, root.bound.table, matched, changed,
            metrics.elapsed_seconds * 1e3,
        )
        return DmlResult(
            table=root.bound.table,
            kind=kind,
            matched=matched,
            changed=changed,
            metrics=metrics,
            plan=root,
        )

    def _effective_batch(self, root: lp.PlanNode) -> int:
        """The batch-window size this plan actually runs with.

        Two plan shapes get pinned to 1 (faithful per-tuple pulls):

        * plans containing a ``Limit`` -- the limit truncates demand at
          an arbitrary point, and a batch window would run the subtree
          up to a window ahead of that point, changing what the
          simulated hardware (and the spy) observes;
        * runs with a fault injector attached -- fault schedules fire on
          exact hardware-operation indices, so even a reordering of
          operations within a window would change which operation a
          scheduled fault hits.

        Everything else runs at the configured window size, where every
        batched edge is drained completely and totals are order-independent.
        """
        if self.device.faults is not None:
            return 1
        if any(isinstance(node, lp.Limit) for node in root.walk()):
            return 1
        return max(1, self.config.exec_batch)

    def _record_operator_spans(
        self, node: lp.PlanNode, parent, tracer, seen: set
    ) -> None:
        """Rebuild the operator tree as nested trace spans.

        Uses the first-pull / last-exit stamps collected by
        :class:`~repro.engine.operators.base.TimeAttribution`; those
        intervals nest by plan structure, so the trace mirrors the plan.
        A plan node lowered to a no-op shares its child's stats object
        and is skipped (``seen`` tracks stats identity, not node
        identity).
        """
        stats = getattr(node, "_measured", None)
        span = None
        if stats is not None and id(stats) not in seen:
            seen.add(id(stats))
            attrs = {
                "detail": stats.detail,
                "tuples_out": stats.tuples_out,
                "self_sim_ms": stats.self_seconds * 1e3,
                "self_wall_ms": stats.self_wall_seconds * 1e3,
                "ram_bytes": stats.ram_bytes,
                "finished": stats.finished,
            }
            attrs.update(stats.attrs)
            if stats.started_sim is None:
                # Registered but never pulled (e.g. short-circuited by a
                # parent): a zero-length marker at the parent's start.
                attrs["pulled"] = False
                start_sim = end_sim = parent.start_sim
                start_wall = end_wall = parent.start_wall
            else:
                start_sim = stats.started_sim
                end_sim = (
                    stats.ended_sim
                    if stats.ended_sim is not None
                    else stats.started_sim
                )
                start_wall = stats.started_wall
                end_wall = (
                    stats.ended_wall
                    if stats.ended_wall is not None
                    else stats.started_wall
                )
            span = tracer.record(
                f"op:{stats.name}",
                "operator",
                start_sim=start_sim,
                end_sim=end_sim,
                start_wall=start_wall,
                end_wall=end_wall,
                attrs=attrs,
                parent=parent,
            )
        for child in node.children():
            self._record_operator_spans(
                child, span if span is not None else parent, tracer, seen
            )

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------

    def lower(self, node: lp.PlanNode, ctx: ExecContext) -> Operator:
        operator = self._lower(node, ctx)
        # Remember the physical stats on the logical node so EXPLAIN
        # ANALYZE can show estimated-vs-measured side by side.
        node._measured = operator.stats
        return operator

    def _lower(self, node: lp.PlanNode, ctx: ExecContext) -> Operator:
        if isinstance(node, lp.ClimbingSelect):
            index = self.db.climbing_index(
                node.predicate.table, node.predicate.column
            )
            if index is None:
                raise PlanExecutionError(
                    f"no climbing index on "
                    f"{node.predicate.table}.{node.predicate.column}"
                )
            return ClimbingSelectOp(ctx, index, node.predicate, node.target_table)

        if isinstance(node, lp.VisibleSelect):
            return VisibleSelectOp(ctx, node.predicate)

        if isinstance(node, lp.DeviceScanSelect):
            return DeviceScanSelectOp(ctx, node.table, node.predicates)

        if isinstance(node, lp.ConvertIds):
            child = self.lower(node.child, ctx)
            from_table = node.child.output_table
            if from_table == node.target_table.lower():
                return child
            key_index = self.db.key_index(from_table)
            if key_index is None:
                raise PlanExecutionError(
                    f"no key climbing index on {from_table!r}"
                )
            return ConvertIdsOp(ctx, child, key_index, node.target_table)

        if isinstance(node, lp.MergeIntersect):
            children = [self.lower(c, ctx) for c in node.inputs]
            return MergeIntersectOp(ctx, children)

        if isinstance(node, lp.MergeUnion):
            children = [self.lower(c, ctx) for c in node.inputs]
            return MergeUnionOp(ctx, children)

        if isinstance(node, lp.SktAccess):
            skt = self.db.skt_for_root(node.skt_root)
            if skt is None:
                raise PlanExecutionError(
                    f"no SKT rooted at {node.skt_root!r}"
                )
            node._tables = skt.tables
            if node.child is None:
                return SktScanOp(ctx, skt)
            child = self.lower(node.child, ctx)
            if node.child.output_table != skt.root:
                raise PlanExecutionError(
                    f"SKT_{skt.root} needs {skt.root} ids, got "
                    f"{node.child.output_table!r}"
                )
            return SktAccessOp(ctx, skt, child, node.expected_count)

        if isinstance(node, lp.IdsToTuples):
            child = self.lower(node.child, ctx)
            return IdsToTuplesOp(ctx, child, node.child.output_table)

        if isinstance(node, lp.BloomProbe):
            child = self.lower(node.child, ctx)
            tables = node.child.output_tables
            try:
                position = tables.index(node.predicate.table)
            except ValueError:
                raise PlanExecutionError(
                    f"BloomProbe on {node.predicate.table!r} but tuples "
                    f"cover {tables}"
                ) from None
            return BloomProbeOp(
                ctx, child, node.predicate, position, node.expected_ids
            )

        if isinstance(node, lp.Store):
            child = self.lower(node.child, ctx)
            return StoreOp(ctx, child, arity=len(node.child.output_tables))

        if isinstance(node, lp.Project):
            child = self.lower(node.child, ctx)
            return ProjectOp(
                ctx,
                child,
                tables=node.child.output_tables,
                projections=node.projections,
                visible_recheck=node.visible_recheck,
                residual_hidden=node.residual_hidden,
            )

        if isinstance(node, lp.Aggregate):
            from repro.engine.operators.rows import AggregateOp

            child = self.lower(node.child, ctx)
            return AggregateOp(
                ctx,
                child,
                group_indexes=node.group_indexes,
                aggregates=node.aggregates,
                output_items=node.output_items,
                input_dtypes=node.input_dtypes,
                having=node.having,
            )

        if isinstance(node, lp.OrderBy):
            from repro.engine.operators.rows import OrderByOp

            child = self.lower(node.child, ctx)
            return OrderByOp(
                ctx, child, keys=node.keys, row_dtypes=node.row_dtypes
            )

        if isinstance(node, lp.Limit):
            from repro.engine.operators.rows import LimitOp

            child = self.lower(node.child, ctx)
            return LimitOp(ctx, child, count=node.count)

        raise PlanExecutionError(f"unknown plan node {type(node).__name__}")
