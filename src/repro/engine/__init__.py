"""Device-side query engine.

Logical plans (:mod:`repro.engine.plan`) are trees of the paper's
high-level operators -- climbing-index selections, visible selections
received over USB, ID conversions, sorted-list merges, SKT access, Bloom
probes, store and project.  The executor lowers them onto pull-based
physical operators that charge every flash read, USB byte, RAM byte and
CPU cycle to the simulated device, and reports the per-operator
statistics the demo GUI shows in its popups (tuples processed, RAM
consumption, processing time).
"""

from repro.engine.database import HiddenDatabase
from repro.engine.executor import ExecConfig, Executor, QueryResult
from repro.engine.metrics import ExecutionMetrics, OperatorStats
from repro.engine import plan

__all__ = [
    "ExecConfig",
    "ExecutionMetrics",
    "Executor",
    "HiddenDatabase",
    "OperatorStats",
    "QueryResult",
    "plan",
]
