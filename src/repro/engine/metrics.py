"""Execution metrics: what the demo GUI's popups and charts show.

Figure 6 of the paper plots per-plan execution time; clicking an operator
"displays a popup with additional statistics about this operator (number
of processed tuples, local RAM consumption and processing time)".
:class:`OperatorStats` is that popup; :class:`ExecutionMetrics` is the
whole-query view with the hardware-level breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.clock import TimeBreakdown
from repro.hardware.device import DeviceCounters


@dataclass
class OperatorStats:
    """Per-operator statistics collected by the executor."""

    name: str
    detail: str = ""
    tuples_out: int = 0
    #: Attribution-marked batch windows this operator emitted.  With the
    #: vectorized protocol the enter/exit overhead scales with this, not
    #: with :attr:`tuples_out` -- the whole point of batching.
    batches_out: int = 0
    #: Simulated seconds attributable to this operator alone (its own
    #: flash/USB/CPU charges, excluding time spent inside its children).
    self_seconds: float = 0.0
    #: Host wall seconds spent inside this operator alone -- what the
    #: *simulator* paid, as opposed to what the simulated device paid.
    self_wall_seconds: float = 0.0
    #: Slices of :attr:`self_seconds` by hardware category, plus the raw
    #: flash/USB event counts this operator alone triggered.  These feed
    #: the EXPLAIN ANALYZE estimated-vs-actual scorecard.
    self_flash_seconds: float = 0.0
    self_usb_seconds: float = 0.0
    flash_page_reads: int = 0
    flash_page_writes: int = 0
    usb_messages: int = 0
    #: Buffer-pool lookups attributed to this operator's windows.  A
    #: miss that fills the pool inside this operator's window stamps
    #: both the miss *and* the flash read here -- the reading operator
    #: pays for the cold fill, not whoever re-reads the page later.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Peak bytes of device RAM this operator allocated for itself.
    ram_bytes: int = 0
    finished: bool = False
    #: Simulated-clock timestamps of the first pull and the last
    #: activity, stamped by
    #: :class:`~repro.engine.operators.base.TimeAttribution`; ``None``
    #: until the operator is first pulled.  ``Operator.close()``
    #: guarantees every pulled operator gets end stamps even when a
    #: parent (``Limit``, a fault abort) short-circuited it.  These
    #: intervals nest by plan structure, which is what turns the stats
    #: into trace spans.
    started_sim: float | None = None
    ended_sim: float | None = None
    started_wall: float | None = None
    ended_wall: float | None = None
    #: Operator-specific shape/count attributes (Bloom filter geometry,
    #: merge fan-in, ...) surfaced on the operator's trace span.
    attrs: dict = field(default_factory=dict)

    def line(self) -> str:
        return (
            f"{self.name:<24} tuples={self.tuples_out:<9} "
            f"time={self.self_seconds * 1000:9.3f} ms "
            f"ram={self.ram_bytes:7d} B"
        )


@dataclass
class ExecutionMetrics:
    """Whole-query measurements, diffed across the run."""

    #: Simulated device time, by category, consumed by this query.
    time: TimeBreakdown = field(default_factory=TimeBreakdown)
    flash_page_reads: int = 0
    flash_page_writes: int = 0
    flash_block_erases: int = 0
    usb_messages: int = 0
    usb_bytes_to_device: int = 0
    usb_bytes_to_host: int = 0
    ram_high_water: int = 0
    result_rows: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    operators: list[OperatorStats] = field(default_factory=list)

    @property
    def elapsed_seconds(self) -> float:
        return self.time.total

    @property
    def cache_hit_rate(self) -> float:
        """Buffer-pool hit rate over this query (0.0 when untouched)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @classmethod
    def from_counters(
        cls,
        before: DeviceCounters,
        after: DeviceCounters,
        operators: list[OperatorStats],
        result_rows: int,
    ) -> "ExecutionMetrics":
        return cls(
            time=after.time - before.time,
            flash_page_reads=after.flash.page_reads - before.flash.page_reads,
            flash_page_writes=after.flash.page_writes - before.flash.page_writes,
            flash_block_erases=(
                after.flash.block_erases - before.flash.block_erases
            ),
            usb_messages=after.usb_messages - before.usb_messages,
            usb_bytes_to_device=(
                after.usb_bytes_to_device - before.usb_bytes_to_device
            ),
            usb_bytes_to_host=(
                after.usb_bytes_to_host - before.usb_bytes_to_host
            ),
            ram_high_water=after.ram_high_water,
            result_rows=result_rows,
            cache_hits=after.cache.hits - before.cache.hits,
            cache_misses=after.cache.misses - before.cache.misses,
            operators=operators,
        )

    def report(self) -> str:
        """A human-readable execution report (the demo's popup data)."""
        lines = [
            f"execution time {self.elapsed_seconds * 1000:.3f} ms "
            f"(flash read {self.time.flash_read * 1000:.3f}, "
            f"write {self.time.flash_write * 1000:.3f}, "
            f"erase {self.time.flash_erase * 1000:.3f}, "
            f"usb {self.time.usb * 1000:.3f}, "
            f"cpu {self.time.cpu * 1000:.3f})",
            f"flash: {self.flash_page_reads} page reads, "
            f"{self.flash_page_writes} page writes, "
            f"{self.flash_block_erases} erases",
            f"usb: {self.usb_messages} messages, "
            f"{self.usb_bytes_to_device} B in, "
            f"{self.usb_bytes_to_host} B out",
            f"ram high water: {self.ram_high_water} B",
            f"buffer pool: {self.cache_hits} hits, "
            f"{self.cache_misses} misses "
            f"({self.cache_hit_rate:.0%} hit rate)",
            f"result rows: {self.result_rows}",
            "operators:",
        ]
        lines.extend("  " + op.line() for op in self.operators)
        return "\n".join(lines)
