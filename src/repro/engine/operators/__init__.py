"""Physical operators: pull-based iterators over the simulated device."""

from repro.engine.operators.base import ExecContext, Operator, PlanExecutionError
from repro.engine.operators.climbing_select import ClimbingSelectOp
from repro.engine.operators.visible_select import VisibleSelectOp
from repro.engine.operators.convert import ConvertIdsOp
from repro.engine.operators.merge import MergeIntersectOp, MergeUnionOp
from repro.engine.operators.skt_access import SktAccessOp, SktScanOp
from repro.engine.operators.bloom_probe import BloomProbeOp
from repro.engine.operators.scan import DeviceScanSelectOp
from repro.engine.operators.store import StoreOp
from repro.engine.operators.project import ProjectOp

__all__ = [
    "BloomProbeOp",
    "ClimbingSelectOp",
    "ConvertIdsOp",
    "DeviceScanSelectOp",
    "ExecContext",
    "MergeIntersectOp",
    "MergeUnionOp",
    "Operator",
    "PlanExecutionError",
    "ProjectOp",
    "SktAccessOp",
    "SktScanOp",
    "StoreOp",
    "VisibleSelectOp",
]
