"""SKT access: turn qualifying root IDs into full subtree key tuples.

"...finally accessing the SKT_Prescription to get the resulting tuples."
The incoming root IDs are sorted, so SKT rows are fetched in storage
order; dense hit patterns amortise full-page reads across many hits,
sparse ones use cheap partial reads.  The operator picks per page.
"""

from __future__ import annotations

from itertools import islice

from repro.engine.operators.base import ExecContext, Operator
from repro.index.skt import SubtreeKeyTable
from repro.storage.heap import KeyNotFoundError


class SktAccessOp(Operator):
    """Fetch SKT rows for a sorted stream of root IDs."""

    name = "access-skt"

    def __init__(
        self,
        ctx: ExecContext,
        skt: SubtreeKeyTable,
        child: Operator,
        expected_count: int | None = None,
    ):
        super().__init__(ctx, detail=f"SKT_{skt.root}", children=(child,))
        self.skt = skt
        self.child = child
        self.expected_count = expected_count

    def _open(self):
        self.reserve(self.ctx.device.profile.page_size)

    def _produce(self):
        skt = self.skt
        root_heap = self.ctx.db.heaps[skt.root]
        page = self.ctx.device.profile.page_size
        rows_per_page = page // skt.record_width
        # Dense enough that >=2 hits land on each page?  Then full-page
        # reads through the buffer pool win over per-row partial reads
        # -- but only when a pool exists to hold the page between hits.
        expected = self.expected_count
        use_cache = (
            self.ctx.device.page_cache.enabled
            and expected is not None
            and skt.count > 0
            and expected / skt.count >= 2 / rows_per_page
        )
        with skt.reader("skt-access") as reader:
            for root_id in self.child.rows():
                try:
                    rowid = root_heap.rowid_for_pk(root_id)
                except KeyNotFoundError:
                    continue
                if use_cache:
                    raw = reader.record_cached(rowid)
                else:
                    raw = reader.record(rowid)
                self.ctx.device.chip.charge(
                    "decode_field", len(skt.tables)
                )
                yield skt.decode(raw)

    def _produce_batches(self, cap: int):
        """Vectorized SKT access: resolve and fetch one child window of
        root IDs, then bulk-decode the subtree key tuples.

        Flash operations (PK binary-search probes, record fetches) happen
        per ID in child-stream order, exactly as the per-item path inside
        one batch window; only the per-record decode charges are bulked.
        """
        skt = self.skt
        root_heap = self.ctx.db.heaps[skt.root]
        page = self.ctx.device.profile.page_size
        rows_per_page = page // skt.record_width
        expected = self.expected_count
        use_cache = (
            self.ctx.device.page_cache.enabled
            and expected is not None
            and skt.count > 0
            and expected / skt.count >= 2 / rows_per_page
        )
        chip = self.ctx.device.chip
        ntables = len(skt.tables)
        with skt.reader("skt-access") as reader:
            fetch = reader.record_cached if use_cache else reader.record
            out: list[tuple] = []
            for batch in self.child.batches():
                raws = []
                for root_id in batch:
                    try:
                        rowid = root_heap.rowid_for_pk(root_id)
                    except KeyNotFoundError:
                        continue
                    raws.append(fetch(rowid))
                if not raws:
                    continue
                chip.charge("decode_field", len(raws) * ntables)
                out.extend(skt.decode(raw) for raw in raws)
                while len(out) >= cap:
                    yield out[:cap]
                    del out[:cap]
            if out:
                yield out


class SktScanOp(Operator):
    """Full SKT scan: the root of a pure Post-filtering plan.

    When no predicate produces a root ID list cheaply, the plan streams
    every subtree key tuple and lets Bloom probes do the filtering.
    """

    name = "scan-skt"

    def __init__(self, ctx: ExecContext, skt: SubtreeKeyTable):
        super().__init__(ctx, detail=f"SKT_{skt.root} (full scan)")
        self.skt = skt

    def _open(self):
        self.reserve(self.ctx.device.profile.page_size)

    def _produce(self):
        skt = self.skt
        with skt.reader("skt-scan") as reader:
            for raw in reader.scan():
                self.ctx.device.chip.charge(
                    "decode_field", len(skt.tables)
                )
                yield skt.decode(raw)

    def _produce_batches(self, cap: int):
        """Vectorized SKT scan: one page's records at a time, decode
        charges bulked per page.  Page reads stay one full read per page
        in scan order; yields happen only when ``cap`` tuples are
        buffered, matching where the per-item window would fill."""
        skt = self.skt
        chip = self.ctx.device.chip
        ntables = len(skt.tables)
        out: list[tuple] = []
        with skt.reader("skt-scan") as reader:
            slots = reader.slots_per_page
            scan = reader.scan()
            try:
                rowid = 0
                while rowid < reader.count:
                    take = min(slots, reader.count - rowid)
                    raws = list(islice(scan, take))
                    rowid += take
                    chip.charge("decode_field", len(raws) * ntables)
                    out.extend(skt.decode(raw) for raw in raws)
                    while len(out) >= cap:
                        yield out[:cap]
                        del out[:cap]
            finally:
                scan.close()
        if out:
            yield out
