"""Projection: assemble final result rows from subtree key tuples.

For each surviving key tuple the projection

* serves primary keys straight from the tuple,
* reads hidden attributes from the device heaps (cheap partial reads via
  a persistent per-table reader),
* fetches visible attributes from the PC in batches, with the visible
  predicates re-checked host-side -- which is also what eliminates Bloom
  false positives: an ID that fails the re-check simply comes back
  absent and its tuple is dropped,
* evaluates residual hidden predicates (e.g. <>) the indexes could not.

The assembled rows never leave the device over the untrusted link; the
session hands them to the secure rendering path.
"""

from __future__ import annotations

from repro.catalog.schema import ColumnDef
from repro.engine.operators.base import ExecContext, Operator, PlanExecutionError
from repro.sql.binder import Predicate
from repro.storage.heap import KeyNotFoundError


class ProjectOp(Operator):
    name = "project"

    def __init__(
        self,
        ctx: ExecContext,
        child: Operator,
        tables: list[str],
        projections: list[tuple[str, ColumnDef]],
        visible_recheck: list[Predicate] | None = None,
        residual_hidden: list[Predicate] | None = None,
    ):
        super().__init__(
            ctx,
            detail=", ".join(f"{t}.{c.name}" for t, c in projections),
            children=(child,),
        )
        self.child = child
        self.tables = [t.lower() for t in tables]
        self.projections = [(t.lower(), c) for t, c in projections]
        self.visible_recheck = visible_recheck or []
        self.residual_hidden = residual_hidden or []
        for table, _column in self.projections:
            if table not in self.tables:
                raise PlanExecutionError(
                    f"projection references {table!r} but the plan's "
                    f"tuples only cover {self.tables}"
                )
        for predicate in self.residual_hidden:
            if predicate.table not in self.tables:
                raise PlanExecutionError(
                    f"residual predicate on {predicate.table!r} not "
                    f"covered by plan tuples {self.tables}"
                )

    def _position(self, table: str) -> int:
        return self.tables.index(table)

    def _open(self):
        self.reserve(self.ctx.fetch_batch * len(self.tables) * 4)

    def _produce(self):
        ctx = self.ctx
        db = ctx.db
        # Fetch grouping stays at ``fetch_batch`` regardless of the
        # execution batch size: the groups decide the observable
        # fetch_values messages, which must not depend on host batching.
        batch_size = ctx.fetch_batch

        # Persistent readers for tables we read hidden fields from.
        hidden_tables = {t for t, c in self.projections if c.hidden}
        hidden_tables |= {p.table for p in self.residual_hidden}
        readers = {
            t: db.heaps[t].reader(f"project:{t}") for t in hidden_tables
        }
        # Group visible needs per table.
        visible_cols: dict[str, list[str]] = {}
        for table, column in self.projections:
            if not column.hidden and not column.primary_key:
                visible_cols.setdefault(table, []).append(
                    column.name.lower()
                )
        recheck_by_table: dict[str, list[Predicate]] = {}
        for predicate in self.visible_recheck:
            recheck_by_table.setdefault(predicate.table, []).append(predicate)
        # Tables we must consult the host about (values or recheck-only).
        fetch_tables = sorted(set(visible_cols) | set(recheck_by_table))

        try:
            batch: list[tuple] = []
            for row in self.child.rows():
                batch.append(row)
                if len(batch) >= batch_size:
                    yield from self._emit_batch(
                        batch, readers, visible_cols, recheck_by_table,
                        fetch_tables,
                    )
                    batch = []
            if batch:
                yield from self._emit_batch(
                    batch, readers, visible_cols, recheck_by_table,
                    fetch_tables,
                )
        finally:
            for reader in readers.values():
                reader.close()

    def _emit_batch(
        self, batch, readers, visible_cols, recheck_by_table, fetch_tables
    ):
        ctx = self.ctx
        db = ctx.db
        # Hidden-field fetch route per table: dense row sets go through
        # the buffer pool (one full-page read serves every field on the
        # page), sparse ones stay on cheap partial reads.  Same density
        # gate as SKT access; ``batch`` is a ``fetch_batch`` window, so
        # the choice is independent of the host-side execution batch.
        dense_tables = set()
        pool = ctx.device.page_cache
        pool_fits = pool.enabled and (
            pool.capacity_pages is None
            or pool.capacity_pages >= max(1, len(readers))
        )
        if pool_fits:
            for table, reader in readers.items():
                if len(batch) * reader.slots_per_page >= 2 * reader.count:
                    dense_tables.add(table)
        # 1. Fetch visible values (and presence under recheck) per table.
        fetched: dict[str, dict[int, tuple]] = {}
        for table in fetch_tables:
            position = self._position(table)
            ids = sorted({row[position] for row in batch})
            fetched[table] = ctx.link.fetch_values(
                table,
                ids,
                visible_cols.get(table, []),
                recheck_by_table.get(table, []),
            )
        # 2. Assemble rows, dropping tuples that failed a recheck or a
        #    residual hidden predicate.
        for row in batch:
            dropped = False
            for table in fetch_tables:
                if row[self._position(table)] not in fetched[table]:
                    dropped = True
                    break
            if dropped:
                # Under a recheck this is (almost always) a Bloom false
                # positive surviving post-filtering; count it for the
                # cross-query metrics.
                if self.visible_recheck:
                    self.ctx.bump("bloom_recheck_dropped")
                continue
            for predicate in self.residual_hidden:
                value = self._hidden_value(
                    readers, predicate.table,
                    row[self._position(predicate.table)],
                    db.tree.table(predicate.table).device_column_index(
                        predicate.column
                    ),
                    cached=predicate.table in dense_tables,
                )
                ctx.device.chip.charge("compare")
                if not predicate.matches(value):
                    dropped = True
                    break
            if dropped:
                continue
            out = []
            for table, column in self.projections:
                key = row[self._position(table)]
                if column.primary_key:
                    out.append(key)
                elif column.hidden:
                    field_idx = db.tree.table(table).device_column_index(
                        column.name
                    )
                    out.append(
                        self._hidden_value(
                            readers, table, key, field_idx,
                            cached=table in dense_tables,
                        )
                    )
                else:
                    col_pos = visible_cols[table].index(column.name.lower())
                    out.append(fetched[table][key][col_pos])
            yield tuple(out)

    def _hidden_value(
        self, readers, table: str, pk: int, field_idx: int,
        cached: bool = False,
    ):
        db = self.ctx.db
        heap = db.heaps[table]
        try:
            rowid = heap.rowid_for_pk(pk)
        except KeyNotFoundError:
            raise PlanExecutionError(
                f"dangling key {pk} for table {table!r} during projection"
            ) from None
        off, width = heap.codec.field_slice(field_idx)
        reader = readers[table]
        fetch = reader.field_cached if cached else reader.field
        raw = fetch(rowid, off, width)
        self.ctx.device.chip.charge("decode_field")
        return heap.codec.types[field_idx].decode(raw)
