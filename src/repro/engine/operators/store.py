"""Store: materialise an intermediate result on flash (Figure 5's Store).

The Post-filtering QEP of Figure 5 stores the (PreID, MedID, VisID)
stream coming out of the SKT access before running it through the Bloom
filters.  Materialising costs flash writes now and reads later, but frees
the plan to build each Bloom filter with the whole remaining RAM -- the
kind of trade the demo invites visitors to experiment with.

Tuples are packed as fixed-width 32-bit ID records; the extent is freed
once the consumer exhausts the replay.
"""

from __future__ import annotations

import struct

from repro.engine.operators.base import ExecContext, Operator
from repro.storage.intlist import ID_WIDTH
from repro.storage.runs import Run, RunReader, RunWriter

_PACK = struct.Struct(">I")


class StoreOp(Operator):
    name = "store"

    def __init__(self, ctx: ExecContext, child: Operator, arity: int):
        super().__init__(
            ctx, detail=f"materialise {arity}-id tuples", children=(child,)
        )
        self.child = child
        self.arity = arity

    def _open(self):
        self.reserve(self.ctx.device.profile.page_size)

    def _produce(self):
        width = self.arity * ID_WIDTH
        writer = RunWriter(self.ctx.device, width, "store")
        stored = 0
        for row in self.child.rows():
            if len(row) != self.arity:
                raise ValueError(
                    f"store expected {self.arity}-id tuples, got {row!r}"
                )
            writer.append(b"".join(_PACK.pack(v) for v in row))
            stored += 1
        run: Run = writer.finish()
        try:
            with RunReader(self.ctx.device, run, "store-replay") as reader:
                for raw in reader:
                    yield tuple(
                        _PACK.unpack_from(raw, i * ID_WIDTH)[0]
                        for i in range(self.arity)
                    )
        finally:
            run.free(self.ctx.device)

    def _produce_batches(self, cap: int):
        """Vectorized store: pack whole child windows, replay the run in
        ``cap``-sized windows of decoded tuples.  Flash writes happen in
        record order during the drain and reads in record order during
        the replay, exactly as the per-item path."""
        record = struct.Struct(f">{self.arity}I")
        writer = RunWriter(self.ctx.device, record.size, "store")
        for batch in self.child.batches():
            for row in batch:
                if len(row) != self.arity:
                    raise ValueError(
                        f"store expected {self.arity}-id tuples, got {row!r}"
                    )
                writer.append(record.pack(*row))
        run: Run = writer.finish()
        try:
            with RunReader(self.ctx.device, run, "store-replay") as reader:
                out: list[tuple] = []
                for raw in reader:
                    out.append(record.unpack(raw))
                    if len(out) >= cap:
                        yield out
                        out = []
                if out:
                    yield out
        finally:
            run.free(self.ctx.device)
