"""ID conversion: climb a sorted ID list to an ancestor level.

"...receiving the two resulting lists of VisID and MedID from outside and
transforming these lists into lists of PreID thanks to the climbing index
on Vis.VisID and Med.MedID" (paper, Section 4).

Each incoming ID costs a directory probe; its posting list (the root IDs
of its subtree partners) joins a bounded-fan-in union.  When the incoming
list is long this degenerates into a multi-pass external merge with flash
spills -- the exact cost that makes Pre-filtering "a poor choice" for
unselective visible predicates and motivates Post-filtering.
"""

from __future__ import annotations

from repro.columns import chunk_ids
from repro.engine.operators.base import ExecContext, Operator, PlanExecutionError
from repro.index.climbing import ClimbingIndex
from repro.index.posting import merge_posting_streams


class ConvertIdsOp(Operator):
    name = "convert-ids"

    def __init__(
        self,
        ctx: ExecContext,
        child: Operator,
        key_index: ClimbingIndex,
        target_table: str,
    ):
        super().__init__(
            ctx,
            detail=(
                f"{key_index.table} ids -> {target_table} ids "
                f"via {key_index.table}.{key_index.column}"
            ),
            children=(child,),
        )
        if not key_index.is_key_index:
            raise PlanExecutionError(
                f"{key_index.table}.{key_index.column} is not a key "
                f"climbing index"
            )
        self.child = child
        self.key_index = key_index
        self.target_table = target_table.lower()

    def _produce(self):
        if self.target_table == self.key_index.table:
            # Converting to the same level is the identity: per-item
            # pass-through so the parent's demand stays exact.
            yield from self.child.unbatched()
            return
        factories = []
        for value in self.child.rows():
            factory = self.key_index.stream_eq(value, self.target_table)
            if factory is not None:
                factories.append(factory)
        if not factories:
            return
        fan_in = self.ctx.fan_in()
        page = self.ctx.device.profile.page_size
        self.reserve(min(len(factories), fan_in) * page + page)
        yield from merge_posting_streams(
            self.ctx.device,
            factories,
            label=f"convert:{self.key_index.table}",
            fan_in=fan_in,
            dedup=True,
        )

    def _produce_batches(self, cap: int):
        # The merged (or identity pass-through) ID stream re-chunked into
        # typed columns; the producer is advanced in the same islice
        # pattern as the default path, so hardware behaviour is untouched.
        yield from chunk_ids(self._produce(), cap)
