"""Sorted-ID merge operators: streaming intersection and union.

The core RAM trick of the paper: every predicate arm yields IDs of the
same table in sorted order, so a conjunction is a multi-way merge that
holds one cursor per arm -- "merging all these PreID lists" costs O(1)
working memory per input regardless of list length.
"""

from __future__ import annotations

from repro.engine.operators.base import ExecContext, Operator, PlanExecutionError

_SENTINEL = object()


class MergeIntersectOp(Operator):
    """Intersection of k sorted duplicate-free ID streams."""

    name = "merge-intersect"

    def __init__(self, ctx: ExecContext, children: list[Operator]):
        if len(children) < 2:
            raise PlanExecutionError("intersection needs at least 2 inputs")
        super().__init__(
            ctx, detail=f"{len(children)} inputs", children=children
        )
        self.stats.attrs["inputs"] = len(children)

    def _produce(self):
        # Per-item pulls: the intersection abandons every arm the moment
        # one of them runs dry, so demand must be exact -- a batch window
        # would run the arms ahead and change the hardware counters.
        streams = [child.unbatched() for child in self.children]
        currents = []
        for stream in streams:
            value = next(stream, _SENTINEL)
            if value is _SENTINEL:
                return  # an empty input empties the intersection
            currents.append(value)
        chip = self.ctx.device.chip
        while True:
            high = max(currents)
            chip.charge("compare", len(currents))
            if all(c == high for c in currents):
                yield high
                for i, stream in enumerate(streams):
                    value = next(stream, _SENTINEL)
                    if value is _SENTINEL:
                        return
                    currents[i] = value
                continue
            for i, stream in enumerate(streams):
                while currents[i] < high:
                    chip.charge("merge_step")
                    value = next(stream, _SENTINEL)
                    if value is _SENTINEL:
                        return
                    currents[i] = value


class MergeUnionOp(Operator):
    """Deduplicating union of k sorted ID streams."""

    name = "merge-union"

    def __init__(self, ctx: ExecContext, children: list[Operator]):
        if not children:
            raise PlanExecutionError("union needs at least 1 input")
        super().__init__(
            ctx, detail=f"{len(children)} inputs", children=children
        )
        self.stats.attrs["inputs"] = len(children)

    def _produce(self):
        import heapq

        # The heap advances one arm at a time but always drains every
        # arm completely, so batch windows (which run a pulled arm up to
        # ``exec_batch`` items ahead) never over-produce here -- the
        # arms keep their own attribution and the per-item pulls are
        # served from the window buffer.
        streams = [child.rows() for child in self.children]
        heap = []
        for idx, stream in enumerate(streams):
            value = next(stream, _SENTINEL)
            if value is not _SENTINEL:
                heap.append((value, idx))
        heapq.heapify(heap)
        chip = self.ctx.device.chip
        last = _SENTINEL
        while heap:
            value, idx = heapq.heappop(heap)
            chip.charge("merge_step")
            if value != last:
                yield value
                last = value
            nxt = next(streams[idx], _SENTINEL)
            if nxt is not _SENTINEL:
                heapq.heappush(heap, (nxt, idx))
