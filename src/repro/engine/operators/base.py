"""Operator base class, execution context and time attribution.

Physical operators are pull-based generators.  All their costs land on
the device's single simulated clock; to produce the per-operator "popup"
statistics the demo shows, the executor attributes clock advances to
whichever operator is currently on top of the execution stack -- a parent
iterating its child is off the top while the child runs, so each operator
accumulates only its *own* time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.engine.metrics import OperatorStats
from repro.hardware.device import SmartUsbDevice
from repro.visible.link import DeviceLink


class PlanExecutionError(RuntimeError):
    """A plan could not be executed (bad shape, missing index, ...)."""


class TimeAttribution:
    """Attributes simulated-clock (and wall-clock) advances to the
    active operator, and stamps each operator's first-pull / last-exit
    times on both timelines so the tracer can rebuild nested spans."""

    def __init__(self, device: SmartUsbDevice):
        self.device = device
        self._stack: list[OperatorStats] = []
        # The totals dict is stable across clock.reset(), so reading it
        # directly keeps this hot path allocation-free.
        self._totals = device.clock.totals
        self._last_wall = time.perf_counter()
        self._last = 0.0
        self._last_flash = 0.0
        self._last_usb = 0.0
        self._last_reads = 0
        self._last_writes = 0
        self._last_msgs = 0
        self._mark()

    def _mark(self) -> None:
        totals = self._totals
        flash_now = (
            totals["flash_read"]
            + totals["flash_write"]
            + totals["flash_erase"]
        )
        usb_now = totals["usb"]
        now = flash_now + usb_now + totals["cpu"]
        wall = time.perf_counter()
        flash_stats = self.device.flash.stats
        reads = flash_stats.page_reads
        writes = flash_stats.page_writes
        msgs = self.device.usb.message_count
        if self._stack:
            top = self._stack[-1]
            top.self_seconds += now - self._last
            top.self_wall_seconds += wall - self._last_wall
            top.self_flash_seconds += flash_now - self._last_flash
            top.self_usb_seconds += usb_now - self._last_usb
            top.flash_page_reads += reads - self._last_reads
            top.flash_page_writes += writes - self._last_writes
            top.usb_messages += msgs - self._last_msgs
        self._last = now
        self._last_wall = wall
        self._last_flash = flash_now
        self._last_usb = usb_now
        self._last_reads = reads
        self._last_writes = writes
        self._last_msgs = msgs

    def enter(self, stats: OperatorStats) -> None:
        self._mark()
        if stats.started_sim is None:
            stats.started_sim = self._last
            stats.started_wall = self._last_wall
        self._stack.append(stats)

    def exit(self, stats: OperatorStats) -> None:
        self._mark()
        if not self._stack or self._stack[-1] is not stats:
            raise PlanExecutionError(
                f"time-attribution stack corrupted around {stats.name!r}"
            )
        stats.ended_sim = self._last
        stats.ended_wall = self._last_wall
        self._stack.pop()


@dataclass
class ExecContext:
    """Everything an operator needs to run on the hidden side."""

    device: SmartUsbDevice
    link: DeviceLink
    db: "HiddenDatabase"  # noqa: F821 - circular import avoided
    attribution: TimeAttribution = None
    operators: list[OperatorStats] = field(default_factory=list)
    #: Free-form execution counters operators bump (Bloom probe counts,
    #: recheck drops, ...); the executor folds them into the metrics
    #: registry and the query span.
    counters: dict[str, int] = field(default_factory=dict)
    #: Hard cap on merge fan-in regardless of free RAM.
    max_fan_in: int = 16
    #: Target false-positive rate when sizing Bloom filters.
    bloom_fp_target: float = 0.01
    #: Rows per visible-value fetch batch during projection.
    fetch_batch: int = 128

    def __post_init__(self):
        if self.attribution is None:
            self.attribution = TimeAttribution(self.device)

    def fan_in(self) -> int:
        """Merge fan-in affordable right now: one page buffer per input
        stream plus one output buffer, inside the free RAM."""
        page = self.device.profile.page_size
        affordable = self.device.ram.available // page - 2
        return max(2, min(self.max_fan_in, affordable))

    def register(self, stats: OperatorStats) -> None:
        self.operators.append(stats)

    def bump(self, counter: str, amount: int = 1) -> None:
        """Accumulate one named execution counter for this query."""
        self.counters[counter] = self.counters.get(counter, 0) + amount


class Operator:
    """Base class: subclasses implement ``_produce()`` as a generator."""

    name = "operator"

    def __init__(self, ctx: ExecContext, detail: str = ""):
        self.ctx = ctx
        self.stats = OperatorStats(name=self.name, detail=detail)
        ctx.register(self.stats)

    def _produce(self):
        raise NotImplementedError

    def rows(self):
        """Iterate this operator's output with time attribution."""
        inner = self._produce()
        attribution = self.ctx.attribution
        while True:
            attribution.enter(self.stats)
            try:
                item = next(inner)
            except StopIteration:
                attribution.exit(self.stats)
                self.stats.finished = True
                return
            except BaseException:
                attribution.exit(self.stats)
                raise
            attribution.exit(self.stats)
            self.stats.tuples_out += 1
            yield item

    def note_ram(self, size: int) -> None:
        """Record this operator's own peak RAM usage."""
        self.stats.ram_bytes = max(self.stats.ram_bytes, size)
