"""Operator base class, execution context and time attribution.

Physical operators are pull-based generators producing *batches*: the
transport surface is :meth:`Operator.batches`, which re-chunks the
operator's per-item ``_produce()`` generator into fixed-size lists
(``ExecContext.exec_batch`` items, default 256).  All costs land on the
device's single simulated clock; to produce the per-operator "popup"
statistics the demo shows, the executor attributes clock advances to
whichever operator is currently on top of the execution stack -- a parent
iterating its child is off the top while the child runs, so each operator
accumulates only its *own* time.  Attribution marks happen once per
batch window, not once per tuple, which is what makes large scans cheap
on the host: batching is purely a host-side execution detail and must
never change what the simulated device does.

Operators follow an explicit lifecycle: ``open()`` (declare static RAM
reservations, recursively), ``batches()`` / ``unbatched()`` / ``rows()``
(produce), ``close()`` (deterministically tear down every live producer
-- including subtrees short-circuited by a parent such as ``Limit`` --
stamp end times, and release RAM reservations).

Consumers choose between two pull surfaces:

* :meth:`Operator.batches` / :meth:`Operator.rows` -- attribution-marked
  windows.  A window pulls up to ``exec_batch`` items from the producer,
  so it may run the producer *ahead* of the consumer; only correct when
  the consumer drains the operator completely (or bounds demand exactly
  via ``batches(limit=...)``).
* :meth:`Operator.unbatched` -- unmarked per-item pulls whose costs
  attribute to whichever operator currently holds the attribution stack.
  For consumers with data-dependent demand (merge-intersect abandoning
  arms, aggregation breaking on RAM exhaustion) where running the
  producer ahead would change hardware counters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import islice
from typing import TYPE_CHECKING

from repro.engine.metrics import OperatorStats
from repro.hardware.device import SmartUsbDevice
from repro.visible.link import DeviceLink

if TYPE_CHECKING:
    from repro.engine.database import HiddenDatabase


class PlanExecutionError(RuntimeError):
    """A plan could not be executed (bad shape, missing index, ...)."""


class TimeAttribution:
    """Attributes simulated-clock (and wall-clock) advances to the
    active operator, and stamps each operator's first-pull / last-exit
    times on both timelines so the tracer can rebuild nested spans."""

    def __init__(self, device: SmartUsbDevice):
        self.device = device
        self._stack: list[OperatorStats] = []
        # The totals dict is stable across clock.reset(), so reading it
        # directly keeps this hot path allocation-free.
        self._totals = device.clock.totals
        #: How many times :meth:`_mark` has run -- the per-batch (was:
        #: per-tuple) overhead the batch protocol exists to amortise.
        self.marks = 0
        self._last_wall = time.perf_counter()
        self._last = 0.0
        self._last_flash = 0.0
        self._last_usb = 0.0
        self._last_reads = 0
        self._last_writes = 0
        self._last_msgs = 0
        self._last_hits = 0
        self._last_misses = 0
        self._mark()

    def _mark(self) -> None:
        self.marks += 1
        totals = self._totals
        flash_now = (
            totals["flash_read"]
            + totals["flash_write"]
            + totals["flash_erase"]
        )
        usb_now = totals["usb"]
        now = flash_now + usb_now + totals["cpu"]
        wall = time.perf_counter()
        flash_stats = self.device.flash.stats
        reads = flash_stats.page_reads
        writes = flash_stats.page_writes
        msgs = self.device.usb.message_count
        # Sample the buffer pool through the device, not a cached object:
        # reset_measurements() swaps in fresh stats objects.
        cache_stats = self.device.page_cache.stats
        hits = cache_stats.hits
        misses = cache_stats.misses
        if self._stack:
            top = self._stack[-1]
            top.self_seconds += now - self._last
            top.self_wall_seconds += wall - self._last_wall
            top.self_flash_seconds += flash_now - self._last_flash
            top.self_usb_seconds += usb_now - self._last_usb
            top.flash_page_reads += reads - self._last_reads
            top.flash_page_writes += writes - self._last_writes
            top.usb_messages += msgs - self._last_msgs
            top.cache_hits += hits - self._last_hits
            top.cache_misses += misses - self._last_misses
        self._last = now
        self._last_wall = wall
        self._last_flash = flash_now
        self._last_usb = usb_now
        self._last_reads = reads
        self._last_writes = writes
        self._last_msgs = msgs
        self._last_hits = hits
        self._last_misses = misses

    def sim_now(self) -> float:
        """The simulated clock right now, without attributing anything."""
        totals = self._totals
        return (
            totals["flash_read"]
            + totals["flash_write"]
            + totals["flash_erase"]
            + totals["usb"]
            + totals["cpu"]
        )

    def stamp_start(self, stats: OperatorStats) -> None:
        """Stamp an operator's first pull without an attribution window.

        Used by :meth:`Operator.unbatched`, whose per-item costs attribute
        to the consumer on the stack but whose span still needs bounds.
        """
        if stats.started_sim is None:
            stats.started_sim = self.sim_now()
            stats.started_wall = time.perf_counter()

    def stamp_end(self, stats: OperatorStats) -> None:
        """Stamp an operator's last activity (exhaustion or teardown)."""
        if stats.started_sim is not None:
            stats.ended_sim = self.sim_now()
            stats.ended_wall = time.perf_counter()

    def enter(self, stats: OperatorStats) -> None:
        self._mark()
        if stats.started_sim is None:
            stats.started_sim = self._last
            stats.started_wall = self._last_wall
        self._stack.append(stats)

    def exit(self, stats: OperatorStats) -> None:
        self._mark()
        if not self._stack or self._stack[-1] is not stats:
            raise PlanExecutionError(
                f"time-attribution stack corrupted around {stats.name!r}"
            )
        stats.ended_sim = self._last
        stats.ended_wall = self._last_wall
        self._stack.pop()


@dataclass
class ExecContext:
    """Everything an operator needs to run on the hidden side."""

    device: SmartUsbDevice
    link: DeviceLink | None
    db: HiddenDatabase | None
    attribution: TimeAttribution | None = None
    operators: list[OperatorStats] = field(default_factory=list)
    #: Free-form execution counters operators bump (Bloom probe counts,
    #: recheck drops, ...); the executor folds them into the metrics
    #: registry and the query span.
    counters: dict[str, int] = field(default_factory=dict)
    #: Hard cap on merge fan-in regardless of free RAM.
    max_fan_in: int = 16
    #: Target false-positive rate when sizing Bloom filters.
    bloom_fp_target: float = 0.01
    #: Rows per visible-value fetch batch during projection.
    fetch_batch: int = 128
    #: Items per attribution-marked batch window (host-side only: must
    #: never change simulated behaviour).  The executor pins this to 1
    #: for plans whose demand is data-dependent (LIMIT, fault runs).
    exec_batch: int = 256
    #: Live per-operator RAM reservations (stats identity -> bytes),
    #: declared via :meth:`reserve` and dropped by ``Operator.close()``.
    reservations: dict[int, int] = field(default_factory=dict)

    def __post_init__(self):
        if self.attribution is None:
            self.attribution = TimeAttribution(self.device)

    def fan_in(self) -> int:
        """Merge fan-in affordable right now: one page buffer per input
        stream plus one output buffer, inside the free RAM."""
        page = self.device.profile.page_size
        # soft_available: clean cache pages shed on demand, so sizing
        # (and thus plan shape) never depends on cache occupancy.
        affordable = self.device.ram.soft_available // page - 2
        return max(2, min(self.max_fan_in, affordable))

    def register(self, stats: OperatorStats) -> None:
        self.operators.append(stats)

    def reserve(self, stats: OperatorStats, nbytes: int) -> None:
        """Declare an operator's RAM reservation (bookkeeping only --
        actual allocation still goes through ``device.ram``).  Repeated
        declarations keep the maximum; ``release`` drops the entry."""
        if nbytes > self.reservations.get(id(stats), 0):
            self.reservations[id(stats)] = nbytes
        stats.ram_bytes = max(stats.ram_bytes, nbytes)

    def release(self, stats: OperatorStats) -> None:
        """Drop an operator's reservation (its peak stays on ``stats``)."""
        self.reservations.pop(id(stats), None)

    @property
    def reserved_bytes(self) -> int:
        """Total RAM currently declared by live operators."""
        return sum(self.reservations.values())

    def bump(self, counter: str, amount: int = 1) -> None:
        """Accumulate one named execution counter for this query."""
        self.counters[counter] = self.counters.get(counter, 0) + amount


class Operator:
    """Base class: subclasses implement ``_produce()`` as a generator
    and pass their input operators as ``children`` so the lifecycle
    (``open``/``close``) can recurse the physical tree."""

    name = "operator"

    def __init__(
        self,
        ctx: ExecContext,
        detail: str = "",
        children: tuple[Operator, ...] | list[Operator] = (),
    ):
        self.ctx = ctx
        self.children: tuple[Operator, ...] = tuple(children)
        self.stats = OperatorStats(name=self.name, detail=detail)
        #: Producer generators handed out and not yet torn down.
        self._live: list = []
        self._opened = False
        self._closed = False
        ctx.register(self.stats)

    def _produce(self):
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def open(self) -> None:
        """Declare static RAM reservations, recursively.  Idempotent;
        called eagerly by the executor and lazily by the pull surfaces
        so operators built directly in tests behave identically."""
        if self._opened:
            return
        self._opened = True
        self._open()
        for child in self.children:
            child.open()

    def _open(self) -> None:
        """Hook: declare reservations whose size is statically known.
        Data-dependent reservations stay in ``_produce``."""

    def close(self) -> None:
        """Tear down every live producer, stamp end times and release
        RAM reservations; recurses into children.  Idempotent, and safe
        on operators that were never pulled (their spans stay unpulled
        markers).  Teardown of a pulled operator runs inside one final
        attribution window so generator-cleanup costs (freeing stored
        runs, releasing buffers) still land on this operator and the
        sum of per-operator self times stays equal to elapsed time."""
        if self._closed:
            return
        self._closed = True
        attribution = self.ctx.attribution
        live, self._live = self._live, []
        if live and self.stats.started_sim is not None:
            attribution.enter(self.stats)
            try:
                for gen in live:
                    gen.close()
            finally:
                attribution.exit(self.stats)
        else:
            for gen in live:
                gen.close()
        for child in self.children:
            child.close()
        if self.stats.started_sim is not None and self.stats.ended_sim is None:
            attribution.stamp_end(self.stats)
        self.ctx.release(self.stats)

    # ------------------------------------------------------------------
    # Pull surfaces
    # ------------------------------------------------------------------

    def _produce_batches(self, cap: int):
        """Hook: yield batch payloads of at most ``cap`` items each.

        The default re-chunks the per-item ``_produce()`` generator into
        plain lists.  Vectorized operators override this to emit typed
        columnar payloads (:mod:`repro.engine.columns`); any payload
        supporting ``len()`` and per-item iteration is a valid batch.

        Overrides MUST respect ``cap`` (the executor pins it to 1 for
        fault runs and data-dependent plans) and MUST charge the exact
        same simulated-hardware costs, with flash/USB operations in the
        exact same order, as the per-item path -- batching and payload
        representation are host-side details only.
        """
        inner = self._produce()
        try:
            while True:
                batch = list(islice(inner, cap))
                if not batch:
                    return
                yield batch
        finally:
            inner.close()

    def batches(self, limit: int | None = None):
        """Iterate this operator's output as attribution-marked batch
        windows (payloads of up to ``ctx.exec_batch`` items -- plain
        lists by default, typed columns for vectorized operators).

        ``limit`` bounds demand exactly: the producer is advanced at
        most ``limit`` items in total (the last window shrinks), so a
        ``Limit`` parent never over-produces its subtree.  The bounded
        path always pulls per item from ``_produce()``; only unbounded
        iteration goes through :meth:`_produce_batches`.
        """
        self.open()
        attribution = self.ctx.attribution
        stats = self.stats
        cap = max(1, self.ctx.exec_batch)
        if limit is not None:
            inner = self._produce()
            self._live.append(inner)
            remaining = limit
            try:
                while remaining > 0:
                    n = min(cap, remaining)
                    attribution.enter(stats)
                    try:
                        batch = list(islice(inner, n))
                    except BaseException:
                        attribution.exit(stats)
                        raise
                    attribution.exit(stats)
                    if not batch:
                        stats.finished = True
                        return
                    stats.tuples_out += len(batch)
                    stats.batches_out += 1
                    remaining -= len(batch)
                    yield batch
            finally:
                inner.close()
                if inner in self._live:
                    self._live.remove(inner)
            return
        source = self._produce_batches(cap)
        self._live.append(source)
        try:
            while True:
                attribution.enter(stats)
                try:
                    batch = next(source, None)
                except BaseException:
                    attribution.exit(stats)
                    raise
                attribution.exit(stats)
                if batch is None:
                    stats.finished = True
                    return
                size = len(batch)
                if size == 0:
                    continue
                stats.tuples_out += size
                stats.batches_out += 1
                yield batch
        finally:
            source.close()
            if source in self._live:
                self._live.remove(source)

    def rows(self):
        """Iterate this operator's output item by item (batch windows
        underneath -- full-consumption parents and tests use this)."""
        for batch in self.batches():
            yield from batch

    def unbatched(self):
        """Iterate item by item *without* attribution windows: costs
        land on whichever operator currently holds the attribution
        stack (the consumer).  For consumers whose demand is exact and
        data-dependent -- running the producer a window ahead would
        change what the simulated hardware does."""
        self.open()
        attribution = self.ctx.attribution
        stats = self.stats
        inner = self._produce()
        self._live.append(inner)
        attribution.stamp_start(stats)
        try:
            for item in inner:
                stats.tuples_out += 1
                yield item
            stats.finished = True
        finally:
            attribution.stamp_end(stats)
            inner.close()
            if inner in self._live:
                self._live.remove(inner)

    # ------------------------------------------------------------------
    # RAM accounting
    # ------------------------------------------------------------------

    def reserve(self, nbytes: int) -> None:
        """Declare this operator's RAM reservation with the context."""
        self.ctx.reserve(self.stats, nbytes)
