"""Value-row operators: aggregation, ordering, limiting.

These run on the device *after* projection -- aggregates over hidden
values are exactly the queries GhostDB exists for (a hospital computing
average dosage per purpose must not reveal either column).  All working
state is RAM-budgeted; both grouping and sorting degrade gracefully to
external (flash-spilling) algorithms when the tiny RAM cannot hold their
state, just like every other operator on the chip.
"""

from __future__ import annotations

from repro.engine.operators.base import ExecContext, Operator, PlanExecutionError
from repro.hardware.ram import RamExhaustedError
from repro.storage.record import RecordCodec
from repro.storage.runs import RunReader, external_merge, make_runs

#: Modeled per-group bookkeeping overhead (hash bucket + accumulators).
GROUP_ENTRY_OVERHEAD = 48


class _Accumulator:
    """Streaming state for one group."""

    __slots__ = ("count", "sums", "mins", "maxs")

    def __init__(self, n_aggs: int):
        self.count = 0
        self.sums = [0.0] * n_aggs
        self.mins = [None] * n_aggs
        self.maxs = [None] * n_aggs

    def feed(self, aggregates, row) -> None:
        self.count += 1
        for i, aggregate in enumerate(aggregates):
            if aggregate.input_index is None:
                continue
            value = row[aggregate.input_index]
            if aggregate.func in ("sum", "avg"):
                self.sums[i] += value
            elif aggregate.func == "min":
                if self.mins[i] is None or value < self.mins[i]:
                    self.mins[i] = value
            elif aggregate.func == "max":
                if self.maxs[i] is None or value > self.maxs[i]:
                    self.maxs[i] = value

    def result(self, aggregate, index: int):
        if aggregate.func == "count":
            return self.count
        if aggregate.func == "sum":
            total = self.sums[index]
            from repro.storage.types import IntegerType

            if isinstance(aggregate.column.dtype, IntegerType):
                return int(total)
            return total
        if aggregate.func == "avg":
            return self.sums[index] / self.count if self.count else 0.0
        if aggregate.func == "min":
            return self.mins[index]
        if aggregate.func == "max":
            return self.maxs[index]
        raise PlanExecutionError(f"unknown aggregate {aggregate.func!r}")


class AggregateOp(Operator):
    """Hash grouping with an external sort-based fallback.

    The hash table's growth is charged against the RAM budget per new
    group; when it no longer fits, the operator spills the *input* to
    sorted runs on flash (key-ordered) and aggregates in one streaming
    pass over the merged run -- the classical two-strategy design, under
    a 64 KB budget.
    """

    name = "aggregate"

    def __init__(
        self,
        ctx: ExecContext,
        child: Operator,
        group_indexes: list[int],
        aggregates: list,
        output_items: list[tuple[str, int]],
        input_dtypes: list,
        having: list | None = None,
    ):
        detail = ", ".join(a.label() for a in aggregates) or "distinct"
        super().__init__(ctx, detail=detail, children=(child,))
        self.child = child
        self.group_indexes = group_indexes
        self.aggregates = aggregates
        self.output_items = output_items
        self.input_dtypes = input_dtypes
        self.having = having or []
        #: exposed for tests: which strategy ran.
        self.spilled = False

    def _passes_having(self, key: tuple, acc: "_Accumulator") -> bool:
        from repro.sql.binder import compare_values

        self.ctx.device.chip.charge("compare", len(self.having))
        for kind, index, op, literal in self.having:
            if kind == "key":
                actual = key[self.group_indexes.index(index)]
            else:
                actual = acc.result(self.aggregates[index], index)
            if not compare_values(op, actual, literal):
                return False
        return True

    def _emit(self, key: tuple, acc: _Accumulator) -> tuple:
        out = []
        for kind, ref in self.output_items:
            if kind == "key":
                position = self.group_indexes.index(ref)
                out.append(key[position])
            else:
                aggregate = self.aggregates[ref]
                out.append(acc.result(aggregate, ref))
        return tuple(out)

    def _produce(self):
        device = self.ctx.device
        # Per-item pulls: the hash attempt breaks off mid-stream on RAM
        # exhaustion, so demand must be exact -- a batch window would
        # run the child ahead of the break point.
        rows_iter = self.child.unbatched()
        groups: dict[tuple, _Accumulator] = {}
        entry_bytes = GROUP_ENTRY_OVERHEAD + 8 * (
            len(self.group_indexes) + len(self.aggregates)
        )
        alloc = device.ram.allocate(0, "aggregate-hash")
        overflowed = False
        try:
            for row in rows_iter:
                key = tuple(row[i] for i in self.group_indexes)
                device.chip.charge("hash")
                acc = groups.get(key)
                if acc is None:
                    try:
                        alloc.resize(alloc.size + entry_bytes)
                    except RamExhaustedError:
                        overflowed = True
                        break
                    acc = _Accumulator(len(self.aggregates))
                    groups[key] = acc
                acc.feed(self.aggregates, row)
            if not overflowed:
                self.reserve(alloc.size)
                device.chip.charge(
                    "compare",
                    len(groups) * max(1, len(groups).bit_length()),
                )
                for key in sorted(groups):
                    if self._passes_having(key, groups[key]):
                        yield self._emit(key, groups[key])
                return
        finally:
            alloc.release()
        # The group state no longer fits: abandon the hash attempt,
        # release the suspended pipeline's buffers, and restart the
        # child through a key-ordered external sort.  Re-producing the
        # input costs real (simulated) time -- spilling is expensive,
        # which is exactly the pressure the tiny RAM creates.
        rows_iter.close()
        del rows_iter
        groups.clear()
        self.spilled = True
        yield from self._sorted_aggregate()

    def _sorted_aggregate(self):
        device = self.ctx.device
        codec = RecordCodec(self.input_dtypes)
        key_slices = [codec.field_slice(i) for i in self.group_indexes]

        def sort_key(raw: bytes) -> bytes:
            return b"".join(raw[off : off + width] for off, width in key_slices)

        fresh = self.child.rows()
        sort_buffer = max(
            codec.width * 4,
            min(device.ram.soft_available // 2, 8 * device.profile.page_size),
        )
        runs = make_runs(
            device,
            (codec.encode(row) for row in fresh),
            codec.width,
            key=sort_key,
            sort_buffer_bytes=sort_buffer,
            label="aggregate-spill",
        )
        merged = external_merge(
            device, runs, key=sort_key, label="aggregate-spill",
            fan_in=self.ctx.fan_in(),
        )
        current_key = None
        acc = None
        try:
            with RunReader(device, merged, "aggregate-read") as reader:
                for raw in reader:
                    row = codec.decode(raw)
                    device.chip.charge("decode_field", len(row))
                    key = tuple(row[i] for i in self.group_indexes)
                    if key != current_key:
                        if acc is not None and self._passes_having(
                            current_key, acc
                        ):
                            yield self._emit(current_key, acc)
                        current_key = key
                        acc = _Accumulator(len(self.aggregates))
                    acc.feed(self.aggregates, row)
                if acc is not None and self._passes_having(current_key, acc):
                    yield self._emit(current_key, acc)
        finally:
            merged.free(device)


class OrderByOp(Operator):
    """External sort of value rows by output-column keys.

    Ascending keys use the codecs' order-preserving encodings directly;
    descending keys use the bytewise complement.
    """

    name = "order-by"

    def __init__(
        self,
        ctx: ExecContext,
        child: Operator,
        keys: list[tuple[int, bool]],
        row_dtypes: list,
    ):
        detail = ", ".join(
            f"#{i} {'asc' if asc else 'desc'}" for i, asc in keys
        )
        super().__init__(ctx, detail=detail, children=(child,))
        self.child = child
        self.keys = keys
        self.row_dtypes = row_dtypes

    def _produce(self):
        device = self.ctx.device
        codec = RecordCodec(self.row_dtypes)
        slices = [
            (codec.field_slice(i), ascending) for i, ascending in self.keys
        ]

        def sort_key(raw: bytes) -> bytes:
            parts = []
            for (off, width), ascending in slices:
                chunk = raw[off : off + width]
                if not ascending:
                    chunk = bytes(255 - b for b in chunk)
                parts.append(chunk)
            return b"".join(parts)

        sort_buffer = max(
            codec.width * 4,
            min(device.ram.soft_available // 2, 8 * device.profile.page_size),
        )
        self.reserve(sort_buffer)
        runs = make_runs(
            device,
            (codec.encode(row) for row in self.child.rows()),
            codec.width,
            key=sort_key,
            sort_buffer_bytes=sort_buffer,
            label="order-by",
        )
        merged = external_merge(
            device, runs, key=sort_key, label="order-by",
            fan_in=self.ctx.fan_in(),
        )
        try:
            with RunReader(device, merged, "order-by-read") as reader:
                for raw in reader:
                    device.chip.charge("decode_field", codec.arity)
                    yield codec.decode(raw)
        finally:
            merged.free(device)


class LimitOp(Operator):
    """Stop after ``count`` rows (and stop pulling the child)."""

    name = "limit"

    def __init__(self, ctx: ExecContext, child: Operator, count: int):
        super().__init__(ctx, detail=str(count), children=(child,))
        self.child = child
        self.count = count

    def _produce(self):
        # ``limit=`` makes demand exact at the batch layer: the child is
        # advanced at most ``count`` items in total (``count == 0`` never
        # pulls it at all), so the subtree cannot over-produce.
        for batch in self.child.batches(limit=self.count):
            yield from batch
