"""Small adapter operators."""

from __future__ import annotations

from repro.engine.operators.base import ExecContext, Operator


class IdsToTuplesOp(Operator):
    """Wrap a sorted ID stream as 1-tuples (single-table plans)."""

    name = "ids-to-tuples"

    def __init__(self, ctx: ExecContext, child: Operator, table: str):
        super().__init__(ctx, detail=table, children=(child,))
        self.child = child

    def _produce(self):
        for value in self.child.rows():
            yield (value,)

    def _produce_batches(self, cap: int):
        # Child windows are bounded by the same ``exec_batch``, so each
        # payload already respects ``cap``.
        for batch in self.child.batches():
            yield [(value,) for value in batch]
