"""Device-side table scan with predicate: the indexless fallback.

A hidden predicate whose column has no climbing index can still be
answered by scanning the table's device heap and filtering -- paying a
full sequential read of the extent.  The operator exists both as a
correctness fallback and as a baseline the benchmarks compare climbing
indexes against.
"""

from __future__ import annotations

from itertools import islice

from repro.columns import IdColumn
from repro.engine.operators.base import ExecContext, Operator
from repro.sql.binder import Predicate


class DeviceScanSelectOp(Operator):
    """Scan one device heap, yield PKs of rows matching all predicates."""

    name = "device-scan"

    def __init__(self, ctx: ExecContext, table: str, predicates: list[Predicate]):
        detail = f"{table}: " + (
            " AND ".join(p.describe() for p in predicates)
            if predicates
            else "all rows"
        )
        super().__init__(ctx, detail=detail)
        self.table = table.lower()
        self.predicates = predicates

    def _open(self):
        self.reserve(self.ctx.device.profile.page_size)

    def _produce(self):
        heap = self.ctx.db.heaps[self.table]
        table_def = self.ctx.db.tree.table(self.table)
        field_of = {
            p.column: table_def.device_column_index(p.column)
            for p in self.predicates
        }
        chip = self.ctx.device.chip
        with heap.reader(f"scan:{self.table}") as reader:
            for raw in reader.scan():
                ok = True
                for predicate in self.predicates:
                    value = heap.codec.decode_field(
                        raw, field_of[predicate.column]
                    )
                    chip.charge("decode_field")
                    chip.charge("compare")
                    if not predicate.matches(value):
                        ok = False
                        break
                if ok:
                    pk = heap.codec.decode_field(raw, heap.pk_field)
                    chip.charge("decode_field")
                    yield pk

    def _produce_batches(self, cap: int):
        """Vectorized scan: evaluate predicates column-at-a-time over one
        page's worth of records, emit surviving PKs as :class:`IdColumn`
        payloads.

        Hardware equivalence with the per-item path: flash reads stay one
        full read per page in the same order (yields only happen once
        ``cap`` survivors are buffered, exactly when the per-item window
        would fill), and CPU charges are the per-item totals bulked --
        predicate ``k`` is charged once per record that survived
        predicates ``1..k-1``, which is precisely what per-record
        short-circuiting pays.
        """
        heap = self.ctx.db.heaps[self.table]
        table_def = self.ctx.db.tree.table(self.table)
        plan = [
            (p, table_def.device_column_index(p.column))
            for p in self.predicates
        ]
        chip = self.ctx.device.chip
        codec = heap.codec
        pk_field = heap.pk_field
        out: list[int] = []
        with heap.reader(f"scan:{self.table}") as reader:
            slots = reader.slots_per_page
            scan = reader.scan()
            try:
                rowid = 0
                while rowid < reader.count:
                    take = min(slots, reader.count - rowid)
                    # Pulling exactly the page's records leaves the scan
                    # generator suspended before the next page read.
                    alive = list(islice(scan, take))
                    rowid += take
                    for predicate, fidx in plan:
                        if not alive:
                            break
                        n = len(alive)
                        chip.charge("decode_field", n)
                        chip.charge("compare", n)
                        alive = [
                            raw
                            for raw in alive
                            if predicate.matches(codec.decode_field(raw, fidx))
                        ]
                    if alive:
                        chip.charge("decode_field", len(alive))
                        out.extend(
                            codec.decode_field(raw, pk_field) for raw in alive
                        )
                    while len(out) >= cap:
                        yield IdColumn.from_ids(out[:cap])
                        del out[:cap]
            finally:
                scan.close()
        if out:
            yield IdColumn.from_ids(out)
