"""Device-side table scan with predicate: the indexless fallback.

A hidden predicate whose column has no climbing index can still be
answered by scanning the table's device heap and filtering -- paying a
full sequential read of the extent.  The operator exists both as a
correctness fallback and as a baseline the benchmarks compare climbing
indexes against.
"""

from __future__ import annotations

from repro.engine.operators.base import ExecContext, Operator
from repro.sql.binder import Predicate


class DeviceScanSelectOp(Operator):
    """Scan one device heap, yield PKs of rows matching all predicates."""

    name = "device-scan"

    def __init__(self, ctx: ExecContext, table: str, predicates: list[Predicate]):
        detail = f"{table}: " + (
            " AND ".join(p.describe() for p in predicates)
            if predicates
            else "all rows"
        )
        super().__init__(ctx, detail=detail)
        self.table = table.lower()
        self.predicates = predicates

    def _open(self):
        self.reserve(self.ctx.device.profile.page_size)

    def _produce(self):
        heap = self.ctx.db.heaps[self.table]
        table_def = self.ctx.db.tree.table(self.table)
        field_of = {
            p.column: table_def.device_column_index(p.column)
            for p in self.predicates
        }
        chip = self.ctx.device.chip
        with heap.reader(f"scan:{self.table}") as reader:
            for raw in reader.scan():
                ok = True
                for predicate in self.predicates:
                    value = heap.codec.decode_field(
                        raw, field_of[predicate.column]
                    )
                    chip.charge("decode_field")
                    chip.charge("compare")
                    if not predicate.matches(value):
                        ok = False
                        break
                if ok:
                    pk = heap.codec.decode_field(raw, heap.pk_field)
                    chip.charge("decode_field")
                    yield pk
