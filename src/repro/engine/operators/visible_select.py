"""Visible selection: delegate a predicate to the PC, receive IDs.

The paper "delegates as much work as possible to the PC and the server as
long as this processing does not compromise hidden data": the predicate
itself is visible (the spy learns the query anyway) and the matching IDs
stream back over USB in sorted order, ready for merging.
"""

from __future__ import annotations

from repro.columns import IdColumn
from repro.engine.operators.base import ExecContext, Operator
from repro.sql.binder import Predicate


class VisibleSelectOp(Operator):
    name = "visible-select"

    def __init__(self, ctx: ExecContext, predicate: Predicate):
        super().__init__(ctx, detail=predicate.describe())
        self.predicate = predicate

    def _open(self):
        self.reserve(self.ctx.link.id_batch * 4)

    def _produce(self):
        # The link already delivers IDs one USB message (``id_batch``
        # ids) at a time; consuming whole message batches keeps the
        # per-item loop out of the hot path without changing when each
        # message crosses the observable channel.
        link = self.ctx.link
        for chunk in link.select_id_batches(
            self.predicate.table, self.predicate
        ):
            yield from chunk

    def _produce_batches(self, cap: int):
        """Vectorized: each USB message's IDs become one typed column
        (sliced to ``cap``).  Message timing is unchanged -- a message
        is requested when its first ID is demanded either way."""
        link = self.ctx.link
        for chunk in link.select_id_batches(
            self.predicate.table, self.predicate
        ):
            column = IdColumn.from_ids(chunk)
            for start in range(0, len(column), cap):
                yield column[start : start + cap]
