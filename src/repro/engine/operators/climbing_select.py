"""Climbing-index selection: a hidden predicate -> sorted IDs at a level.

This is the paper's Pre-filtering primitive for hidden predicates: "using
the climbing index on Vis.Purpose to deliver the list of PreID associated
to the value 'Sclerosis'".  Equality predicates read one posting list;
range predicates union the posting lists of every qualifying value under
the RAM-bounded fan-in (spilling to flash when the range matches many
values).
"""

from __future__ import annotations

from repro.columns import chunk_ids
from repro.engine.operators.base import ExecContext, Operator, PlanExecutionError
from repro.index.climbing import ClimbingIndex
from repro.index.posting import merge_posting_streams
from repro.sql.binder import EQ, IN, RANGE, Predicate


class ClimbingSelectOp(Operator):
    name = "climbing-select"

    def __init__(
        self,
        ctx: ExecContext,
        index: ClimbingIndex,
        predicate: Predicate,
        target_table: str,
    ):
        super().__init__(
            ctx,
            detail=f"{predicate.describe()} -> {target_table} ids",
        )
        if predicate.kind not in (EQ, RANGE, IN):
            raise PlanExecutionError(
                f"climbing indexes serve equality, range and IN "
                f"predicates, not {predicate.kind!r}"
            )
        self.index = index
        self.predicate = predicate
        self.target_table = target_table.lower()

    def _produce(self):
        page = self.ctx.device.profile.page_size
        if self.predicate.kind == EQ:
            factory = self.index.stream_eq(
                self.predicate.value, self.target_table
            )
            if factory is None:
                return
            self.reserve(page)
            iterator, closer = factory()
            try:
                yield from iterator
            finally:
                closer()
            return
        if self.predicate.kind == IN:
            # One posting per listed value, unioned like a range.
            factories = [
                self.index.stream_eq(value, self.target_table)
                for value in self.predicate.values
            ]
            factories = [f for f in factories if f is not None]
        else:
            factories = self.index.streams_range(
                self.predicate.low,
                self.predicate.low_inclusive,
                self.predicate.high,
                self.predicate.high_inclusive,
                self.target_table,
            )
        if not factories:
            return
        fan_in = self.ctx.fan_in()
        self.reserve(min(len(factories), fan_in) * page + page)
        yield from merge_posting_streams(
            self.ctx.device,
            factories,
            label=f"{self.index.table}.{self.index.column}",
            fan_in=fan_in,
            dedup=True,
        )

    def _produce_batches(self, cap: int):
        # Posting-list IDs travel as typed columns; the underlying
        # stream is advanced in the default islice pattern, so flash
        # reads and merge charges are position-for-position identical.
        yield from chunk_ids(self._produce(), cap)
