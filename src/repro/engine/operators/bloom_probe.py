"""Bloom-filter post-filtering (paper, Figure 5).

On first pull the operator asks the PC to evaluate the visible predicate
and folds the returned ID stream into a RAM-resident Bloom filter (sized
for the expected cardinality at the context's target false-positive
rate).  It then streams its child's subtree key tuples through the
filter, keeping tuples whose key for the filtered table *may* match.

False positives survive here by design; projection removes them when the
PC re-checks the predicate while serving visible values.  False negatives
are impossible, so results stay complete.
"""

from __future__ import annotations

from repro.engine.operators.base import ExecContext, Operator, PlanExecutionError
from repro.index.bloom import BloomFilter
from repro.sql.binder import Predicate


class BloomProbeOp(Operator):
    name = "bloom-filter"

    def __init__(
        self,
        ctx: ExecContext,
        child: Operator,
        predicate: Predicate,
        key_position: int,
        expected_ids: int | None = None,
    ):
        super().__init__(ctx, detail=predicate.describe(), children=(child,))
        if predicate.hidden:
            raise PlanExecutionError(
                f"{predicate.describe()} is hidden; Bloom filters are "
                f"built from *visible* selections only"
            )
        self.child = child
        self.predicate = predicate
        self.key_position = key_position
        self.expected_ids = expected_ids
        #: Exposed after execution for the demo popups.
        self.bloom_stats: dict | None = None

    def _build_filter(self) -> BloomFilter:
        link = self.ctx.link
        expected = self.expected_ids
        if expected is None:
            # Ask the host for the exact cardinality: one tiny round trip
            # that lets the device size the filter correctly.
            expected = link.count_ids(self.predicate.table, self.predicate)
        bloom = BloomFilter.for_expected(
            self.ctx.device,
            max(1, expected),
            target_fp=self.ctx.bloom_fp_target,
            label=f"bloom:{self.predicate.table}.{self.predicate.column}",
        )
        self.reserve(bloom.ram_bytes + link.id_batch * 4)
        # One bulk insert per USB message: identical cycle totals and
        # message timing, without the per-ID call overhead on the host.
        for chunk in link.select_id_batches(self.predicate.table, self.predicate):
            bloom.insert_many(chunk)
        self.bloom_stats = {
            "bits": bloom.bits,
            "hashes": bloom.hashes,
            "inserted": bloom.inserted,
            "expected_fp_rate": bloom.expected_fp_rate(),
            "ram_bytes": bloom.ram_bytes,
        }
        self.stats.attrs.update(self.bloom_stats)
        return bloom

    def _produce(self):
        bloom = self._build_filter()
        probed = passed = 0
        try:
            for row in self.child.rows():
                probed += 1
                if bloom.may_contain(row[self.key_position]):
                    passed += 1
                    yield row
        finally:
            bloom.close()
            self.stats.attrs["probed"] = probed
            self.stats.attrs["passed"] = passed
            self.ctx.bump("bloom_probed", probed)
            self.ctx.bump("bloom_passed", passed)

    def _produce_batches(self, cap: int):
        """Vectorized probing: one bulk Bloom probe per child window
        (identical cycle totals to per-row probes), survivors buffered
        and re-windowed to ``cap``."""
        bloom = self._build_filter()
        probed = passed = 0
        key_position = self.key_position
        out: list = []
        try:
            for batch in self.child.batches():
                rows = list(batch) if not isinstance(batch, list) else batch
                probed += len(rows)
                verdicts = bloom.probe_many(row[key_position] for row in rows)
                kept = [row for row, ok in zip(rows, verdicts) if ok]
                passed += len(kept)
                out.extend(kept)
                while len(out) >= cap:
                    yield out[:cap]
                    del out[:cap]
            if out:
                yield out
        finally:
            bloom.close()
            self.stats.attrs["probed"] = probed
            self.stats.attrs["passed"] = passed
            self.ctx.bump("bloom_probed", probed)
            self.ctx.bump("bloom_passed", passed)
