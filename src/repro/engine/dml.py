"""UPDATE / DELETE execution against the hidden database.

DML statements arrive over the secure channel (like appends -- they may
name hidden values, so they are never announced on the spied USB link)
and run as a rebuild transaction: matching rows are found by a
device-charged heap scan, the survivors are streamed through
:func:`repro.engine.maintenance.rebuild_table`'s build-all-then-swap
discipline, and only after the flash-free commit is the visible site
re-synchronised.  A power cut at any flash operation therefore leaves
the statement either fully applied or not at all -- never a torn mix.

DELETE enforces RESTRICT semantics: deleting rows still referenced by a
child table's foreign keys is refused (the schema tree's edges stay
consistent), checked with device-charged scans of the child heaps.
"""

from __future__ import annotations

from repro.engine.database import HiddenDatabase
from repro.engine.maintenance import rebuild_table
from repro.obs.log import get_logger
from repro.sql.binder import BoundDelete, BoundUpdate
from repro.visible.site import VisibleSite

log = get_logger(__name__)


class DmlError(ValueError):
    """A DML statement violated a storage or referential constraint."""


def run_update(
    db: HiddenDatabase, site: VisibleSite, bound: BoundUpdate
) -> tuple[int, int]:
    """Apply a bound UPDATE; returns ``(matched, changed)``.

    ``matched`` counts rows satisfying the WHERE clause; ``changed``
    counts those whose stored values actually differ afterwards.  A
    statement that matches nothing -- or assigns values already in
    place -- is a no-op: no rebuild, no flash writes.
    """
    table_def = bound.table_def
    table = bound.table
    rows = _full_rows(db, site, table_def)
    col_pos = {c.name.lower(): i for i, c in enumerate(table_def.columns)}
    pk_index = table_def.column_index(table_def.pk.name)
    pred_idx = [(col_pos[p.column], p) for p in bound.predicates]
    assign_idx = [
        (col_pos[a.column.name.lower()], a.column, a.value)
        for a in bound.assignments
    ]
    chip = db.device.chip
    matched = changed = 0
    out_rows: list[tuple] = []
    touched: dict[int, tuple] = {}
    for row in rows:
        if pred_idx:
            chip.charge("compare", len(pred_idx))
        if all(p.matches(row[i]) for i, p in pred_idx):
            matched += 1
            new_row = list(row)
            for i, column, value in assign_idx:
                new_row[i] = column.dtype.validate(value)
            new_row = tuple(new_row)
            if new_row != row:
                changed += 1
                touched[new_row[pk_index]] = new_row
            out_rows.append(new_row)
        else:
            out_rows.append(row)
    if not touched:
        log.info("update on %s: %d matched, nothing changed", table, matched)
        return matched, 0

    device_idx = [
        table_def.column_index(c.name) for c in table_def.device_columns()
    ]
    rebuild_table(
        db, table, (tuple(r[i] for i in device_idx) for r in out_rows)
    )
    # Only after the flash-free commit: a power cut during the rebuild
    # must leave the public side in step with the (old) device state.
    site.update_rows(table, touched)
    log.info("update on %s: %d matched, %d changed", table, matched, changed)
    return matched, changed


def run_delete(
    db: HiddenDatabase, site: VisibleSite, bound: BoundDelete
) -> tuple[int, int]:
    """Apply a bound DELETE; returns ``(matched, matched)``."""
    table_def = bound.table_def
    table = bound.table
    rows = _full_rows(db, site, table_def)
    col_pos = {c.name.lower(): i for i, c in enumerate(table_def.columns)}
    pk_index = table_def.column_index(table_def.pk.name)
    pred_idx = [(col_pos[p.column], p) for p in bound.predicates]
    chip = db.device.chip
    kept: list[tuple] = []
    deleted: set[int] = set()
    for row in rows:
        if pred_idx:
            chip.charge("compare", len(pred_idx))
        if all(p.matches(row[i]) for i, p in pred_idx):
            deleted.add(row[pk_index])
        else:
            kept.append(row)
    if not deleted:
        log.info("delete on %s: nothing matched", table)
        return 0, 0

    _check_restrict(db, table_def, deleted)

    device_idx = [
        table_def.column_index(c.name) for c in table_def.device_columns()
    ]
    rebuild_table(
        db, table, (tuple(r[i] for i in device_idx) for r in kept)
    )
    site.delete_rows(table, sorted(deleted))
    log.info("delete on %s: %d rows removed", table, len(deleted))
    return len(deleted), len(deleted)


def _full_rows(
    db: HiddenDatabase, site: VisibleSite, table_def
) -> list[tuple]:
    """Materialise full rows (schema column order) for one table.

    Device columns stream off the heap -- sequential flash reads and
    per-field decode charges, exactly what the secure chip would pay.
    Public-only columns are joined back in from the visible site, which
    costs nothing in the paper's model (host CPU is free).
    """
    table = table_def.name.lower()
    device_cols = table_def.device_columns()
    device_pos = {c.name.lower(): i for i, c in enumerate(device_cols)}
    fetch_cols = [
        c.name.lower()
        for c in table_def.columns
        if c.name.lower() not in device_pos
    ]
    device_rows = list(db.heaps[table].scan())
    public: dict[int, tuple] = {}
    if fetch_cols:
        public = site.fetch_values(
            table, [r[0] for r in device_rows], fetch_cols
        )
    fetch_pos = {name: i for i, name in enumerate(fetch_cols)}
    rows: list[tuple] = []
    for drow in device_rows:
        pub = public.get(drow[0], ())
        rows.append(
            tuple(
                drow[device_pos[c.name.lower()]]
                if c.name.lower() in device_pos
                else pub[fetch_pos[c.name.lower()]]
                for c in table_def.columns
            )
        )
    return rows


def _check_restrict(
    db: HiddenDatabase, table_def, deleted: set[int]
) -> None:
    """RESTRICT: refuse deletion of rows referenced by child tables.

    Foreign keys are always device columns, so each child check is one
    device-charged heap scan over the child's FK values.
    """
    target = table_def.name.lower()
    chip = db.device.chip
    for child_def in db.tree.schema:
        for column in child_def.columns:
            ref = column.references
            if ref is None or ref.table.lower() != target:
                continue
            device_cols = child_def.device_columns()
            fk_pos = next(
                i
                for i, c in enumerate(device_cols)
                if c.name.lower() == column.name.lower()
            )
            for row in db.heaps[child_def.name.lower()].scan():
                chip.charge("compare")
                if row[fk_pos] in deleted:
                    raise DmlError(
                        f"cannot delete {table_def.name} key "
                        f"{row[fk_pos]}: referenced by "
                        f"{child_def.name}.{column.name}"
                    )
