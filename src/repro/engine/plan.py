"""Logical query execution plans (QEPs).

These are the high-level operators the demo GUI lets visitors rearrange
(Figure 6): climbing-index selections, visible selections, ID conversion,
merges, SKT access, Bloom probes, store and project.  A plan is a tree of
:class:`PlanNode` dataclasses; the executor lowers it onto physical
operators.  Plans are cheap, declarative and printable -- ``render()``
draws the operator tree the way the demo GUI does.

Two stream kinds flow between nodes:

* **ID streams** -- sorted IDs of a single table;
* **tuple streams** -- subtree key tuples aligned with an SKT's tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sql.binder import BoundDelete, BoundUpdate, Predicate


class PlanError(ValueError):
    """A structurally invalid plan."""


@dataclass
class PlanNode:
    """Base class.  ``output_table`` for ID streams, ``output_tables``
    for tuple streams; exactly one is non-None."""

    def children(self) -> list["PlanNode"]:
        return []

    def label(self) -> str:
        return type(self).__name__

    @property
    def output_table(self) -> str | None:
        return None

    @property
    def output_tables(self) -> list[str] | None:
        return None

    def render(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.label()]
        for child in self.children():
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def walk(self):
        yield self
        for child in self.children():
            yield from child.walk()


# ----------------------------------------------------------------------
# ID-stream producers
# ----------------------------------------------------------------------


@dataclass
class ClimbingSelect(PlanNode):
    """Hidden predicate -> IDs at ``target_table`` via a climbing index."""

    predicate: Predicate
    target_table: str

    def label(self) -> str:
        return (
            f"ClimbingSelect[{self.predicate.describe()} -> "
            f"{self.target_table} ids]"
        )

    @property
    def output_table(self) -> str:
        return self.target_table.lower()


@dataclass
class VisibleSelect(PlanNode):
    """Visible predicate evaluated on the PC -> IDs of its own table."""

    predicate: Predicate

    def label(self) -> str:
        return f"VisibleSelect[{self.predicate.describe()}]"

    @property
    def output_table(self) -> str:
        return self.predicate.table


@dataclass
class DeviceScanSelect(PlanNode):
    """Fallback: scan a device heap, filter, emit PKs."""

    table: str
    predicates: list[Predicate]

    def label(self) -> str:
        preds = " AND ".join(p.describe() for p in self.predicates)
        return f"DeviceScanSelect[{self.table}: {preds or 'true'}]"

    @property
    def output_table(self) -> str:
        return self.table.lower()


# ----------------------------------------------------------------------
# ID-stream transformers
# ----------------------------------------------------------------------


@dataclass
class ConvertIds(PlanNode):
    """Climb an ID stream to an ancestor table via the key index."""

    child: PlanNode
    target_table: str

    def __post_init__(self):
        if self.child.output_table is None:
            raise PlanError("ConvertIds requires an ID-stream child")

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return (
            f"ConvertIds[{self.child.output_table} -> "
            f"{self.target_table} ids]"
        )

    @property
    def output_table(self) -> str:
        return self.target_table.lower()


@dataclass
class MergeIntersect(PlanNode):
    """Streaming intersection of same-table sorted ID streams."""

    inputs: list[PlanNode]

    def __post_init__(self):
        tables = {c.output_table for c in self.inputs}
        if None in tables or len(tables) != 1:
            raise PlanError(
                f"MergeIntersect inputs must be ID streams of one table, "
                f"got {tables}"
            )

    def children(self) -> list[PlanNode]:
        return list(self.inputs)

    def label(self) -> str:
        return f"MergeIntersect[{len(self.inputs)} inputs]"

    @property
    def output_table(self) -> str:
        return self.inputs[0].output_table


@dataclass
class MergeUnion(PlanNode):
    """Streaming deduplicating union of same-table sorted ID streams."""

    inputs: list[PlanNode]

    def __post_init__(self):
        tables = {c.output_table for c in self.inputs}
        if None in tables or len(tables) != 1:
            raise PlanError(
                f"MergeUnion inputs must be ID streams of one table, "
                f"got {tables}"
            )

    def children(self) -> list[PlanNode]:
        return list(self.inputs)

    def label(self) -> str:
        return f"MergeUnion[{len(self.inputs)} inputs]"

    @property
    def output_table(self) -> str:
        return self.inputs[0].output_table


# ----------------------------------------------------------------------
# Tuple-stream nodes
# ----------------------------------------------------------------------


@dataclass
class SktAccess(PlanNode):
    """Root IDs -> subtree key tuples (or a full SKT scan if no child)."""

    skt_root: str
    child: PlanNode | None = None
    expected_count: int | None = None
    #: filled by the executor from the SKT definition.
    _tables: list[str] = field(default_factory=list, repr=False)

    def __post_init__(self):
        if self.child is not None and self.child.output_table is None:
            raise PlanError("SktAccess requires an ID-stream child")

    def children(self) -> list[PlanNode]:
        return [self.child] if self.child is not None else []

    def label(self) -> str:
        mode = "full scan" if self.child is None else "by root ids"
        return f"SktAccess[SKT_{self.skt_root}, {mode}]"

    @property
    def output_tables(self) -> list[str]:
        return self._tables


@dataclass
class IdsToTuples(PlanNode):
    """Adapter for single-table plans: IDs become 1-tuples."""

    child: PlanNode

    def __post_init__(self):
        if self.child.output_table is None:
            raise PlanError("IdsToTuples requires an ID-stream child")

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return f"IdsToTuples[{self.child.output_table}]"

    @property
    def output_tables(self) -> list[str]:
        return [self.child.output_table]


@dataclass
class BloomProbe(PlanNode):
    """Post-filter a tuple stream by a visible predicate's Bloom filter."""

    child: PlanNode
    predicate: Predicate
    expected_ids: int | None = None

    def __post_init__(self):
        if self.child.output_tables is None:
            raise PlanError("BloomProbe requires a tuple-stream child")

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return f"BloomProbe[{self.predicate.describe()}]"

    @property
    def output_tables(self) -> list[str]:
        return self.child.output_tables


@dataclass
class Store(PlanNode):
    """Materialise a tuple stream on flash and replay it."""

    child: PlanNode

    def __post_init__(self):
        if self.child.output_tables is None:
            raise PlanError("Store requires a tuple-stream child")

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return "Store"

    @property
    def output_tables(self) -> list[str]:
        return self.child.output_tables


@dataclass
class Project(PlanNode):
    """Assemble value rows from key tuples (the SPJ plan root)."""

    child: PlanNode
    #: (table, ColumnDef) per output column.
    projections: list[tuple]
    visible_recheck: list[Predicate] = field(default_factory=list)
    residual_hidden: list[Predicate] = field(default_factory=list)

    def __post_init__(self):
        if self.child.output_tables is None:
            raise PlanError("Project requires a tuple-stream child")

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        cols = ", ".join(f"{t}.{c.name}" for t, c in self.projections)
        return f"Project[{cols}]"

    @property
    def output_tables(self) -> list[str]:
        return self.child.output_tables

    def output_labels(self) -> list[str]:
        return [f"{t}.{c.name}" for t, c in self.projections]


# ----------------------------------------------------------------------
# DML roots
# ----------------------------------------------------------------------


@dataclass
class UpdatePlan(PlanNode):
    """Root of an UPDATE: scan-match-rebuild as one atomic transaction."""

    bound: BoundUpdate

    def label(self) -> str:
        sets = ", ".join(
            f"{a.column.name}=?" for a in self.bound.assignments
        )
        preds = " AND ".join(p.describe() for p in self.bound.predicates)
        return (
            f"Update[{self.bound.table} SET {sets}"
            f"{' WHERE ' + preds if preds else ''}]"
        )


@dataclass
class DeletePlan(PlanNode):
    """Root of a DELETE: scan-match-rebuild as one atomic transaction."""

    bound: BoundDelete

    def label(self) -> str:
        preds = " AND ".join(p.describe() for p in self.bound.predicates)
        return (
            f"Delete[{self.bound.table}"
            f"{' WHERE ' + preds if preds else ''}]"
        )


#: Plan nodes whose output is *value rows* (post-projection).  They can
#: stack above a Project in any order the builder chooses.
class RowNode(PlanNode):
    """Base for nodes that transform value-row streams."""

    def output_labels(self) -> list[str]:
        raise NotImplementedError


@dataclass
class Aggregate(RowNode):
    """GROUP BY + aggregate functions over a Project's value rows.

    ``group_indexes`` select the key columns within the child's rows;
    ``aggregates`` are :class:`repro.sql.binder.BoundAggregate`;
    ``output_items`` is the select-list recipe (("key", child column
    index) or ("agg", aggregate index)).
    """

    child: PlanNode
    group_indexes: list[int]
    aggregates: list  # list[BoundAggregate]
    output_items: list[tuple[str, int]]
    labels: list[str] = field(default_factory=list)
    #: dtypes of the child's value rows (for the spill codec).
    input_dtypes: list = field(default_factory=list)
    #: HAVING conditions: ("agg"|"key", index, op, literal).
    having: list[tuple[str, int, str, object]] = field(default_factory=list)

    def __post_init__(self):
        if not isinstance(self.child, (Project,)):
            raise PlanError("Aggregate must sit directly above Project")

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        aggs = ", ".join(a.label() for a in self.aggregates)
        keys = ", ".join(str(i) for i in self.group_indexes)
        return f"Aggregate[keys=({keys}); {aggs or 'distinct'}]"

    def output_labels(self) -> list[str]:
        return list(self.labels)


@dataclass
class OrderBy(RowNode):
    """Sort value rows by output columns (device-side external sort)."""

    child: PlanNode
    #: (output column index, ascending) in significance order.
    keys: list[tuple[int, bool]]
    #: dtypes of the rows being sorted (for the run codec).
    row_dtypes: list = field(default_factory=list)

    def __post_init__(self):
        if not isinstance(self.child, (Project, Aggregate)):
            raise PlanError("OrderBy sorts Project or Aggregate output")
        if not self.keys:
            raise PlanError("OrderBy needs at least one key")

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        keys = ", ".join(
            f"#{i} {'asc' if asc else 'desc'}" for i, asc in self.keys
        )
        return f"OrderBy[{keys}]"

    def output_labels(self) -> list[str]:
        return self.child.output_labels()


@dataclass
class Limit(RowNode):
    """Truncate a value-row stream (stops pulling early).

    Plans containing a Limit run with per-tuple demand: the executor
    pins the batch window to 1 (see ``QueryExecutor._effective_batch``)
    so the truncated subtree is advanced exactly as far as the old
    per-tuple pipeline would have -- hardware counters stay identical
    to the unbatched execution.
    """

    child: PlanNode
    count: int

    def __post_init__(self):
        if not isinstance(self.child, (Project, Aggregate, OrderBy)):
            raise PlanError("Limit applies to value-row streams")
        if self.count < 0:
            raise PlanError("Limit cannot be negative")

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return f"Limit[{self.count}]"

    def output_labels(self) -> list[str]:
        return self.child.output_labels()
