"""Packed sorted-integer lists on flash (posting lists).

Climbing-index postings and intermediate ID lists are sequences of 32-bit
unsigned IDs packed onto pages.  They are always *sorted*, which is the
paper's central storage invariant: conjunctions become streaming merges
needing one page buffer per input instead of hash tables that cannot fit
in tens of KB of RAM.
"""

from __future__ import annotations

import struct

from repro.columns import IdColumn
from repro.hardware.device import SmartUsbDevice

ID_WIDTH = 4
_PACK = struct.Struct(">I")

MAX_ID = (1 << 32) - 1


class IntListWriter:
    """Appends 32-bit IDs, flushing full pages to flash."""

    def __init__(self, device: SmartUsbDevice, label: str):
        self.device = device
        self.label = label
        self.pages: list[int] = []
        self.count = 0
        self._ids_per_page = device.profile.page_size // ID_WIDTH
        self._buffer = bytearray()
        self._alloc = device.ram.allocate(device.profile.page_size, label)
        self._closed = False

    def append(self, value: int) -> None:
        if self._closed:
            raise ValueError(f"writer {self.label!r} is closed")
        if not 0 <= value <= MAX_ID:
            raise ValueError(f"ID {value} out of 32-bit unsigned range")
        self._buffer.extend(_PACK.pack(value))
        self.count += 1
        if len(self._buffer) >= self._ids_per_page * ID_WIDTH:
            self._flush()

    def extend(self, values) -> None:
        for value in values:
            self.append(value)

    def _flush(self) -> None:
        if not self._buffer:
            return
        lpage = self.device.ftl.allocate()
        self.device.ftl.write(lpage, bytes(self._buffer))
        self.pages.append(lpage)
        self._buffer.clear()

    def close(self) -> None:
        if not self._closed:
            self._flush()
            self._alloc.release()
            self._closed = True

    def abort(self) -> None:
        """Drop the unflushed tail and release RAM; no flash I/O.

        Exception-unwind path: a faulted device must not keep
        programming flash while the error propagates (see
        ``PageWriter.abort``).
        """
        if not self._closed:
            self._buffer.clear()
            self._alloc.release()
            self._closed = True

    def __enter__(self) -> "IntListWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


class IntListReader:
    """Streams a packed ID list back from flash, one page buffer of RAM."""

    def __init__(
        self,
        device: SmartUsbDevice,
        pages: list[int],
        count: int,
        label: str,
    ):
        self.device = device
        self.pages = pages
        self.count = count
        self.label = label
        self._ids_per_page = device.profile.page_size // ID_WIDTH
        self._alloc = device.ram.allocate(device.profile.page_size, label)
        self._closed = False

    def __iter__(self):
        remaining = self.count
        for lpage in self.pages:
            if remaining <= 0:
                break
            data = self.device.ftl.read(lpage)
            take = min(self._ids_per_page, remaining)
            # Columnar decode: the whole page's IDs in one typed-vector
            # conversion instead of a struct.unpack call per ID.
            yield from IdColumn.from_be_bytes(data, take)
            remaining -= take

    def read_all(self) -> list[int]:
        """Materialise the whole list in *host* memory (tests/benches)."""
        return list(self)

    def close(self) -> None:
        if not self._closed:
            self._alloc.release()
            self._closed = True

    def __enter__(self) -> "IntListReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def free_intlist(device: SmartUsbDevice, pages: list[int]) -> None:
    """Return a packed list's pages to the FTL."""
    for lpage in pages:
        device.ftl.free(lpage)
