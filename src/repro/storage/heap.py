"""ID-ordered table storage on the device.

A :class:`HeapTable` stores one table's device-resident columns (its
primary key plus all hidden columns) as fixed-width records in primary-key
order.  Key-order storage is what makes SKT lookups and projections by
sorted ID lists sequential -- the access pattern flash likes.

Primary keys are usually dense (1..N) in the demo dataset, in which case
``rowid_for_pk`` is arithmetic.  For sparse keys the table keeps a packed
sorted PK array on flash and binary-searches it with cheap partial reads.
"""

from __future__ import annotations

from repro.hardware.device import SmartUsbDevice
from repro.storage.intlist import ID_WIDTH, IntListWriter, _PACK
from repro.storage.pagestore import PageReader, PageStore
from repro.storage.record import RecordCodec


class KeyNotFoundError(KeyError):
    """A primary key has no row in the table."""


class HeapTable:
    """A device-resident table extent in primary-key order."""

    def __init__(
        self,
        device: SmartUsbDevice,
        name: str,
        codec: RecordCodec,
        pk_field: int,
    ):
        self.device = device
        self.store = PageStore(device)
        self.name = name
        self.codec = codec
        self.pk_field = pk_field
        self.pages: list[int] = []
        self.count = 0
        #: pk == _dense_base + rowid for every row, when keys are dense.
        self._dense_base: int | None = None
        self._pk_pages: list[int] = []
        self._loaded = False

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def load(self, rows) -> None:
        """Bulk-load ``rows`` (already sorted by primary key).

        Raises ``ValueError`` on unsorted or duplicate keys: GhostDB loads
        the device "in a secure setting" once, so the loader is strict.
        """
        if self._loaded:
            raise ValueError(f"table {self.name!r} is already loaded")
        last_pk = None
        dense = True
        first_pk = None
        loaded = 0
        pk_writer = IntListWriter(self.device, f"load-pk:{self.name}")
        with self.store.writer(self.codec.width, f"load:{self.name}") as w:
            for row in rows:
                pk = row[self.pk_field]
                if last_pk is not None and pk <= last_pk:
                    raise ValueError(
                        f"{self.name}: rows must be sorted by unique PK "
                        f"(saw {pk} after {last_pk})"
                    )
                if first_pk is None:
                    first_pk = pk
                elif pk != first_pk + loaded:
                    dense = False
                loaded += 1
                last_pk = pk
                if not 0 <= pk <= (1 << 32) - 1:
                    raise ValueError(
                        f"{self.name}: PK {pk} outside 32-bit ID range"
                    )
                pk_writer.append(pk)
                w.append(self.codec.encode(row))
            self.pages = w.pages
            self.count = w.count
        pk_writer.close()
        if dense and self.count > 0:
            self._dense_base = first_pk
            # The PK array is redundant when keys are dense; release it.
            for lpage in pk_writer.pages:
                self.device.ftl.free(lpage)
        else:
            self._pk_pages = pk_writer.pages
        self._loaded = True

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def reader(self, label: str) -> PageReader:
        """A record reader for batch access (caller manages lifetime)."""
        return self.store.reader(self.pages, self.codec.width, self.count, label)

    def row(self, rowid: int) -> tuple:
        """Decode one full row (transient reader; one partial read)."""
        with self.reader(f"row:{self.name}") as r:
            raw = r.record(rowid)
        self.device.chip.charge("decode_field", self.codec.arity)
        return self.codec.decode(raw)

    def field(self, rowid: int, field_index: int):
        """Decode one field of one row (single cheap partial read)."""
        off, width = self.codec.field_slice(field_index)
        with self.reader(f"field:{self.name}") as r:
            raw = r.field(rowid, off, width)
        self.device.chip.charge("decode_field")
        return self.codec.types[field_index].decode(raw)

    def scan(self):
        """Yield decoded rows in PK order (full-page sequential reads)."""
        with self.reader(f"scan:{self.name}") as r:
            for raw in r.scan():
                self.device.chip.charge("decode_field", self.codec.arity)
                yield self.codec.decode(raw)

    def rowid_for_pk(self, pk: int) -> int:
        """Resolve a primary key to its rowid.

        Dense tables answer arithmetically; sparse tables binary-search the
        packed PK array with partial flash reads.
        """
        if self.count == 0:
            raise KeyNotFoundError(pk)
        if self._dense_base is not None:
            rowid = pk - self._dense_base
            if not 0 <= rowid < self.count:
                raise KeyNotFoundError(pk)
            return rowid
        ids_per_page = self.device.profile.page_size // ID_WIDTH
        lo, hi = 0, self.count - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            page_idx, slot = divmod(mid, ids_per_page)
            raw = self.device.ftl.read(
                self._pk_pages[page_idx], slot * ID_WIDTH, ID_WIDTH
            )
            value = _PACK.unpack(raw)[0]
            self.device.chip.charge("compare")
            if value == pk:
                return mid
            if value < pk:
                lo = mid + 1
            else:
                hi = mid - 1
        raise KeyNotFoundError(pk)

    def pk_of_rowid(self, rowid: int) -> int:
        """The primary key stored at ``rowid``."""
        if not 0 <= rowid < self.count:
            raise IndexError(f"rowid {rowid} out of range [0, {self.count})")
        if self._dense_base is not None:
            return self._dense_base + rowid
        ids_per_page = self.device.profile.page_size // ID_WIDTH
        page_idx, slot = divmod(rowid, ids_per_page)
        raw = self.device.ftl.read(
            self._pk_pages[page_idx], slot * ID_WIDTH, ID_WIDTH
        )
        return _PACK.unpack(raw)[0]

    @property
    def is_dense(self) -> bool:
        return self._dense_base is not None
