"""Sorted runs and external merging under the RAM budget.

Several pieces of GhostDB need to sort or merge more data than fits in the
secure chip's RAM: building climbing indexes, converting a long visible ID
list into root IDs (a union of many per-key posting lists), and the
hash-join baseline's spill path.  This module provides the classical
external-memory machinery, with all buffers charged to the device RAM
budget and all I/O to the flash -- so the *cost* of running out of RAM is
real, which is exactly the effect the paper's Post-filtering strategy
exists to avoid.

A *run* is an extent of fixed-width records in non-decreasing key order,
where the key is a byte slice of the record (all codecs in
:mod:`repro.storage.types` are order-preserving, so byte order == value
order).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.hardware.device import SmartUsbDevice
from repro.storage.pagestore import PageStore


@dataclass
class Run:
    """Handle to a sorted extent on flash."""

    pages: list[int]
    count: int
    record_width: int

    def free(self, device: SmartUsbDevice) -> None:
        for lpage in self.pages:
            device.ftl.free(lpage)


class RunWriter:
    """Writes one sorted run (thin wrapper over a page writer)."""

    def __init__(self, device: SmartUsbDevice, record_width: int, label: str):
        self.device = device
        self.record_width = record_width
        self._writer = PageStore(device).writer(record_width, label)

    def append(self, raw: bytes) -> None:
        self._writer.append(raw)

    def finish(self) -> Run:
        self._writer.close()
        return Run(
            pages=self._writer.pages,
            count=self._writer.count,
            record_width=self.record_width,
        )


class RunReader:
    """Streams a run's records back (one page buffer of RAM)."""

    def __init__(self, device: SmartUsbDevice, run: Run, label: str):
        self._reader = PageStore(device).reader(
            run.pages, run.record_width, run.count, label
        )

    def __iter__(self):
        return self._reader.scan()

    def close(self) -> None:
        self._reader.close()

    def __enter__(self) -> "RunReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def make_runs(
    device: SmartUsbDevice,
    records,
    record_width: int,
    key,
    sort_buffer_bytes: int,
    label: str,
) -> list[Run]:
    """Partition ``records`` into sorted runs using a bounded sort buffer.

    ``key`` maps a raw record to its sort key (bytes).  The sort buffer is
    allocated from the RAM budget; each full buffer is sorted in place
    (CPU-charged at n log n comparisons) and written out as one run.
    """
    if sort_buffer_bytes < record_width:
        raise ValueError("sort buffer smaller than one record")
    capacity = max(1, sort_buffer_bytes // record_width)
    runs: list[Run] = []
    buffer: list[bytes] = []
    with device.ram.allocate(capacity * record_width, f"sort:{label}"):

        def flush():
            if not buffer:
                return
            comparisons = len(buffer).bit_length() * len(buffer)
            device.chip.charge("compare", comparisons)
            buffer.sort(key=key)
            writer = RunWriter(device, record_width, f"run:{label}")
            for raw in buffer:
                writer.append(raw)
            runs.append(writer.finish())
            buffer.clear()

        for raw in records:
            buffer.append(raw)
            if len(buffer) >= capacity:
                flush()
        flush()
    return runs


class RunMerger:
    """K-way merges sorted runs within a fan-in limit (multi-pass)."""

    def __init__(
        self,
        device: SmartUsbDevice,
        key,
        label: str,
        fan_in: int | None = None,
        dedup: bool = False,
    ):
        self.device = device
        self.key = key
        self.label = label
        self.dedup = dedup
        if fan_in is None:
            # One page buffer per input plus one for the output, inside
            # whatever RAM remains.
            page = device.profile.page_size
            fan_in = max(2, device.ram.soft_available // page - 1)
        if fan_in < 2:
            raise ValueError("merge fan-in must be at least 2")
        self.fan_in = fan_in
        #: Number of merge passes the last :meth:`merge` call performed.
        self.passes = 0

    def merge(self, runs: list[Run]) -> Run:
        """Merge ``runs`` into a single sorted run, multi-pass if needed."""
        if not runs:
            writer = RunWriter(self.device, 1, f"merge:{self.label}")
            return writer.finish()
        self.passes = 0
        if len(runs) == 1 and self.dedup:
            # A lone run still needs its duplicates squeezed out.
            merged = self._merge_group(runs)
            runs[0].free(self.device)
            return merged
        while len(runs) > 1:
            self.passes += 1
            next_level: list[Run] = []
            for start in range(0, len(runs), self.fan_in):
                group = runs[start : start + self.fan_in]
                if len(group) == 1:
                    next_level.append(group[0])
                    continue
                merged = self._merge_group(group)
                for run in group:
                    run.free(self.device)
                next_level.append(merged)
            runs = next_level
        return runs[0]

    def _merge_group(self, group: list[Run]) -> Run:
        width = group[0].record_width
        readers = [
            RunReader(self.device, run, f"merge-in:{self.label}")
            for run in group
        ]
        writer = RunWriter(self.device, width, f"merge-out:{self.label}")
        try:
            streams = [iter(r) for r in readers]
            heap = []
            for idx, stream in enumerate(streams):
                raw = next(stream, None)
                if raw is not None:
                    heapq.heappush(heap, (self.key(raw), idx, raw))
            last_key = None
            while heap:
                k, idx, raw = heapq.heappop(heap)
                self.device.chip.charge("merge_step")
                if not (self.dedup and k == last_key):
                    writer.append(raw)
                    last_key = k
                nxt = next(streams[idx], None)
                if nxt is not None:
                    heapq.heappush(heap, (self.key(nxt), idx, nxt))
        finally:
            for reader in readers:
                reader.close()
        return writer.finish()


def external_merge(
    device: SmartUsbDevice,
    runs: list[Run],
    key,
    label: str,
    fan_in: int | None = None,
    dedup: bool = False,
) -> Run:
    """Convenience wrapper: merge ``runs`` into one sorted run."""
    merger = RunMerger(device, key, label, fan_in=fan_in, dedup=dedup)
    return merger.merge(runs)
