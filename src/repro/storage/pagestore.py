"""Record-granular page I/O over the FTL.

Records never span pages, so record ``i`` of a sequence lives at page
``i // slots_per_page``, slot ``i % slots_per_page`` -- pure arithmetic,
no directory reads.  Writers and readers hold exactly one page-sized
buffer each, *allocated from the device RAM budget*, which is how the
simulation keeps every storage access honest about memory.

The page list of a stored object (its "extent") is small metadata that a
real device would keep in its internal stable storage; here it lives in
the Python object and is not charged against query RAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.device import SmartUsbDevice
from repro.hardware.flash import FlashError


@dataclass
class PageStore:
    """Factory for page writers/readers bound to one device."""

    device: SmartUsbDevice

    @property
    def page_size(self) -> int:
        return self.device.profile.page_size

    def writer(self, record_width: int, label: str) -> "PageWriter":
        return PageWriter(self, record_width, label)

    def reader(
        self, pages: list[int], record_width: int, count: int, label: str
    ) -> "PageReader":
        return PageReader(self, pages, record_width, count, label)

    def free_pages(self, pages: list[int]) -> None:
        """Return an extent's pages to the FTL."""
        for lpage in pages:
            self.device.ftl.free(lpage)


class PageWriter:
    """Appends fixed-width records, flushing full pages to flash.

    Usage::

        with store.writer(codec.width, "load:Visit") as w:
            for row in rows:
                w.append(codec.encode(row))
        pages, count = w.pages, w.count
    """

    def __init__(self, store: PageStore, record_width: int, label: str):
        if record_width <= 0:
            raise ValueError("record width must be positive")
        if record_width > store.page_size:
            raise FlashError(
                f"record of {record_width} B exceeds the "
                f"{store.page_size} B page"
            )
        self.store = store
        self.record_width = record_width
        self.slots_per_page = store.page_size // record_width
        self.label = label
        self.pages: list[int] = []
        self.count = 0
        self._buffer = bytearray()
        self._alloc = store.device.ram.allocate(store.page_size, label)
        self._closed = False

    def append(self, raw: bytes) -> int:
        """Append one encoded record; returns its rowid."""
        if self._closed:
            raise ValueError(f"writer {self.label!r} is closed")
        if len(raw) != self.record_width:
            raise ValueError(
                f"record of {len(raw)} B does not match declared width "
                f"{self.record_width}"
            )
        self._buffer.extend(raw)
        rowid = self.count
        self.count += 1
        if len(self._buffer) >= self.slots_per_page * self.record_width:
            self._flush()
        return rowid

    def _flush(self) -> None:
        if not self._buffer:
            return
        lpage = self.store.device.ftl.allocate()
        self.store.device.ftl.write(lpage, bytes(self._buffer))
        self.pages.append(lpage)
        self._buffer.clear()

    def close(self) -> None:
        if not self._closed:
            self._flush()
            self._alloc.release()
            self._closed = True

    def abort(self) -> None:
        """Drop the unflushed tail and release RAM; no flash I/O.

        The exception-unwind path: a device that just faulted (power
        cut, wear-out, read-only latch) must not issue further flash
        writes while the error propagates.  Pages already flushed stay
        behind as orphans for the caller's cleanup or the mount-time
        orphan sweep.
        """
        if not self._closed:
            self._buffer.clear()
            self._alloc.release()
            self._closed = True

    def __enter__(self) -> "PageWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


class PageReader:
    """Random and sequential access to a fixed-width record extent."""

    def __init__(
        self,
        store: PageStore,
        pages: list[int],
        record_width: int,
        count: int,
        label: str,
    ):
        self.store = store
        self.pages = pages
        self.record_width = record_width
        self.count = count
        self.slots_per_page = store.page_size // record_width
        self.label = label
        self._alloc = store.device.ram.allocate(store.page_size, label)
        self._closed = False

    def _locate(self, rowid: int) -> tuple[int, int]:
        if not 0 <= rowid < self.count:
            raise IndexError(f"rowid {rowid} out of range [0, {self.count})")
        return rowid // self.slots_per_page, rowid % self.slots_per_page

    def record(self, rowid: int) -> bytes:
        """Fetch one record; a cold fetch costs one partial page read.

        The device's buffer pool may serve it for free when the page was
        recently read in full; either way this reader holds no page
        state of its own -- caching lives in exactly one place.
        """
        page_idx, slot = self._locate(rowid)
        offset = slot * self.record_width
        return self.store.device.ftl.read(
            self.pages[page_idx], offset, self.record_width
        )

    def record_cached(self, rowid: int) -> bytes:
        """Fetch one record via a full-page read through the buffer pool.

        Pays a full-page read on a pool miss but serves every further
        record on the same page for free (the pool holds the page) --
        the right choice when hits are dense (e.g. SKT access at high
        selectivity) *and* the device cache is enabled.  With the pool
        disabled this degrades to one full read per record, so callers
        gate the choice on ``device.page_cache.enabled``.
        """
        page_idx, slot = self._locate(rowid)
        data = self.store.device.ftl.read(self.pages[page_idx])
        off = slot * self.record_width
        return data[off : off + self.record_width]

    def field(self, rowid: int, offset: int, width: int) -> bytes:
        """Fetch one field of one record (cheapest possible flash read)."""
        page_idx, slot = self._locate(rowid)
        base = slot * self.record_width + offset
        return self.store.device.ftl.read(self.pages[page_idx], base, width)

    def field_cached(self, rowid: int, offset: int, width: int) -> bytes:
        """Fetch one field via a full-page read through the buffer pool.

        Pays one full-page read on a pool miss, then serves every
        further field on the same page for free -- the right choice for
        dense row sets (the same density gate as
        :meth:`record_cached`); with the pool disabled it degrades to
        one full read per field, so callers gate on
        ``device.page_cache.enabled``.
        """
        page_idx, slot = self._locate(rowid)
        data = self.store.device.ftl.read(self.pages[page_idx])
        base = slot * self.record_width + offset
        return data[base : base + width]

    def scan(self, start: int = 0, stop: int | None = None):
        """Yield raw records in rowid order using full-page reads.

        Each page is read once per scan pass (a loop-local buffer, the
        one page this reader's RAM allocation stands for); re-scans hit
        the buffer pool when one is enabled.
        """
        if stop is None:
            stop = self.count
        stop = min(stop, self.count)
        rowid = start
        while rowid < stop:
            page_idx, slot = self._locate(rowid)
            data = self.store.device.ftl.read(self.pages[page_idx])
            last_slot = min(
                self.slots_per_page, stop - page_idx * self.slots_per_page
            )
            for s in range(slot, last_slot):
                off = s * self.record_width
                yield data[off : off + self.record_width]
            rowid = (page_idx + 1) * self.slots_per_page

    def close(self) -> None:
        if not self._closed:
            self._alloc.release()
            self._closed = True

    def __enter__(self) -> "PageReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
