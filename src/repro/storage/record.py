"""Fixed-width record serialization.

A :class:`RecordCodec` encodes a tuple of typed values into a fixed-width
byte record and back.  Field offsets are precomputed so a single field can
be decoded from a record slice without touching the others --
``decode_field`` is what lets the engine read one hidden attribute with a
cheap *partial* flash read instead of a full-page read.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.types import DataType, TypeError_


@dataclass
class RecordCodec:
    """Encode/decode fixed-width records for a list of column types."""

    types: list[DataType]
    _offsets: list[int] = field(init=False)

    def __post_init__(self):
        if not self.types:
            raise TypeError_("a record needs at least one column")
        offsets = []
        pos = 0
        for dtype in self.types:
            offsets.append(pos)
            pos += dtype.width
        self._offsets = offsets
        self.width = pos

    @property
    def arity(self) -> int:
        return len(self.types)

    def offset_of(self, index: int) -> int:
        return self._offsets[index]

    def encode(self, values) -> bytes:
        """Encode one row (sequence of values) to ``self.width`` bytes."""
        if len(values) != len(self.types):
            raise TypeError_(
                f"row has {len(values)} values but codec expects "
                f"{len(self.types)}"
            )
        return b"".join(
            dtype.encode(value) for dtype, value in zip(self.types, values)
        )

    def decode(self, data: bytes) -> tuple:
        """Decode a full record."""
        if len(data) != self.width:
            raise TypeError_(
                f"record of {len(data)} B does not match codec width "
                f"{self.width}"
            )
        return tuple(
            dtype.decode(data[off : off + dtype.width])
            for dtype, off in zip(self.types, self._offsets)
        )

    def decode_field(self, data: bytes, index: int):
        """Decode a single field from a full record's bytes."""
        dtype = self.types[index]
        off = self._offsets[index]
        return dtype.decode(data[off : off + dtype.width])

    def field_slice(self, index: int) -> tuple[int, int]:
        """(offset, width) of field ``index`` within a record."""
        return self._offsets[index], self.types[index].width
