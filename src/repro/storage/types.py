"""SQL value types and their fixed-width binary codecs.

GhostDB's demo schema uses INTEGER, DATE, CHAR(n) and numeric columns.
Each type encodes to a *fixed* number of bytes so records have a fixed
width and a rowid maps to a (page, slot) arithmetically -- no per-page
slot directories to read, which matters when every page read is charged
simulated time.

Encodings are chosen so that unsigned byte-wise comparison of encodings
matches value order where we rely on it (integers and dates use
offset-binary big-endian), which keeps sorted-run merging trivial.
"""

from __future__ import annotations

import datetime
import struct
from dataclasses import dataclass

#: Offset applied to signed 64-bit integers so their big-endian encoding
#: sorts like the values do.
_I64_BIAS = 1 << 63

#: Day number of 1970-01-01 in ``datetime.date.toordinal()`` terms.
_EPOCH_ORDINAL = datetime.date(1970, 1, 1).toordinal()


class TypeError_(ValueError):
    """A value does not fit the declared SQL type.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


def date_to_days(value: datetime.date) -> int:
    """Days since the Unix epoch (negative before 1970)."""
    return value.toordinal() - _EPOCH_ORDINAL


def days_to_date(days: int) -> datetime.date:
    return datetime.date.fromordinal(days + _EPOCH_ORDINAL)


@dataclass(frozen=True)
class DataType:
    """Base class: a fixed-width, order-preserving value codec."""

    @property
    def width(self) -> int:
        raise NotImplementedError

    def validate(self, value):
        """Return ``value`` normalised, or raise :class:`TypeError_`."""
        raise NotImplementedError

    def encode(self, value) -> bytes:
        raise NotImplementedError

    def decode(self, data: bytes):
        raise NotImplementedError

    def sql_name(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class IntegerType(DataType):
    """64-bit signed integer, offset-binary big-endian."""

    @property
    def width(self) -> int:
        return 8

    def validate(self, value):
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeError_(f"INTEGER requires an int, got {value!r}")
        if not -(1 << 63) <= value < (1 << 63):
            raise TypeError_(f"INTEGER out of 64-bit range: {value!r}")
        return value

    def encode(self, value) -> bytes:
        return struct.pack(">Q", self.validate(value) + _I64_BIAS)

    def decode(self, data: bytes):
        return struct.unpack(">Q", data)[0] - _I64_BIAS

    def sql_name(self) -> str:
        return "INTEGER"


@dataclass(frozen=True)
class FloatType(DataType):
    """IEEE-754 double, stored order-preservingly.

    Raw IEEE bytes do not sort correctly (negative doubles have the sign
    bit set, so they compare *above* positives bytewise).  The classic
    total-order transform fixes that: flip all bits of negatives, flip
    only the sign bit of non-negatives.  Sorted-run merging and ORDER BY
    rely on this monotonicity.
    """

    @property
    def width(self) -> int:
        return 8

    def validate(self, value):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError_(f"FLOAT requires a number, got {value!r}")
        return float(value)

    def encode(self, value) -> bytes:
        bits = struct.unpack(">Q", struct.pack(">d", self.validate(value)))[0]
        if bits & (1 << 63):
            bits ^= (1 << 64) - 1  # negative: flip everything
        else:
            bits ^= 1 << 63  # non-negative: flip the sign bit
        return struct.pack(">Q", bits)

    def decode(self, data: bytes):
        bits = struct.unpack(">Q", data)[0]
        if bits & (1 << 63):
            bits ^= 1 << 63
        else:
            bits ^= (1 << 64) - 1
        return struct.unpack(">d", struct.pack(">Q", bits))[0]

    def sql_name(self) -> str:
        return "FLOAT"


@dataclass(frozen=True)
class DateType(DataType):
    """Calendar date, stored as biased days-since-epoch (4 bytes)."""

    @property
    def width(self) -> int:
        return 4

    def validate(self, value):
        if isinstance(value, datetime.datetime):
            value = value.date()
        if not isinstance(value, datetime.date):
            raise TypeError_(f"DATE requires a datetime.date, got {value!r}")
        return value

    def encode(self, value) -> bytes:
        days = date_to_days(self.validate(value))
        return struct.pack(">I", days + (1 << 31))

    def decode(self, data: bytes):
        days = struct.unpack(">I", data)[0] - (1 << 31)
        return days_to_date(days)

    def sql_name(self) -> str:
        return "DATE"


@dataclass(frozen=True)
class CharType(DataType):
    """CHAR(n): UTF-8, NUL-padded to ``length`` bytes."""

    length: int

    def __post_init__(self):
        if self.length <= 0:
            raise TypeError_(f"CHAR length must be positive, got {self.length}")

    @property
    def width(self) -> int:
        return self.length

    def validate(self, value):
        if not isinstance(value, str):
            raise TypeError_(f"CHAR requires a str, got {value!r}")
        if len(value.encode("utf-8")) > self.length:
            raise TypeError_(
                f"string of {len(value)} chars exceeds CHAR({self.length})"
            )
        return value

    def encode(self, value) -> bytes:
        raw = self.validate(value).encode("utf-8")
        return raw + b"\x00" * (self.length - len(raw))

    def decode(self, data: bytes):
        return data.rstrip(b"\x00").decode("utf-8")

    def sql_name(self) -> str:
        return f"CHAR({self.length})"


def type_from_sql(name: str, length: int | None = None) -> DataType:
    """Resolve a SQL type name (as parsed) to a :class:`DataType`."""
    upper = name.upper()
    if upper in ("INTEGER", "INT", "BIGINT"):
        return IntegerType()
    if upper in ("FLOAT", "REAL", "DOUBLE"):
        return FloatType()
    if upper == "DATE":
        return DateType()
    if upper in ("CHAR", "VARCHAR"):
        if length is None:
            raise TypeError_(f"{upper} requires a length, e.g. {upper}(20)")
        return CharType(length)
    raise TypeError_(f"unsupported SQL type: {name!r}")
