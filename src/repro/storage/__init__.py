"""Device-side storage engine.

Fixed-width records on NAND flash pages behind the FTL.  Hidden columns
and the replicated primary keys of every table live here; the layout is
deliberately simple (append-only, ID-ordered heaps plus packed integer
lists) because the paper's whole point is that *sorted-ID streaming*, not
clever in-place structures, is what works on write-averse flash with tens
of KB of RAM.
"""

from repro.storage.types import (
    CharType,
    DataType,
    DateType,
    FloatType,
    IntegerType,
    TypeError_,
    date_to_days,
    days_to_date,
    type_from_sql,
)
from repro.storage.record import RecordCodec
from repro.storage.pagestore import PageReader, PageStore, PageWriter
from repro.storage.intlist import IntListReader, IntListWriter
from repro.storage.heap import HeapTable
from repro.storage.runs import RunMerger, RunReader, RunWriter, external_merge

__all__ = [
    "CharType",
    "DataType",
    "DateType",
    "FloatType",
    "HeapTable",
    "IntListReader",
    "IntListWriter",
    "IntegerType",
    "PageReader",
    "PageStore",
    "PageWriter",
    "RecordCodec",
    "RunMerger",
    "RunReader",
    "RunWriter",
    "TypeError_",
    "date_to_days",
    "days_to_date",
    "external_merge",
    "type_from_sql",
]
