"""Interactive GhostDB shell.

``python -m repro`` builds a demo-schema session over the synthetic
medical dataset and drops into a small REPL: type SQL to run it, or a
dot-command for the demo-style views.

``python -m repro bench`` instead runs the benchmark regression harness
(see :mod:`repro.bench.runner`); ``python -m repro leakmeter`` runs the
adversary-eye leakage meter (see :mod:`repro.privacy.meter`);
``python -m repro doctor`` runs a self-diagnosing smoke session and
writes a leak-checked postmortem bundle (see :mod:`repro.obs.bundle`);
``python -m repro soak`` runs the deterministic sustained-DML endurance
harness under faults (see :mod:`repro.soak`).

Commands::

    <sql>;              run a statement (SELECT / INSERT before load)
    EXPLAIN LEAKAGE <select>  run and show the leakage scorecard
    .explain <sql>      show the chosen plan with cost estimates
    .explain analyze <sql>  alias for .analyze
    .analyze <sql>      run and show estimated-vs-measured per node
    .plans <sql>        rank every Pre/Post strategy by estimate
    .bench              the optimizer estimate-quality scorecard (T9)
    .spy [n]            the last n captured boundary messages (default 20)
    .leaks              leak-check the captured traffic
    .leak [sql]         leakage scorecard: what the traffic shape
                        reveals (of <sql> if given, else of the last
                        query / the captured session traffic)
    .trace <sql>        run and show the redacted span tree (sim + wall)
    .metrics            Prometheus-style exposition of session metrics,
                        with SLO percentile estimates up top
    .flight [n]         the last n flight-recorder events (default 20)
    .top [n] [key]      the n heaviest queries by a ledger key
                        (default 10 by sim_seconds)
    .dump [dir]         write a leak-checked DUMP_<seed>.json postmortem
                        bundle (flight ring, metrics, spans, ledger)
    .schema             table definitions with hidden markers
    .storage            the device's flash footprint report
    .game [sql]         play the find-the-fastest-plan game
    .fault              show the fault-injection status
    .fault <profile> [seed]  attach a fault profile (usb, flash, mixed,
                        powercut; deterministic per seed)
    .fault events [n]   the last n injected-fault decisions (default 10)
    .fault remount      remount after a power cut (recovery scan)
    .fault off          detach the injector
    .set                show tunable execution settings
    .set batch <n>      operator batch-window size (host-side only:
                        results and simulated costs are identical at
                        any value; larger is faster on the host)
    .cache              buffer-pool status (capacity, pages, hit rate)
    .cache on|off|<n>   enable (profile default), disable, or bound the
                        device buffer pool at n pages; SQL spelling:
                        SET cache = on|off|<n>
    .reset              clear measurements and the traffic log
    .help               this text
    .quit               leave
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.core.factory import build_session
from repro.engine.executor import QueryResult
from repro.hardware.profiles import PROFILES
from repro.privacy.leakcheck import LeakChecker
from repro.privacy.spy import SpyView
from repro.workload.queries import demo_query


class Shell:
    """One interactive session over a loaded GhostDB."""

    def __init__(self, scale: int = 10_000, profile: str = "demo",
                 out=None, trace_out: str | None = None,
                 metrics_out: str | None = None,
                 leak_out: str | None = None,
                 fault_profile: str | None = None, fault_seed: int = 0,
                 batch_size: int | None = None,
                 cache_pages: int | None = None,
                 dump_on_fault: bool = False,
                 dump_dir: str = "."):
        self.out = out or sys.stdout
        self.trace_out = trace_out
        self.metrics_out = metrics_out
        self.leak_out = leak_out
        self.db, self.data = build_session(
            scale=scale,
            profile=profile,
            exec_batch=batch_size,
            cache_pages=cache_pages,
            fault_profile=fault_profile,
            fault_seed=fault_seed,
            dump_on_fault=dump_on_fault,
            dump_dir=dump_dir,
        )
        self.checker = LeakChecker(self.db.schema, self.data)
        self._print(
            f"GhostDB shell -- {scale} prescriptions on "
            f"{PROFILES[profile].name}.  .help for commands."
        )

    # ------------------------------------------------------------------

    def _print(self, text: str = "") -> None:
        print(text, file=self.out)

    def handle(self, line: str) -> bool:
        """Process one input line; returns False when the shell quits."""
        line = line.strip().rstrip(";").strip()
        if not line:
            return True
        try:
            if line.startswith("."):
                return self._command(line)
            self._run_sql(line)
        except Exception as exc:  # surface, keep the shell alive
            self._print(f"error: {exc}")
        return True

    def _command(self, line: str) -> bool:
        parts = line.split(None, 1)
        name = parts[0].lower()
        argument = parts[1] if len(parts) > 1 else ""
        if name in (".quit", ".exit"):
            return False
        if name == ".help":
            self._print(__doc__)
        elif name == ".explain":
            # ".explain analyze <sql>" is the conventional spelling.
            first, _, rest = argument.partition(" ")
            if first.lower() == "analyze":
                return self._command(f".analyze {rest}".rstrip())
            self._print(self.db.explain(argument or demo_query()))
        elif name == ".analyze":
            report, result = self.db.explain_analyze(
                argument or demo_query()
            )
            self._print(report)
            self._print(f"({result.row_count} rows)")
        elif name == ".plans":
            sql = argument or demo_query()
            bound = self.db.bind(sql)
            for ranked in self.db.rank_plans(sql):
                self._print(
                    f"  {ranked.estimate.seconds * 1e3:9.3f} ms est  "
                    f"{ranked.strategy.label(bound)}"
                )
        elif name == ".bench":
            from repro.bench.scorecard import render_scorecard

            self._print(render_scorecard(self.db.bench_report()))
        elif name == ".spy":
            count = int(argument) if argument else 20
            spy = SpyView(self.db.usb_log[-count:])
            self._print(spy.transcript())
        elif name == ".leaks":
            self._print(self.checker.check(self.db.usb_log).summary())
        elif name == ".leak":
            self._leak_command(argument)
        elif name == ".trace":
            traced = self.db.trace(argument or demo_query())
            self._print(traced.render())
            self._print(f"({traced.result.row_count} rows)")
        elif name == ".metrics":
            self._show_slo()
            self._print(self.db.metrics_text())
        elif name == ".flight":
            self._show_flight(int(argument) if argument else 20)
        elif name == ".top":
            self._top_command(argument)
        elif name == ".dump":
            path = self.db.dump_bundle(
                reason="dump", directory=argument or None
            )
            self._print(f"wrote postmortem bundle to {path}")
        elif name == ".schema":
            self._show_schema()
        elif name == ".storage":
            self._show_storage()
        elif name == ".game":
            self._play_game(argument or demo_query())
        elif name == ".fault":
            self._fault_command(argument)
        elif name == ".set":
            self._set_command(argument)
        elif name == ".cache":
            self._cache_command(argument)
        elif name == ".reset":
            self.db.reset_measurements()
            self._print("measurements and traffic log cleared")
        else:
            self._print(f"unknown command {name!r}; .help lists commands")
        return True

    # ------------------------------------------------------------------

    #: SQL-level spelling of the scorecard view, sibling of EXPLAIN.
    _EXPLAIN_LEAKAGE = "explain leakage"

    #: SQL-level spelling of the buffer-pool knob.
    _SET_CACHE = "set cache"

    def _run_sql(self, sql: str) -> None:
        if sql.lower().startswith(self._EXPLAIN_LEAKAGE):
            self._leak_command(sql[len(self._EXPLAIN_LEAKAGE):].strip())
            return
        if sql.lower().startswith(self._SET_CACHE):
            value = sql[len(self._SET_CACHE):].strip().lstrip("=").strip()
            self._cache_command(value or "on")
            return
        result = self.db.execute(sql)
        if not isinstance(result, QueryResult):
            self._print("ok")
            return
        self._print("  ".join(result.columns))
        for row in result.rows[:50]:
            self._print("  ".join(str(v) for v in row))
        if result.row_count > 50:
            self._print(f"... ({result.row_count} rows total)")
        m = result.metrics
        self._print(
            f"-- {result.row_count} rows | {m.elapsed_seconds * 1e3:.2f} ms "
            f"simulated | ram {m.ram_high_water} B | "
            f"flash {m.flash_page_reads}r/{m.flash_page_writes}w | "
            f"usb {m.usb_messages} msgs"
        )

    def _leak_command(self, argument: str) -> None:
        """``.leak [sql]`` / ``EXPLAIN LEAKAGE <sql>``: the adversary's
        quantitative view.  With SQL, runs it and scores that query's
        traffic; without, scores the last metered query (or the whole
        captured log if none ran since the last reset)."""
        from repro.privacy.meter import render_profile

        if argument:
            result = self.db.query(argument)
            profile = self.db.leak_scorecard()
            self._print(render_profile(profile))
            self._print(f"({result.row_count} rows)")
            return
        profile = self.db.leak_scorecard()
        if profile is None:
            self._print("no boundary traffic captured yet; run a query")
            return
        self._print(render_profile(profile))

    def _show_slo(self) -> None:
        """Percentile estimates for the ``ghostdb_slo_*`` families."""
        summary = self.db.obs.slo_summary()
        if not summary:
            self._print("# no SLO observations yet; run a query")
            return
        self._print("# SLO percentile estimates (linear interpolation)")
        for family, stats in summary.items():
            self._print(
                f"#   {family}: p50={stats['p50']:.4g} "
                f"p90={stats['p90']:.4g} p99={stats['p99']:.4g} "
                f"(n={stats['count']})"
            )

    def _show_flight(self, count: int) -> None:
        """``.flight [n]``: tail of the flight-recorder ring."""
        flight = self.db.obs.flight
        status = "on" if flight.enabled else "off"
        self._print(
            f"flight recorder: {status}, capacity {flight.capacity}, "
            f"{flight.total_recorded} recorded, {flight.dropped} dropped"
        )
        for event in flight.events()[-count:]:
            data = " ".join(f"{k}={v}" for k, v in event.data)
            self._print(
                f"  #{event.seq:<6d} {event.sim * 1e3:10.3f} ms  "
                f"{event.kind:16s} {data}"
            )

    def _top_command(self, argument: str) -> None:
        """``.top [n] [key]``: heaviest queries in the resource ledger."""
        from repro.obs.flight import fingerprint_hex
        from repro.obs.ledger import RESOURCE_FIELDS

        parts = argument.split()
        count = 10
        key = "sim_seconds"
        for part in parts:
            if part.isdigit():
                count = int(part)
            else:
                key = part
        if key not in RESOURCE_FIELDS:
            names = ", ".join(RESOURCE_FIELDS)
            self._print(f"unknown ledger key {key!r}; keys: {names}")
            return
        ledger = self.db.obs.ledger
        entries = ledger.top(count, key=key)
        if not entries:
            self._print("resource ledger is empty; run a query")
            return
        self._print(
            f"top {len(entries)} of {ledger.total_queries} queries "
            f"by {key} ({ledger.aborted_queries} aborted):"
        )
        for entry in entries:
            marker = f"  ABORTED {entry.aborted}" if entry.aborted else ""
            self._print(
                f"  #{entry.index:<5d} plan {fingerprint_hex(entry.fingerprint)}  "
                f"{key}={getattr(entry, key)}  "
                f"{entry.result_rows} rows{marker}"
            )

    def _show_schema(self) -> None:
        for table in self.db.schema:
            self._print(table.name)
            for column in table.columns:
                marks = []
                if column.primary_key:
                    marks.append("PRIMARY KEY")
                if column.references:
                    marks.append(
                        f"REFERENCES {column.references.table}"
                        f"({column.references.column})"
                    )
                if column.hidden:
                    marks.append("HIDDEN")
                suffix = (" " + " ".join(marks)) if marks else ""
                self._print(
                    f"  {column.name} {column.dtype.sql_name()}{suffix}"
                )

    def _show_storage(self) -> None:
        report = self.db.hidden.storage_report()
        self._print("device flash footprint:")
        for name, size in sorted(report.heap_bytes.items()):
            self._print(f"  heap {name:24s} {size / 1024:8.0f} KiB")
        for name, size in sorted(report.skt_bytes.items()):
            self._print(f"  {name:29s} {size / 1024:8.0f} KiB")
        for name, size in sorted(report.index_bytes.items()):
            self._print(f"  {name:29s} {size / 1024:8.0f} KiB")
        self._print(
            f"  total base {report.base_total / 1024:.0f} KiB, "
            f"indexes {report.index_total / 1024:.0f} KiB"
        )

    def _fault_command(self, argument: str) -> None:
        from repro.faults import FAULT_PROFILES

        parts = argument.split()
        word = parts[0].lower() if parts else "status"
        if word in ("", "status"):
            injector = self.db.fault_injector
            if injector is None:
                self._print("fault injection: off")
            else:
                self._print(
                    f"fault injection: profile={injector.profile.name} "
                    f"seed={injector.seed} events={len(injector.events)} "
                    f"usb_ops={injector.usb_ops} "
                    f"flash_ops={injector.flash_ops}"
                )
            if self.db.needs_remount:
                self._print("device lost power: '.fault remount' to recover")
        elif word == "off":
            self.db.clear_faults()
            self._print("fault injection detached")
        elif word == "remount":
            if not self.db.needs_remount:
                self._print("device is powered; nothing to recover")
                return
            self.db.remount()
            self._print("remounted: recovery scan rebuilt the FTL map")
        elif word == "events":
            injector = self.db.fault_injector
            if injector is None:
                self._print("fault injection: off")
                return
            count = int(parts[1]) if len(parts) > 1 else 10
            events = injector.events[-count:]
            if not events:
                self._print("no faults injected yet")
            for event in events:
                self._print(
                    f"  #{event.op_index:<6d} {event.site:5s} {event.kind}"
                )
        elif word in FAULT_PROFILES:
            seed = int(parts[1]) if len(parts) > 1 else 0
            if word == "none":
                self.db.clear_faults()
                self._print("fault injection detached")
                return
            self.db.set_faults(word, seed)
            self._print(f"fault injection: profile={word} seed={seed}")
        else:
            names = ", ".join(sorted(FAULT_PROFILES))
            self._print(
                f"unknown fault subcommand {word!r}; "
                f"profiles: {names}; or status/events/remount/off"
            )

    def _set_command(self, argument: str) -> None:
        config = self.db.executor.config
        parts = argument.split()
        if not parts:
            self._print(f"batch      {config.exec_batch}  (operator batch window)")
            self._print(f"fetch      {config.fetch_batch}  (visible-fetch rows/msg)")
            self._print(f"fan-in     {config.max_fan_in}  (merge fan-in cap)")
            self._print(f"bloom-fp   {config.bloom_fp_target}  (Bloom FP target)")
            return
        setting = parts[0].lower()
        if setting != "batch":
            self._print(f"unknown setting {setting!r}; '.set' lists settings")
            return
        if len(parts) < 2:
            self._print(f"batch      {config.exec_batch}")
            return
        try:
            value = int(parts[1])
        except ValueError:
            self._print(f"not a batch size: {parts[1]!r}")
            return
        config.exec_batch = max(1, value)
        self._print(f"batch window set to {config.exec_batch}")

    def _cache_command(self, argument: str) -> None:
        """``.cache [on|off|<pages>]``: show or resize the buffer pool."""
        word = argument.strip().lower()
        if word:
            if word == "off":
                self.db.set_cache(0)
            elif word == "on":
                self.db.set_cache(None)
            else:
                try:
                    pages = int(word)
                except ValueError:
                    self._print(
                        f"not a cache size: {argument!r} "
                        f"(use on, off, or a page count)"
                    )
                    return
                self.db.set_cache(pages)
        cache = self.db.device.page_cache
        if not cache.enabled:
            self._print("buffer pool: off")
            return
        cap = (
            "unbounded"
            if cache.capacity_pages is None
            else f"{cache.capacity_pages} pages"
        )
        stats = cache.stats
        self._print(
            f"buffer pool: {cap} "
            f"({cache.page_count} resident, "
            f"{cache.page_size} B each)"
        )
        self._print(
            f"  {stats.hits} hits / {stats.lookups} lookups "
            f"({stats.hit_rate:.0%}), {stats.evictions} evictions, "
            f"{stats.invalidations} invalidations, "
            f"{stats.shed_pages} shed under RAM pressure"
        )

    def _play_game(self, sql: str) -> None:
        from repro.demo.game import PlanGame

        game = PlanGame(self.db, sql)
        for i, label in enumerate(game.candidates()):
            self._print(f"  [{i}] {label}")
        outcome = game.play()
        self._print(outcome.leaderboard())

    # ------------------------------------------------------------------

    def repl(self, stdin=None) -> None:
        stdin = stdin or sys.stdin
        prompt = "ghostdb> "
        while True:
            self.out.write(prompt)
            self.out.flush()
            line = stdin.readline()
            if not line:
                break
            if not self.handle(line):
                break
        self.close()
        self._print("bye")

    def close(self) -> None:
        """Flush the session trace, metrics and leakage scorecard if
        requested."""
        self._flush_trace()
        self._flush_metrics()
        self._flush_leakage()

    def _flush_trace(self) -> None:
        if not self.trace_out:
            return
        parent = os.path.dirname(self.trace_out)
        try:
            if parent:
                os.makedirs(parent, exist_ok=True)
            self.db.export_trace(self.trace_out)
        except OSError as exc:
            self._print(f"error: could not write trace: {exc}")
            return
        self._print(
            f"wrote {self.db.obs.tracer.span_count()} spans to "
            f"{self.trace_out} (load in Perfetto / chrome://tracing)"
        )

    def _flush_leakage(self) -> None:
        if not self.leak_out:
            return
        import json

        from repro.privacy.meter import profile_records

        profile = profile_records(self.db.usb_log)
        payload = (
            json.dumps(
                {
                    "kind": "ghostdb-leak-scorecard",
                    "scorecard": profile.to_record(),
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        ).encode("utf-8")
        # The scorecard is shape-only by construction; the checker
        # verifies that from the outside before anything hits disk.
        leak = self.checker.check_bytes(payload, kind="leak-scorecard")
        if not leak.ok:
            self._print(f"error: leakage scorecard not written: {leak.summary()}")
            return
        parent = os.path.dirname(self.leak_out)
        try:
            if parent:
                os.makedirs(parent, exist_ok=True)
            with open(self.leak_out, "wb") as handle:
                handle.write(payload)
        except OSError as exc:
            self._print(f"error: could not write leakage scorecard: {exc}")
            return
        self._print(
            f"wrote leakage scorecard to {self.leak_out} "
            f"({profile.messages} messages, "
            f"{profile.observable_bytes} observable bytes)"
        )

    def _flush_metrics(self) -> None:
        if not self.metrics_out:
            return
        parent = os.path.dirname(self.metrics_out)
        try:
            if parent:
                os.makedirs(parent, exist_ok=True)
            with open(self.metrics_out, "w", encoding="utf-8") as handle:
                handle.write(self.db.metrics_text())
        except OSError as exc:
            self._print(f"error: could not write metrics: {exc}")
            return
        self._print(
            f"wrote metrics exposition to {self.metrics_out} "
            f"(Prometheus text format)"
        )


def doctor_main(argv=None) -> int:
    """``python -m repro doctor``: self-diagnosing smoke session.

    Builds a small session, runs the demo query under a deterministic
    fault profile, prints the observability surfaces (flight recorder,
    resource ledger, SLO percentiles), then writes a postmortem bundle
    and verifies it against the adversarial leak checker.  Exit code 0
    means every check passed -- suitable as a CI health probe.
    """
    parser = argparse.ArgumentParser(
        prog="repro doctor",
        description="GhostDB self-diagnosis: smoke query, flight "
        "recorder, postmortem bundle, leak check",
    )
    parser.add_argument(
        "--scale", type=int, default=2_000,
        help="prescriptions in the synthetic dataset (default 2000)",
    )
    from repro.faults import FAULT_PROFILES

    parser.add_argument(
        "--fault-profile", choices=sorted(FAULT_PROFILES), default="mixed",
        help="fault regime to exercise recovery paths (default mixed)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=7,
        help="seed for the fault schedule (default 7)",
    )
    parser.add_argument(
        "--dump-dir", default=".", metavar="DIR",
        help="where the DUMP_<seed>.json bundle is written (default .)",
    )
    args = parser.parse_args(argv)

    from repro.faults.errors import GhostDBFaultError
    from repro.obs.bundle import load_bundle

    ok = True
    db, data = build_session(
        scale=args.scale,
        fault_profile=args.fault_profile,
        fault_seed=args.fault_seed,
    )
    print(f"doctor: session up ({args.scale} prescriptions, "
          f"faults={args.fault_profile} seed={args.fault_seed})")

    aborted = 0
    for attempt in range(6):
        try:
            result = db.query(demo_query())
            print(f"doctor: demo query ok ({result.row_count} rows)")
            break
        except GhostDBFaultError as exc:
            aborted += 1
            print(f"doctor: query aborted ({type(exc).__name__}); retrying")
            if db.needs_remount:
                db.remount()
    else:
        print("doctor: FAIL -- demo query never completed under faults")
        ok = False

    flight = db.obs.flight
    ledger = db.obs.ledger
    print(f"doctor: flight recorder {flight.total_recorded} events "
          f"({flight.dropped} dropped, capacity {flight.capacity})")
    print(f"doctor: ledger {ledger.total_queries} queries "
          f"({ledger.aborted_queries} aborted)")
    if flight.total_recorded == 0:
        print("doctor: FAIL -- flight recorder captured nothing")
        ok = False
    if ledger.total_queries + ledger.aborted_queries == 0:
        print("doctor: FAIL -- resource ledger is empty")
        ok = False
    for family, stats in db.obs.slo_summary().items():
        print(f"doctor: slo {family} p50={stats['p50']:.4g} "
              f"p99={stats['p99']:.4g} (n={stats['count']})")

    path = db.dump_bundle(reason="doctor", directory=args.dump_dir)
    print(f"doctor: wrote postmortem bundle {path}")
    checker = LeakChecker(db.schema, data)
    with open(path, "rb") as handle:
        report = checker.check_bytes(handle.read(), kind="postmortem")
    print(f"doctor: leak check {report.summary()}")
    if not report.ok:
        ok = False
    bundle = load_bundle(path)
    if bundle["ledger"]["total_queries"] != ledger.total_queries:
        print("doctor: FAIL -- bundle ledger does not match session")
        ok = False
    print(f"doctor: {'healthy' if ok else 'UNHEALTHY'}")
    return 0 if ok else 1


def main(argv=None) -> int:
    from repro.obs.log import configure_from_env

    configure_from_env()
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        from repro.bench.runner import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "leakmeter":
        from repro.privacy.meter import main as meter_main

        return meter_main(argv[1:])
    if argv and argv[0] == "doctor":
        return doctor_main(argv[1:])
    if argv and argv[0] == "soak":
        from repro.soak import main as soak_main

        return soak_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve import main as serve_main

        return serve_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro", description="GhostDB interactive shell"
    )
    parser.add_argument(
        "--scale", type=int, default=10_000,
        help="prescriptions in the synthetic dataset (default 10000)",
    )
    parser.add_argument(
        "--profile", choices=sorted(PROFILES), default="demo",
        help="hardware profile of the simulated device",
    )
    parser.add_argument(
        "--query", action="append", default=None,
        help="run this statement and exit (repeatable)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the session's Chrome trace-event JSON here on exit "
        "(open in Perfetto or chrome://tracing)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the session's Prometheus-style metrics exposition "
        "here on exit",
    )
    parser.add_argument(
        "--leak-out", default=None, metavar="PATH",
        help="write the session traffic's leakage scorecard (JSON, "
        "leak-checked first) here on exit",
    )
    from repro.faults import FAULT_PROFILES

    parser.add_argument(
        "--fault-profile", choices=sorted(FAULT_PROFILES), default=None,
        help="attach this deterministic fault-injection profile at start",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the fault schedule (same seed, same faults)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="operator batch-window size (host-side tunable; results "
        "and simulated costs are identical at any value)",
    )
    parser.add_argument(
        "--cache-pages", type=int, default=None, metavar="N",
        help="device buffer-pool capacity in flash pages "
        "(default: a quarter of device RAM; 0 disables the pool)",
    )
    parser.add_argument(
        "--dump-on-fault", action="store_true",
        help="write a DUMP_<seed>.json postmortem bundle whenever a "
        "query aborts on a typed fault",
    )
    parser.add_argument(
        "--dump-dir", default=".", metavar="DIR",
        help="directory for postmortem bundles (default .)",
    )
    args = parser.parse_args(argv)
    shell = Shell(
        scale=args.scale, profile=args.profile, trace_out=args.trace_out,
        metrics_out=args.metrics_out, leak_out=args.leak_out,
        fault_profile=args.fault_profile, fault_seed=args.fault_seed,
        batch_size=args.batch_size, cache_pages=args.cache_pages,
        dump_on_fault=args.dump_on_fault, dump_dir=args.dump_dir,
    )
    if args.query:
        for sql in args.query:
            shell.handle(sql)
        shell.close()
        return 0
    shell.repl()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
