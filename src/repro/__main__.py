"""``python -m repro`` launches the interactive GhostDB shell."""

from repro.cli import main

raise SystemExit(main())
