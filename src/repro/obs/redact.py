"""The redaction gate: nothing hidden may enter a trace.

Telemetry is itself a side channel.  ObliDB-style threat models (see
PAPERS.md) treat any observable execution artefact -- timings, counters,
debug output -- as visible to the adversary, so GhostDB's tracing layer
must uphold the same invariant as the USB link: **spans may carry shapes
and counts, never hidden values**.

The gate is default-deny for text.  Every string attribute routed into a
span is tokenised, and any token that is not part of the registered
*structural vocabulary* (operator names, plan labels, schema identifiers,
engine keywords -- never data values) is replaced with ``?``.  Numbers,
booleans and ``None`` pass as-is: instrumentation only attaches counts
and sizes as numbers, and the vocabulary never contains data, so a hidden
``Patient.Name = 'Dupont'`` predicate can only ever appear in a trace as
``Patient.Name = '?'``.

The guarantee is verified from the outside: the test suite feeds exported
traces through the adversarial :class:`~repro.privacy.leakcheck.LeakChecker`
built from the raw dataset.
"""

from __future__ import annotations

import re

#: Tokens are maximal alphanumeric runs; everything between tokens
#: (punctuation, quotes, spaces, underscores) is structural and passes
#: through, so ``flash_page_reads`` is vetted word by word.
_TOKEN = re.compile(r"[A-Za-z0-9]+")

#: Replacement for tokens outside the vocabulary.
REDACTED = "?"

#: Structural engine vocabulary: names the code base itself uses.  These
#: are compile-time identifiers, never data values, so they are safe to
#: show.  Schema identifiers (table/column names) are added per session.
ENGINE_VOCAB = frozenset(
    {
        # operator / plan node names
        "op", "climbing", "select", "visible", "scan", "convert", "merge",
        "intersect", "union", "skt", "access", "bloom", "filter", "probe",
        "store", "project", "ids", "tuples", "rows", "aggregate", "order",
        "limit", "by", "to", "device", "host", "operator", "operators",
        # strategy / predicate structure
        "pre", "post", "cross", "eq", "neq", "range", "in", "and", "or",
        "not", "true", "false", "none", "null", "no", "predicates",
        # span / category names
        "query", "execute", "executor", "lower", "run", "optimizer",
        "rank", "candidate", "choose", "optimize", "plan", "plans",
        "hardware", "flash", "usb", "ram", "cpu", "engine", "session",
        "trace", "load", "append", "maintenance",
        # common attribute words
        "est", "ms", "sim", "wall", "seconds", "bytes", "count", "date",
        "key", "index", "heap", "fan", "batch", "recheck", "residual",
        "hidden", "expected", "fp", "rate", "hashes", "bits", "inserted",
        "result", "candidates", "candidate", "chosen", "fitting", "self",
        "out", "high", "water", "page", "reads", "writes", "erases",
        "block", "messages", "sql", "pulled", "error", "detail",
        "finished", "strategy", "probed", "passed", "inputs", "dropped",
        "via",
        # leakage metering (shape-derived names, never data values)
        "leak", "leakage", "observable", "shape", "shapes", "entropy",
        "signature", "signatures", "gap", "gaps", "mean", "duration",
        "retransmissions", "repeated", "ratio", "observed", "profiled",
        "fingerprint", "classifier", "accuracy", "chance", "label",
        "labels", "family", "families", "band", "trials", "meter",
        "scorecard", "clean",
        # SQL keywords (query *structure* is an accepted revelation;
        # constants still scrub to '?')
        "from", "where", "group", "having", "distinct", "as", "on",
        "between", "like", "sum", "avg", "min", "max", "insert", "into",
        "create", "values", "integer", "char", "varchar", "float",
        "primary", "references",
        # flight recorder / postmortem bundle (event kinds, ledger and
        # bundle field names, fault-site identifiers, typed-abort class
        # names -- all compile-time identifiers, never data values)
        "flight", "recorder", "ledger", "dump", "postmortem", "bundle",
        "doctor", "slo", "quantile", "quantiles", "seq", "kind", "data",
        "events", "event", "begin", "end", "abort", "aborted", "fault",
        "faults", "retry", "retries", "attempt", "reason", "site",
        "remap", "remaps", "remount", "remounts", "recovery", "recover",
        "cache", "hits", "misses", "evictions", "invalidations", "shed",
        "pressure", "exhausted", "torn", "scanned", "pages", "capacity",
        "recorded", "total", "totals", "window", "cumulative", "queries",
        "entries", "spans", "state", "summary", "schema", "version",
        "created", "profile", "seed", "corrupt", "cut", "power",
        "unplugged", "transfer", "deferred", "injected", "scheduled",
        "unplug", "drop", "stall", "truncate", "bitflip", "bad",
        "invalidate", "ftl", "counter", "gauge", "histogram",
        "deviceunpluggederror", "powercuterror", "usbtransfererror",
        "usbdroppederror", "frameerror", "ramexhaustederror",
        "ghostdbfaulterror", "ghostdb",
    }
)


class Redactor:
    """Token-level scrubber with a registered safe vocabulary."""

    def __init__(self, vocabulary: set[str] | None = None):
        self._vocab: set[str] = set(ENGINE_VOCAB)
        if vocabulary:
            self._vocab.update(t.lower() for t in vocabulary)
        #: How many tokens were redacted so far (a health signal: a
        #: spike means instrumentation is trying to log raw text).
        self.redacted_tokens = 0

    # ------------------------------------------------------------------
    # Vocabulary management
    # ------------------------------------------------------------------

    def allow(self, *tokens: str) -> None:
        """Register structural tokens (identifiers, not values)."""
        for token in tokens:
            for part in _TOKEN.findall(str(token)):
                self._vocab.add(part.lower())

    def allow_schema(self, schema) -> None:
        """Register every table and column *name* of a schema.

        Names are part of the accepted revelation (requests on the wire
        already carry them); values never are.
        """
        for table in schema:
            self.allow(table.name)
            for column in table.columns:
                self.allow(column.name)

    def knows(self, token: str) -> bool:
        return token.lower() in self._vocab

    # ------------------------------------------------------------------
    # Gating
    # ------------------------------------------------------------------

    def scrub(self, text: str) -> str:
        """Replace every out-of-vocabulary token with ``?``."""

        def _gate(match: re.Match) -> str:
            token = match.group(0)
            if token.lower() in self._vocab:
                return token
            self.redacted_tokens += 1
            return REDACTED

        return _TOKEN.sub(_gate, text)

    def value(self, value):
        """Gate one attribute value.

        Numbers, booleans and ``None`` pass (counts and shapes are the
        whole point of the subsystem); strings are scrubbed; containers
        are gated recursively; anything else is reduced to its scrubbed
        ``str()`` form so arbitrary objects cannot smuggle values.
        """
        if value is None or isinstance(value, (bool, int, float)):
            return value
        if isinstance(value, str):
            return self.scrub(value)
        if isinstance(value, (list, tuple)):
            return [self.value(v) for v in value]
        if isinstance(value, dict):
            return {self.scrub(str(k)): self.value(v) for k, v in value.items()}
        return self.scrub(str(value))
