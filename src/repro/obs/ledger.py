"""Per-query resource ledger: what every query cost, priced precisely.

The metrics registry answers "how much has this session consumed in
total"; the ledger answers "which query consumed it".  Every executed
plan -- including ones aborted mid-flight by an injected fault -- files
one :class:`QueryLedgerEntry`: simulated milliseconds, flash reads and
writes, USB messages and bytes in both directions, the RAM high-water
mark, buffer-pool traffic and the result row count, keyed by a plan
fingerprint (a CRC32 of plan shape, never of data).

The ledger keeps a bounded window of recent entries plus *unbounded
cumulative totals*, so a long session can always say both "the heaviest
recent query" (:meth:`ResourceLedger.top`, the ``.top`` shell view) and
"what this session cost overall".  It is the accounting substrate the
multi-session scheduler prices admission against: per-query resource
vectors feed the ``ghostdb_slo_*`` percentile families registered by
:class:`~repro.obs.Observability`.

Everything here is counts, sizes and durations -- entries carry no
strings except the abort reason, which is an exception class name (a
code identifier, registered with the redaction vocabulary).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

#: Recent entries retained for ``.top`` / postmortem bundles; totals are
#: cumulative regardless.
DEFAULT_WINDOW = 512

#: The additive resource fields, in presentation order.  ``sim_seconds``
#: and ``wall_seconds`` are floats, the rest integers.
RESOURCE_FIELDS = (
    "sim_seconds",
    "wall_seconds",
    "flash_page_reads",
    "flash_page_writes",
    "flash_block_erases",
    "usb_messages",
    "usb_bytes_to_device",
    "usb_bytes_to_host",
    "cache_hits",
    "cache_misses",
    "result_rows",
)


@dataclass(frozen=True)
class QueryLedgerEntry:
    """One query's complete resource vector."""

    index: int
    fingerprint: int
    sim_seconds: float = 0.0
    wall_seconds: float = 0.0
    flash_page_reads: int = 0
    flash_page_writes: int = 0
    flash_block_erases: int = 0
    usb_messages: int = 0
    usb_bytes_to_device: int = 0
    usb_bytes_to_host: int = 0
    ram_high_water: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    result_rows: int = 0
    #: Exception class name when an injected fault killed the query;
    #: ``None`` for a completed one.  Aborted queries still ran -- their
    #: consumption is real and stays on the books.
    aborted: str | None = None

    @classmethod
    def from_metrics(
        cls,
        index: int,
        fingerprint: int,
        metrics,
        wall_seconds: float,
        aborted: str | None = None,
    ) -> "QueryLedgerEntry":
        """Build from one :class:`~repro.engine.metrics.ExecutionMetrics`."""
        return cls(
            index=index,
            fingerprint=fingerprint,
            sim_seconds=metrics.elapsed_seconds,
            wall_seconds=wall_seconds,
            flash_page_reads=metrics.flash_page_reads,
            flash_page_writes=metrics.flash_page_writes,
            flash_block_erases=metrics.flash_block_erases,
            usb_messages=metrics.usb_messages,
            usb_bytes_to_device=metrics.usb_bytes_to_device,
            usb_bytes_to_host=metrics.usb_bytes_to_host,
            ram_high_water=metrics.ram_high_water,
            cache_hits=metrics.cache_hits,
            cache_misses=metrics.cache_misses,
            result_rows=metrics.result_rows,
            aborted=aborted,
        )

    def as_dict(self) -> dict:
        record = {
            "index": self.index,
            "fingerprint": self.fingerprint,
            "ram_high_water": self.ram_high_water,
            "aborted": self.aborted,
        }
        for name in RESOURCE_FIELDS:
            record[name] = getattr(self, name)
        return record


@dataclass
class ResourceLedger:
    """Bounded recent window + cumulative session totals."""

    window: int = DEFAULT_WINDOW
    entries: deque = field(default_factory=deque)
    #: Cumulative sums over *every* entry ever recorded, including those
    #: the window has since dropped.
    totals: dict = field(default_factory=dict)
    total_queries: int = 0
    aborted_queries: int = 0
    #: Largest per-query RAM high-water seen this session (a max, not a
    #: sum, so it lives outside :attr:`totals`).
    ram_high_water: int = 0

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("ledger window must be >= 1")
        if self.entries.maxlen != self.window:
            self.entries = deque(self.entries, maxlen=self.window)
        for name in RESOURCE_FIELDS:
            self.totals.setdefault(name, 0)

    # ------------------------------------------------------------------

    @property
    def next_index(self) -> int:
        """1-based index the next recorded query will get."""
        return self.total_queries + 1

    def record(self, entry: QueryLedgerEntry) -> None:
        """File one query's resource vector."""
        self.entries.append(entry)
        self.total_queries += 1
        if entry.aborted is not None:
            self.aborted_queries += 1
        self.ram_high_water = max(self.ram_high_water, entry.ram_high_water)
        totals = self.totals
        for name in RESOURCE_FIELDS:
            totals[name] += getattr(entry, name)

    # ------------------------------------------------------------------

    def top(
        self, count: int = 10, key: str = "sim_seconds"
    ) -> list[QueryLedgerEntry]:
        """The heaviest recent queries by ``key`` (a resource field)."""
        if key not in RESOURCE_FIELDS and key != "ram_high_water":
            raise KeyError(
                f"unknown ledger field {key!r}; choose from "
                f"{RESOURCE_FIELDS + ('ram_high_water',)}"
            )
        ranked = sorted(
            self.entries, key=lambda e: getattr(e, key), reverse=True
        )
        return ranked[: max(0, count)]

    def last(self) -> QueryLedgerEntry | None:
        return self.entries[-1] if self.entries else None

    def to_record(self) -> dict:
        """JSON-ready form for the postmortem bundle."""
        return {
            "window": self.window,
            "total_queries": self.total_queries,
            "aborted_queries": self.aborted_queries,
            "dropped_entries": max(
                0, self.total_queries - len(self.entries)
            ),
            "ram_high_water": self.ram_high_water,
            "totals": dict(sorted(self.totals.items())),
            "queries": [entry.as_dict() for entry in self.entries],
        }

    def clear(self) -> None:
        """Zero the ledger (window size survives)."""
        self.entries.clear()
        self.totals = {name: 0 for name in RESOURCE_FIELDS}
        self.total_queries = 0
        self.aborted_queries = 0
        self.ram_high_water = 0
