"""Postmortem crash bundles (``DUMP_<seed>.json``).

When a query dies under an injected unplug or power cut -- or when an
operator asks (``.dump``, ``ghostdb doctor``, ``--dump-on-fault``) --
the session snapshots everything a postmortem needs into one JSON
bundle: the flight-recorder ring, the full metrics registry, the span
forest (aborted spans appear exactly as deep as they hung), a summary of
device/FTL state, and the per-query resource ledger including the
aborted query's row.

Bundles are observable execution artefacts, so they pass the same bar as
traces and bench artifacts: every string goes through the session's
:class:`~repro.obs.redact.Redactor` (dict keys, which this code base
authors, are registered as safe vocabulary; string *values* stay
default-deny), and the test suite feeds the serialized bytes through the
adversarial :class:`~repro.privacy.leakcheck.LeakChecker` across the
whole chaos sweep to prove every bundle CLEAN.

The bundle is built from a *duck-typed* session (anything with ``obs``,
``device``, ``config``, ``fault_injector``) so this module never imports
:mod:`repro.core` -- core imports obs, not the other way around.
"""

from __future__ import annotations

import dataclasses
import json
import os

from repro.obs.export import span_tree_dicts
from repro.obs.redact import Redactor

#: Bump on any incompatible change to the bundle layout.
SCHEMA_VERSION = 1

#: Bundle discriminator, so tooling can reject arbitrary JSON.
KIND = "ghostdb-postmortem"


def _numeric_fields(stats) -> dict:
    """A dataclass's int/float fields as a plain dict (counters only)."""
    return {
        f.name: getattr(stats, f.name)
        for f in dataclasses.fields(stats)
        if isinstance(getattr(stats, f.name), (int, float))
    }


def device_state_summary(device) -> dict:
    """Counts-and-sizes snapshot of every hardware layer.

    Everything here is a counter, a capacity, or a structural name the
    code base defines -- the same information the metrics exposition
    carries, grouped the way a postmortem reads it.
    """
    ram = device.ram
    cache = device.page_cache
    ftl = device.ftl
    summary = {
        "profile": device.profile.name,
        "sim_clock_seconds": device.clock.now,
        "ram": {
            "capacity": ram.capacity,
            "used": ram.used,
            "high_water": ram.high_water,
            "reclaimable_used": ram.reclaimable_used,
            "allocation_count": ram.allocation_count,
        },
        "flash": _numeric_fields(device.flash.stats),
        "cache": {
            "pages": cache.page_count,
            "capacity_pages": cache.capacity_pages,
            **_numeric_fields(cache.stats),
        },
        "ftl": {
            "mapped_pages": ftl.mapped_pages,
            "free_pages_estimate": ftl.free_pages_estimate,
            "stale_pages": len(ftl._stale),
            "spare_blocks": ftl.spare_blocks,
            **_numeric_fields(ftl.stats),
        },
        "usb": {
            "messages": device.usb.message_count,
            "bytes_to_device": device.usb.bytes_to_device,
            "bytes_to_host": device.usb.bytes_to_host,
        },
        "faults": None,
    }
    injector = device.faults
    if injector is not None:
        summary["faults"] = {
            "profile": injector.profile.name,
            "seed": injector.seed,
            "usb_ops": injector.usb_ops,
            "flash_ops": injector.flash_ops,
            "injected": len(injector.events),
            "schedule": [
                {"site": e.site, "kind": e.kind, "op": e.op_index}
                for e in injector.events
            ],
        }
    return summary


def _metric_families(registry) -> dict:
    """The registry as structured samples, keyed family -> sample line.

    Sample keys are the exposition's ``name{labels}`` strings (authored
    by this code base, so safe vocabulary); values are the numbers.
    """
    families = {}
    for metric in registry:
        samples = {}
        for line in metric.expose():
            key, _, raw = line.rpartition(" ")
            value = float(raw)
            samples[key] = int(value) if value.is_integer() else value
        families[metric.name] = {"kind": metric.kind, "samples": samples}
    return families


def build_bundle(session, reason: str = "dump") -> dict:
    """Assemble the full postmortem dict (pre-redaction).

    ``reason`` is a structural identifier: an abort's exception class
    name, or ``"dump"`` / ``"doctor"`` for on-demand snapshots.
    """
    obs = session.obs
    device = session.device
    injector = session.fault_injector
    seed = (
        injector.seed if injector is not None
        else session.config.fault_seed
    )
    flight = obs.flight
    return {
        "kind": KIND,
        "schema_version": SCHEMA_VERSION,
        "reason": reason,
        "seed": seed,
        "config": {
            "profile": device.profile.name,
            "fault_profile": (
                injector.profile.name if injector is not None else None
            ),
            "fault_seed": seed,
            "cache_pages": device.page_cache.capacity_pages,
            "id_batch": session.config.id_batch,
            "flight_capacity": flight.capacity,
        },
        "flight": {
            "capacity": flight.capacity,
            "enabled": flight.enabled,
            "total_recorded": flight.total_recorded,
            "dropped": flight.dropped,
            "events": flight.snapshot(),
        },
        "ledger": obs.ledger.to_record(),
        "metrics": _metric_families(obs.registry),
        "spans": span_tree_dicts(obs.tracer.roots),
        "device": device_state_summary(device),
        "leak_check": "CLEAN",
    }


def _allow_structure(redactor: Redactor, bundle: dict) -> None:
    """Register the bundle's *structural* tokens with the gate.

    Dict keys (event kinds' field names, metric sample lines, ledger
    columns) are authored by this code base and therefore safe; string
    values stay default-deny except the known structural fields below --
    anything else that sneaks in as a string value scrubs to ``?`` and
    shows up in review instead of leaking.
    """
    redactor.allow(
        bundle.get("kind", ""),
        bundle.get("reason", ""),
        bundle.get("leak_check", ""),
        bundle.get("config", {}).get("profile", ""),
        bundle.get("config", {}).get("fault_profile") or "",
        bundle.get("device", {}).get("profile", ""),
    )

    def _keys(value) -> None:
        if isinstance(value, dict):
            for key, sub in value.items():
                redactor.allow(str(key))
                _keys(sub)
        elif isinstance(value, (list, tuple)):
            for sub in value:
                _keys(sub)

    _keys(bundle)


def bundle_payload(bundle: dict, redactor: Redactor | None = None) -> bytes:
    """Gate the bundle through redaction and serialize it.

    A fresh default-deny :class:`Redactor` is used unless one is given
    (the session passes its own, which already knows the schema
    vocabulary -- table and column *names* are part of the accepted
    revelation; values never are).
    """
    redactor = redactor or Redactor()
    _allow_structure(redactor, bundle)
    scrubbed = redactor.value(bundle)
    text = json.dumps(scrubbed, indent=2, sort_keys=True) + "\n"
    return text.encode("utf-8")


def bundle_filename(bundle: dict) -> str:
    return f"DUMP_{bundle.get('seed', 0)}.json"


def write_bundle(
    bundle: dict,
    directory: str = ".",
    redactor: Redactor | None = None,
) -> str:
    """Serialize one bundle into ``directory``; returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, bundle_filename(bundle))
    payload = bundle_payload(bundle, redactor)
    with open(path, "wb") as handle:
        handle.write(payload)
    return path


def load_bundle(path: str) -> dict:
    """Read one bundle back, refusing foreign or future JSON."""
    with open(path, "r", encoding="utf-8") as handle:
        bundle = json.load(handle)
    if not isinstance(bundle, dict) or bundle.get("kind") != KIND:
        raise ValueError(f"{path}: not a {KIND} bundle")
    version = bundle.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: bundle schema_version {version!r}, "
            f"this tool speaks {SCHEMA_VERSION}"
        )
    return bundle
