"""Structured logging for the whole ``repro`` package.

Library code must never write to stdout unconditionally -- the CLI owns
its output stream, benchmarks own theirs, and a library user embedding
GhostDB owns both.  Every module therefore logs through a stdlib logger
obtained from :func:`get_logger`; the package root carries a
``NullHandler`` so nothing is emitted unless the *application* opted in
via :func:`configure` (or the ``GHOSTDB_LOG`` environment variable).

Log messages follow the same rule as spans: shapes and counts only,
never data values.  Anything quoted into a message should be a schema
identifier or an engine label.
"""

from __future__ import annotations

import logging
import os
import sys

#: Root of the package logger hierarchy.
ROOT = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

#: Marker attribute on handlers installed by :func:`configure`, so
#: reconfiguration replaces them instead of stacking duplicates.
_MANAGED = "_ghostdb_managed"

logging.getLogger(ROOT).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """The logger for one module, under the ``repro`` hierarchy.

    Pass ``__name__``; absolute module paths already live under the
    hierarchy, anything else is nested beneath it.
    """
    if name == ROOT or name.startswith(ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT}.{name}")


def configure(
    level: int | str = logging.INFO, stream=None
) -> logging.Logger:
    """Opt in: attach one stream handler to the package root.

    Idempotent -- calling again replaces the previously installed
    handler (changed level/stream included) rather than duplicating it.
    """
    if isinstance(level, str):
        level = logging.getLevelName(level.upper())
        if not isinstance(level, int):
            raise ValueError(f"unknown log level {level!r}")
    root = logging.getLogger(ROOT)
    for handler in list(root.handlers):
        if getattr(handler, _MANAGED, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    setattr(handler, _MANAGED, True)
    root.addHandler(handler)
    root.setLevel(level)
    return root


def configure_from_env(env: str = "GHOSTDB_LOG") -> logging.Logger | None:
    """Honour ``GHOSTDB_LOG=debug|info|warning|...`` when present."""
    value = os.environ.get(env)
    if not value:
        return None
    return configure(level=value)
