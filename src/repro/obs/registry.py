"""Named counters, gauges and histograms with Prometheus-style text
exposition.

The demo's popups show one query at a time; the registry is the
cross-query view: flash page reads/writes/erases, USB messages and bytes
by direction, RAM high-water, plans considered, Bloom false positives --
accumulated over the whole session and rendered in the standard
``# HELP`` / ``# TYPE`` / sample-line text format, so the numbers drop
straight into any Prometheus-compatible tooling.

Metric *values* are only ever counts, sizes and durations; label values
are structural identifiers (category names, directions, operator names).
Hidden data has no path into the registry by construction.
"""

from __future__ import annotations

import math
import re
import threading
from dataclasses import dataclass, field

_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: One process-wide lock guarding the *slow* paths only: registering a
#: new metric family and creating a bound counter child.  The hot paths
#: (an existing family's dict lookup, a bound child's ``inc``) stay
#: lock-free.  Module-level rather than per-instance so registries (and
#: the sessions holding them) stay picklable -- ``threading.Lock`` is
#: not, and session persistence pickles the whole object graph.
_SLOW_PATH_LOCK = threading.Lock()


class MetricError(ValueError):
    """Invalid metric name, label, or type conflict."""


def _check_name(name: str) -> str:
    if not _NAME.match(name):
        raise MetricError(f"invalid metric name {name!r}")
    return name


def _label_key(labels: dict) -> tuple:
    # Hot path: the hardware layer bumps unlabelled (or single-label)
    # counters on every simulated flash/USB/CPU event, so skip the
    # sort-and-validate machinery when there is nothing to sort.
    if not labels:
        return ()
    if len(labels) == 1:
        ((key, value),) = labels.items()
        if not _LABEL.match(key):
            raise MetricError(f"invalid label name {key!r}")
        return ((key, str(value)),)
    for label in labels:
        if not _LABEL.match(label):
            raise MetricError(f"invalid label name {label!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(key: tuple, extra: tuple = ()) -> str:
    items = list(key) + list(extra)
    if not items:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in items)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class BoundCounter:
    """A counter child with its label key pre-resolved.

    The hardware layer bumps the same counter with the same labels once
    per simulated flash/USB/CPU event; binding once moves the label
    validation and key construction out of the per-event path.  The
    child writes into the parent's value dict, which ``reset()`` clears
    in place, so bound children survive measurement resets.
    """

    __slots__ = ("_parent", "_key")

    def __init__(self, parent: "Counter", key: tuple):
        self._parent = parent
        self._key = key

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise MetricError(
                f"{self._parent.name}: counters cannot decrease"
            )
        values = self._parent._values
        values[self._key] = values.get(self._key, 0) + amount


@dataclass
class Counter:
    """A monotonically increasing total, optionally labelled."""

    name: str
    help: str
    _values: dict[tuple, float] = field(default_factory=dict)
    #: Memoized bound children by label key, so two sessions asking for
    #: the same child race on a dict *read*, not on construction.
    _bound: dict[tuple, BoundCounter] = field(
        default_factory=dict, repr=False
    )

    kind = "counter"

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise MetricError(f"{self.name}: counters cannot decrease")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def labelled(self, **labels) -> BoundCounter:
        """A bound child for per-event hot paths (see above).

        Child creation is the slow path and takes the shared lock; a
        child that already exists is returned lock-free.  Sessions can
        therefore resolve the same ``(name, labels)`` child concurrently
        and always share one object (and one value slot).
        """
        key = _label_key(labels)
        bound = self._bound.get(key)
        if bound is not None:
            return bound
        with _SLOW_PATH_LOCK:
            bound = self._bound.get(key)
            if bound is None:
                bound = BoundCounter(self, key)
                self._bound[key] = bound
            return bound

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0)

    def total(self) -> float:
        """Sum over every label combination."""
        return sum(self._values.values())

    def expose(self) -> list[str]:
        lines = []
        for key in sorted(self._values):
            lines.append(
                f"{self.name}{_render_labels(key)} "
                f"{_format_value(self._values[key])}"
            )
        return lines or [f"{self.name} 0"]

    def reset(self) -> None:
        self._values.clear()


@dataclass
class Gauge:
    """A value that can go up and down (or track a maximum)."""

    name: str
    help: str
    _values: dict[tuple, float] = field(default_factory=dict)

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self._values[_label_key(labels)] = value

    def set_max(self, value: float, **labels) -> None:
        """Keep the largest value seen (e.g. session RAM high-water)."""
        key = _label_key(labels)
        self._values[key] = max(self._values.get(key, value), value)

    def inc(self, amount: float = 1, **labels) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0)

    def expose(self) -> list[str]:
        lines = []
        for key in sorted(self._values):
            lines.append(
                f"{self.name}{_render_labels(key)} "
                f"{_format_value(self._values[key])}"
            )
        return lines or [f"{self.name} 0"]

    def reset(self) -> None:
        self._values.clear()


#: Default histogram buckets, tuned for byte sizes and small counts.
DEFAULT_BUCKETS = (64, 256, 1024, 4096, 16384, 65536)


@dataclass
class Histogram:
    """Cumulative-bucket histogram (``le`` convention)."""

    name: str
    help: str
    buckets: tuple = DEFAULT_BUCKETS
    _counts: dict[tuple, list[int]] = field(default_factory=dict)
    _sums: dict[tuple, float] = field(default_factory=dict)
    _totals: dict[tuple, int] = field(default_factory=dict)

    kind = "histogram"

    def __post_init__(self):
        self.buckets = tuple(sorted(self.buckets))
        if not self.buckets:
            raise MetricError(f"{self.name}: histogram needs buckets")

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        counts = self._counts.setdefault(key, [0] * len(self.buckets))
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
        self._sums[key] = self._sums.get(key, 0) + value
        self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels) -> int:
        return self._totals.get(_label_key(labels), 0)

    def sum(self, **labels) -> float:
        return self._sums.get(_label_key(labels), 0)

    def quantile(self, q: float, **labels) -> float:
        """Estimate the ``q``-quantile from the cumulative buckets.

        Standard Prometheus-style ``histogram_quantile``: find the first
        bucket whose cumulative count covers rank ``q * total``, then
        interpolate linearly within it (the lower edge of the first
        bucket is taken as 0).  Observations above the highest finite
        bound land in the implicit ``+Inf`` bucket, for which the best
        bounded answer -- and the conventional one -- is the highest
        finite bound.  Returns 0.0 when nothing has been observed.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricError(
                f"{self.name}: quantile must be in [0, 1], got {q!r}"
            )
        key = _label_key(labels)
        total = self._totals.get(key, 0)
        if total == 0:
            return 0.0
        rank = q * total
        counts = self._counts[key]
        lower = 0.0
        prev = 0
        for bound, cumulative in zip(self.buckets, counts):
            if cumulative >= rank:
                span = cumulative - prev
                if span == 0:
                    return float(bound)
                return lower + (float(bound) - lower) * (rank - prev) / span
            lower = float(bound)
            prev = cumulative
        return float(self.buckets[-1])

    def expose(self) -> list[str]:
        lines = []
        for key in sorted(self._totals):
            counts = self._counts[key]
            for bound, count in zip(self.buckets, counts):
                lines.append(
                    f"{self.name}_bucket"
                    f"{_render_labels(key, (('le', _format_value(float(bound))),))}"
                    f" {count}"
                )
            lines.append(
                f"{self.name}_bucket"
                f"{_render_labels(key, (('le', '+Inf'),))}"
                f" {self._totals[key]}"
            )
            lines.append(
                f"{self.name}_sum{_render_labels(key)} "
                f"{_format_value(self._sums[key])}"
            )
            lines.append(
                f"{self.name}_count{_render_labels(key)} {self._totals[key]}"
            )
        return lines or [f"{self.name}_count 0"]

    def reset(self) -> None:
        self._counts.clear()
        self._sums.clear()
        self._totals.clear()


class MetricsRegistry:
    """Get-or-create metric store with text exposition."""

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        # Hot path first: per-event instrument lookups vastly outnumber
        # registrations, and a name already in the store has passed the
        # name check once at creation.
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise MetricError(
                    f"{name!r} is already registered as a "
                    f"{existing.kind}, not a {cls.kind}"
                )
            return existing
        # Slow path: registration.  Two interleaved sessions asking for
        # the same family must converge on one object, or the loser's
        # bound children write into a family nobody exposes.
        with _SLOW_PATH_LOCK:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise MetricError(
                        f"{name!r} is already registered as a "
                        f"{existing.kind}, not a {cls.kind}"
                    )
                return existing
            _check_name(name)
            metric = cls(name=name, help=help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple | None = None
    ) -> Histogram:
        if buckets is not None:
            return self._get_or_create(
                Histogram, name, help, buckets=tuple(buckets)
            )
        return self._get_or_create(Histogram, name, help)

    def get(self, name: str):
        return self._metrics.get(name)

    def __iter__(self):
        # Sorted by name, like expose_text: iteration order (and thus
        # every dump or artifact built from it) must not depend on the
        # order in which call sites happened to register families.
        return iter(
            self._metrics[name] for name in sorted(self._metrics)
        )

    def expose_text(self) -> str:
        """The full registry in Prometheus text exposition format."""
        lines = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric.expose())
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Zero every value; registrations and help text survive."""
        for metric in self._metrics.values():
            metric.reset()
