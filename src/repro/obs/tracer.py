"""Span tracer over the simulated device clock and the host wall clock.

A :class:`Span` is one named interval of work with parent/child nesting,
measured on *two* timelines at once:

* **simulated device time** -- deltas of the session's
  :class:`~repro.hardware.clock.SimClock`, the metric the paper's
  Figure 6 plots; and
* **host wall time** -- ``time.perf_counter()`` deltas, which measure the
  simulator itself (optimizer costing, for instance, burns wall time but
  zero simulated time).

Spans are opened with a context manager (``with tracer.span(...)``) or
recorded post-hoc from already-collected timestamps
(:meth:`Tracer.record`), which is how the executor turns per-operator
enter/exit stamps into a nested trace after a query finishes.

Every span name and attribute passes through the session's
:class:`~repro.obs.redact.Redactor` before it is stored, so hidden column
values cannot enter a trace even if instrumentation code tries.
"""

from __future__ import annotations

import itertools
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.redact import Redactor


@dataclass
class Span:
    """One traced interval on both timelines."""

    span_id: int
    name: str
    category: str
    start_sim: float
    start_wall: float
    end_sim: float | None = None
    end_wall: float | None = None
    attrs: dict = field(default_factory=dict)
    parent: "Span | None" = None
    children: list["Span"] = field(default_factory=list)
    _redactor: Redactor | None = None

    @property
    def finished(self) -> bool:
        return self.end_sim is not None

    @property
    def sim_seconds(self) -> float:
        return (self.end_sim or self.start_sim) - self.start_sim

    @property
    def wall_seconds(self) -> float:
        return (self.end_wall or self.start_wall) - self.start_wall

    @property
    def depth(self) -> int:
        depth, node = 0, self.parent
        while node is not None:
            depth, node = depth + 1, node.parent
        return depth

    def set(self, key: str, value) -> None:
        """Attach one attribute, through the redaction gate."""
        if self._redactor is not None:
            self.attrs[self._redactor.scrub(str(key))] = (
                self._redactor.value(value)
            )
        else:
            self.attrs[str(key)] = value

    def walk(self):
        """This span then all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def line(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.attrs.items())
        return (
            f"{self.name} [sim {self.sim_seconds * 1e3:.3f} ms | "
            f"wall {self.wall_seconds * 1e3:.3f} ms]"
            + (f" {extras}" if extras else "")
        )


class _NullSpan:
    """No-op span handed out while tracing is disabled."""

    __slots__ = ()

    def set(self, key: str, value) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans for one session; one instance per GhostDB."""

    def __init__(
        self,
        clock=None,
        redactor: Redactor | None = None,
        enabled: bool = True,
    ):
        #: The session's :class:`~repro.hardware.clock.SimClock` (or any
        #: object with a ``now`` property).  Standalone use without a
        #: clock gets a flat simulated timeline (wall time still works).
        #: Held as an object, not a closure, so sessions stay picklable.
        self.clock = clock
        self.redactor = redactor if redactor is not None else Redactor()
        self.enabled = enabled
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._ids = itertools.count(1)

    def sim_now(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def _open(self, name: str, category: str, parent: Span | None) -> Span:
        span = Span(
            span_id=next(self._ids),
            name=self.redactor.scrub(str(name)),
            category=self.redactor.scrub(str(category)),
            start_sim=self.sim_now(),
            start_wall=time.perf_counter(),
            parent=parent,
            _redactor=self.redactor,
        )
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        return span

    @contextmanager
    def span(self, name: str, category: str = "engine", **attrs):
        """Open a nested span for the duration of the ``with`` block."""
        if not self.enabled:
            yield _NULL_SPAN
            return
        span = self._open(name, category, self.current())
        for key, value in attrs.items():
            span.set(key, value)
        self._stack.append(span)
        try:
            yield span
        except BaseException as exc:
            # Exception class names are code identifiers, not data.
            self.redactor.allow(type(exc).__name__)
            span.set("error", type(exc).__name__)
            raise
        finally:
            self._stack.pop()
            span.end_sim = self.sim_now()
            span.end_wall = time.perf_counter()

    def record(
        self,
        name: str,
        category: str,
        start_sim: float,
        end_sim: float,
        start_wall: float | None = None,
        end_wall: float | None = None,
        attrs: dict | None = None,
        parent: Span | None = None,
    ) -> Span | None:
        """Add a span from already-collected timestamps.

        ``parent=None`` nests under the currently open span (or becomes a
        root).  This is how per-operator stamps become trace spans after
        the pull-based execution interleaving is over.
        """
        if not self.enabled:
            return None
        span = self._open(name, category, parent or self.current())
        span.start_sim = start_sim
        span.end_sim = end_sim
        span.start_wall = (
            start_wall if start_wall is not None else span.start_wall
        )
        span.end_wall = end_wall if end_wall is not None else span.start_wall
        for key, value in (attrs or {}).items():
            span.set(key, value)
        return span

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def spans(self):
        """Every recorded span, pre-order across all roots."""
        for root in self.roots:
            yield from root.walk()

    def span_count(self) -> int:
        return sum(1 for _ in self.spans())

    def clear(self) -> None:
        """Forget recorded spans (open spans stay on the stack)."""
        self.roots = [s for s in self.roots if not s.finished]
