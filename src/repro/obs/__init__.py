"""Privacy-safe observability: tracing, metrics, logging, redaction.

The paper's demo *is* an observability pitch -- clicking an operator pops
up its statistics, Figure 6 plots per-plan execution time.  This package
is that idea grown into a subsystem:

* :mod:`repro.obs.tracer` -- nested spans over the simulated device
  clock *and* the host wall clock;
* :mod:`repro.obs.export` -- Chrome trace-event JSON (loads in
  Perfetto / ``chrome://tracing``) and a compact text tree;
* :mod:`repro.obs.registry` -- counters/gauges/histograms with
  Prometheus-style text exposition, aggregated across queries;
* :mod:`repro.obs.log` -- stdlib logging wiring for the whole package;
* :mod:`repro.obs.redact` -- the gate every span attribute passes
  through, so hidden column values can never enter a trace.

:class:`Observability` bundles one of each per session and is threaded
through the optimizer, executor and hardware layers by
:class:`~repro.core.ghostdb.GhostDB`.
"""

from __future__ import annotations

from repro.obs.export import (
    chrome_trace_json,
    render_tree,
    span_tree_dicts,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.flight import (
    DEFAULT_CAPACITY,
    FlightEvent,
    FlightRecorder,
    fingerprint_hex,
    plan_fingerprint,
)
from repro.obs.ledger import QueryLedgerEntry, ResourceLedger
from repro.obs.log import configure, configure_from_env, get_logger
from repro.obs.redact import Redactor
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.obs.tracer import Span, Tracer

__all__ = [
    "Counter",
    "FlightEvent",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "Observability",
    "QueryLedgerEntry",
    "Redactor",
    "ResourceLedger",
    "Span",
    "Tracer",
    "chrome_trace_json",
    "configure",
    "configure_from_env",
    "fingerprint_hex",
    "get_logger",
    "plan_fingerprint",
    "render_tree",
    "span_tree_dicts",
    "to_chrome_trace",
    "write_chrome_trace",
]

#: Percentiles the SLO summary (``.metrics``, ``.top``) reports.
SLO_QUANTILES = (0.5, 0.9, 0.99)


class Observability:
    """One session's tracer + registry + redactor, wired together."""

    def __init__(
        self,
        clock=None,
        enabled: bool = True,
        flight_capacity: int | None = None,
        flight_enabled: bool = True,
        registry: MetricsRegistry | None = None,
        flight: FlightRecorder | None = None,
        redactor: Redactor | None = None,
    ):
        """Build a session's observability bundle.

        ``registry``, ``flight`` and ``redactor`` may be injected so
        several sessions on one device share the device-wide parts (one
        metrics exposition, one black box) while each keeps a private
        tracer and ledger.  ``_register_session_metrics`` is a
        get-or-create pass, so re-running it against a shared registry
        is a no-op.
        """
        self.redactor = redactor if redactor is not None else Redactor()
        self.tracer = Tracer(
            clock=clock, redactor=self.redactor, enabled=enabled
        )
        self.registry = registry if registry is not None else MetricsRegistry()
        # The black box: always-on unless explicitly disabled, host-side
        # memory, shared clock with the tracer (the session re-points
        # both at the device clock once the device exists).
        if flight is not None:
            self.flight = flight
        else:
            self.flight = FlightRecorder(
                capacity=(
                    flight_capacity
                    if flight_capacity is not None
                    else DEFAULT_CAPACITY
                ),
                clock=clock,
                enabled=flight_enabled,
            )
        self.ledger = ResourceLedger()
        self._register_session_metrics()

    def _register_session_metrics(self) -> None:
        """Pre-register the query-attributed metric families so the
        exposition is complete (at zero) before the first query."""
        reg = self.registry
        reg.counter(
            "ghostdb_queries_total", "SELECTs executed this session"
        )
        reg.counter(
            "ghostdb_result_rows_total", "result rows across all queries"
        )
        reg.counter(
            "ghostdb_flash_page_reads_total",
            "flash page reads attributed to queries",
        )
        reg.counter(
            "ghostdb_flash_page_writes_total",
            "flash page writes attributed to queries",
        )
        reg.counter(
            "ghostdb_flash_block_erases_total",
            "flash block erases attributed to queries",
        )
        reg.counter(
            "ghostdb_usb_messages_total",
            "USB messages attributed to queries",
        )
        reg.counter(
            "ghostdb_usb_bytes_total",
            "USB payload bytes attributed to queries, by direction",
        )
        reg.counter(
            "ghostdb_sim_seconds_total",
            "simulated device seconds attributed to queries, by category",
        )
        reg.gauge(
            "ghostdb_ram_high_water_bytes",
            "largest per-query device RAM peak seen this session",
        )
        reg.counter(
            "ghostdb_plans_considered_total",
            "candidate plans priced by the optimizer",
        )
        reg.counter(
            "ghostdb_bloom_false_positives_total",
            "tuples that passed a Bloom filter but failed the host recheck",
        )
        reg.counter(
            "ghostdb_operator_sim_seconds_total",
            "per-operator simulated self time, by operator name",
        )
        reg.counter(
            "ghostdb_trace_redactions_total",
            "span attribute tokens scrubbed by the redaction gate",
        )
        reg.gauge(
            "ghostdb_trace_spans", "spans currently held by the tracer"
        )
        reg.histogram(
            "ghostdb_optimizer_est_over_meas",
            "cost-model estimated over measured simulated seconds, "
            "per executed plan",
            buckets=(0.25, 0.5, 0.8, 1.25, 2.0, 4.0),
        )
        # Fault injection and crash recovery (see docs/ROBUSTNESS.md).
        reg.counter(
            "ghostdb_faults_injected_total",
            "faults manifested by the deterministic injector, "
            "by site and kind",
        )
        reg.counter(
            "ghostdb_usb_retries_total",
            "USB frame retransmissions, by reason (corrupt, dropped)",
        )
        reg.counter(
            "ghostdb_flash_remaps_total",
            "FTL write remaps after torn pages or bad blocks, by reason",
        )
        reg.counter(
            "ghostdb_flash_ecc_corrections_total",
            "transient flash read bit-flips corrected by the spare-area "
            "ECC (charged as an extra read)",
        )
        reg.counter(
            "ghostdb_device_flash_bad_blocks_total",
            "blocks that manifested as bad and were retired",
        )
        reg.counter(
            "ghostdb_recovery_remounts_total",
            "device remounts after a power cut or unplug",
        )
        reg.counter(
            "ghostdb_recovery_scans_total",
            "mount-time FTL recovery scans over the spare-area journal",
        )
        reg.counter(
            "ghostdb_recovery_pages_scanned_total",
            "programmed pages visited by recovery scans",
        )
        reg.counter(
            "ghostdb_recovery_torn_pages_total",
            "torn or unjournaled pages rolled back by recovery scans",
        )
        reg.counter(
            "ghostdb_recovery_aborted_queries_total",
            "queries aborted by an injected fault, by reason",
        )
        # Adversary-eye leakage metering (see docs/OBSERVABILITY.md).
        reg.counter(
            "ghostdb_leak_queries_profiled_total",
            "queries whose boundary traffic was leak-profiled",
        )
        reg.counter(
            "ghostdb_leak_observable_bytes_total",
            "bytes a USB observer sees, attributed to queries, "
            "by direction",
        )
        reg.counter(
            "ghostdb_leak_messages_total",
            "boundary messages a USB observer sees, by kind",
        )
        reg.counter(
            "ghostdb_leak_ids_observed_total",
            "row IDs readable off the wire (repeats counted), by kind",
        )
        reg.gauge(
            "ghostdb_leak_distinct_shapes",
            "distinct (direction, kind, size) message shapes of the "
            "last profiled query",
        )
        reg.gauge(
            "ghostdb_leak_shape_entropy_bits",
            "shape-distribution entropy of the last profiled query",
        )
        reg.gauge(
            "ghostdb_leak_request_signature",
            "request-sequence signature (CRC32) of the last profiled "
            "query -- fault-profile invariant by construction",
        )
        # SLO resource families (see docs/OBSERVABILITY.md): per-query
        # distributions of the ledger's resource vectors, the percentile
        # surfaces the multi-session scheduler prices admission against.
        reg.histogram(
            "ghostdb_slo_sim_seconds",
            "per-query simulated device seconds",
            buckets=(0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0),
        )
        reg.histogram(
            "ghostdb_slo_flash_page_reads",
            "per-query flash page reads",
            buckets=(4, 16, 64, 256, 1024, 4096, 16384),
        )
        reg.histogram(
            "ghostdb_slo_usb_messages",
            "per-query USB boundary messages",
            buckets=(4, 16, 64, 256, 1024, 4096),
        )
        reg.histogram(
            "ghostdb_slo_usb_bytes",
            "per-query USB payload bytes, both directions summed",
            buckets=(1024, 8192, 65536, 262144, 1048576, 4194304),
        )
        reg.histogram(
            "ghostdb_slo_ram_high_water_bytes",
            "per-query device RAM high-water mark",
            buckets=(1024, 4096, 16384, 65536, 262144, 1048576),
        )
        reg.histogram(
            "ghostdb_slo_result_rows",
            "per-query result rows",
            buckets=(1, 10, 100, 1000, 10000, 100000),
        )
        reg.counter(
            "ghostdb_flight_events_total",
            "flight-recorder events journaled since the last reset",
        )
        reg.counter(
            "ghostdb_postmortem_bundles_total",
            "postmortem bundles written, by reason",
        )

    # ------------------------------------------------------------------

    def record_query_metrics(
        self,
        metrics,
        fingerprint: int = 0,
        wall_seconds: float = 0.0,
    ) -> QueryLedgerEntry:
        """Fold one query's :class:`ExecutionMetrics` diff into the
        cross-query registry totals, the ``ghostdb_slo_*`` distributions
        and the resource ledger; returns the filed ledger entry."""
        reg = self.registry
        reg.counter("ghostdb_queries_total").inc()
        reg.counter("ghostdb_result_rows_total").inc(metrics.result_rows)
        reg.counter("ghostdb_flash_page_reads_total").inc(
            metrics.flash_page_reads
        )
        reg.counter("ghostdb_flash_page_writes_total").inc(
            metrics.flash_page_writes
        )
        reg.counter("ghostdb_flash_block_erases_total").inc(
            metrics.flash_block_erases
        )
        reg.counter("ghostdb_usb_messages_total").inc(metrics.usb_messages)
        reg.counter("ghostdb_usb_bytes_total").inc(
            metrics.usb_bytes_to_device, direction="to_device"
        )
        reg.counter("ghostdb_usb_bytes_total").inc(
            metrics.usb_bytes_to_host, direction="to_host"
        )
        for category, seconds in metrics.time.as_dict().items():
            reg.counter("ghostdb_sim_seconds_total").inc(
                max(0.0, seconds), category=category
            )
        reg.gauge("ghostdb_ram_high_water_bytes").set_max(
            metrics.ram_high_water
        )
        for op in metrics.operators:
            reg.counter("ghostdb_operator_sim_seconds_total").inc(
                max(0.0, op.self_seconds), operator=op.name
            )
        reg.counter("ghostdb_trace_redactions_total").inc(
            max(
                0,
                self.redactor.redacted_tokens
                - reg.counter("ghostdb_trace_redactions_total").total(),
            )
        )
        reg.gauge("ghostdb_trace_spans").set(self.tracer.span_count())
        self._observe_slo(metrics)
        entry = QueryLedgerEntry.from_metrics(
            self.ledger.next_index, fingerprint, metrics, wall_seconds
        )
        self.ledger.record(entry)
        return entry

    def record_aborted_query(
        self,
        metrics,
        fingerprint: int = 0,
        wall_seconds: float = 0.0,
        reason: str = "GhostDBFaultError",
    ) -> QueryLedgerEntry:
        """File a fault-aborted query's (real) consumption in the ledger.

        Deliberately *not* folded into ``ghostdb_queries_total`` or the
        SLO distributions: those count completed queries, and a query
        killed halfway would drag every percentile toward its truncated
        cost.  The ledger row -- marked with the abort's exception class
        name -- is what the postmortem bundle surfaces.
        """
        entry = QueryLedgerEntry.from_metrics(
            self.ledger.next_index,
            fingerprint,
            metrics,
            wall_seconds,
            aborted=reason,
        )
        self.ledger.record(entry)
        return entry

    def _observe_slo(self, metrics) -> None:
        reg = self.registry
        reg.histogram("ghostdb_slo_sim_seconds").observe(
            metrics.elapsed_seconds
        )
        reg.histogram("ghostdb_slo_flash_page_reads").observe(
            metrics.flash_page_reads
        )
        reg.histogram("ghostdb_slo_usb_messages").observe(
            metrics.usb_messages
        )
        reg.histogram("ghostdb_slo_usb_bytes").observe(
            metrics.usb_bytes_to_device + metrics.usb_bytes_to_host
        )
        reg.histogram("ghostdb_slo_ram_high_water_bytes").observe(
            metrics.ram_high_water
        )
        reg.histogram("ghostdb_slo_result_rows").observe(
            metrics.result_rows
        )

    def slo_summary(self) -> dict[str, dict]:
        """Percentile estimates for every ``ghostdb_slo_*`` family.

        ``{family: {"count": n, "p50": ..., "p90": ..., "p99": ...}}``,
        families with no observations omitted.  This is what ``.metrics``
        prints above the raw exposition.
        """
        summary = {}
        for metric in self.registry:
            if not metric.name.startswith("ghostdb_slo_"):
                continue
            if metric.kind != "histogram":
                continue
            count = metric.count()
            if count == 0:
                continue
            row = {"count": count}
            for q in SLO_QUANTILES:
                row[f"p{int(q * 100)}"] = metric.quantile(q)
            summary[metric.name] = row
        return summary

    def record_leakage(self, profile) -> None:
        """Fold one query's :class:`~repro.privacy.meter.TrafficProfile`
        into the ``ghostdb_leak_*`` families.

        Everything recorded here is traffic *shape* -- counts, sizes,
        the sequence CRC -- so it passes the same bar as span
        attributes: numbers only, no values.
        """
        reg = self.registry
        reg.counter("ghostdb_leak_queries_profiled_total").inc()
        reg.counter("ghostdb_leak_observable_bytes_total").inc(
            profile.bytes_to_device, direction="to_device"
        )
        reg.counter("ghostdb_leak_observable_bytes_total").inc(
            profile.bytes_to_host, direction="to_host"
        )
        for kind, count in sorted(profile.kind_messages.items()):
            reg.counter("ghostdb_leak_messages_total").inc(count, kind=kind)
        for kind, stats in sorted(profile.id_stats.items()):
            reg.counter("ghostdb_leak_ids_observed_total").inc(
                stats.total, kind=kind
            )
        reg.gauge("ghostdb_leak_distinct_shapes").set(profile.distinct_shapes)
        reg.gauge("ghostdb_leak_shape_entropy_bits").set(
            profile.shape_entropy_bits
        )
        reg.gauge("ghostdb_leak_request_signature").set(profile.signature_int)
