"""Privacy-safe observability: tracing, metrics, logging, redaction.

The paper's demo *is* an observability pitch -- clicking an operator pops
up its statistics, Figure 6 plots per-plan execution time.  This package
is that idea grown into a subsystem:

* :mod:`repro.obs.tracer` -- nested spans over the simulated device
  clock *and* the host wall clock;
* :mod:`repro.obs.export` -- Chrome trace-event JSON (loads in
  Perfetto / ``chrome://tracing``) and a compact text tree;
* :mod:`repro.obs.registry` -- counters/gauges/histograms with
  Prometheus-style text exposition, aggregated across queries;
* :mod:`repro.obs.log` -- stdlib logging wiring for the whole package;
* :mod:`repro.obs.redact` -- the gate every span attribute passes
  through, so hidden column values can never enter a trace.

:class:`Observability` bundles one of each per session and is threaded
through the optimizer, executor and hardware layers by
:class:`~repro.core.ghostdb.GhostDB`.
"""

from __future__ import annotations

from repro.obs.export import (
    chrome_trace_json,
    render_tree,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.log import configure, configure_from_env, get_logger
from repro.obs.redact import Redactor
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.obs.tracer import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "Observability",
    "Redactor",
    "Span",
    "Tracer",
    "chrome_trace_json",
    "configure",
    "configure_from_env",
    "get_logger",
    "render_tree",
    "to_chrome_trace",
    "write_chrome_trace",
]


class Observability:
    """One session's tracer + registry + redactor, wired together."""

    def __init__(self, clock=None, enabled: bool = True):
        self.redactor = Redactor()
        self.tracer = Tracer(
            clock=clock, redactor=self.redactor, enabled=enabled
        )
        self.registry = MetricsRegistry()
        self._register_session_metrics()

    def _register_session_metrics(self) -> None:
        """Pre-register the query-attributed metric families so the
        exposition is complete (at zero) before the first query."""
        reg = self.registry
        reg.counter(
            "ghostdb_queries_total", "SELECTs executed this session"
        )
        reg.counter(
            "ghostdb_result_rows_total", "result rows across all queries"
        )
        reg.counter(
            "ghostdb_flash_page_reads_total",
            "flash page reads attributed to queries",
        )
        reg.counter(
            "ghostdb_flash_page_writes_total",
            "flash page writes attributed to queries",
        )
        reg.counter(
            "ghostdb_flash_block_erases_total",
            "flash block erases attributed to queries",
        )
        reg.counter(
            "ghostdb_usb_messages_total",
            "USB messages attributed to queries",
        )
        reg.counter(
            "ghostdb_usb_bytes_total",
            "USB payload bytes attributed to queries, by direction",
        )
        reg.counter(
            "ghostdb_sim_seconds_total",
            "simulated device seconds attributed to queries, by category",
        )
        reg.gauge(
            "ghostdb_ram_high_water_bytes",
            "largest per-query device RAM peak seen this session",
        )
        reg.counter(
            "ghostdb_plans_considered_total",
            "candidate plans priced by the optimizer",
        )
        reg.counter(
            "ghostdb_bloom_false_positives_total",
            "tuples that passed a Bloom filter but failed the host recheck",
        )
        reg.counter(
            "ghostdb_operator_sim_seconds_total",
            "per-operator simulated self time, by operator name",
        )
        reg.counter(
            "ghostdb_trace_redactions_total",
            "span attribute tokens scrubbed by the redaction gate",
        )
        reg.gauge(
            "ghostdb_trace_spans", "spans currently held by the tracer"
        )
        reg.histogram(
            "ghostdb_optimizer_est_over_meas",
            "cost-model estimated over measured simulated seconds, "
            "per executed plan",
            buckets=(0.25, 0.5, 0.8, 1.25, 2.0, 4.0),
        )
        # Fault injection and crash recovery (see docs/ROBUSTNESS.md).
        reg.counter(
            "ghostdb_faults_injected_total",
            "faults manifested by the deterministic injector, "
            "by site and kind",
        )
        reg.counter(
            "ghostdb_usb_retries_total",
            "USB frame retransmissions, by reason (corrupt, dropped)",
        )
        reg.counter(
            "ghostdb_flash_remaps_total",
            "FTL write remaps after torn pages or bad blocks, by reason",
        )
        reg.counter(
            "ghostdb_flash_ecc_corrections_total",
            "transient flash read bit-flips corrected by the spare-area "
            "ECC (charged as an extra read)",
        )
        reg.counter(
            "ghostdb_device_flash_bad_blocks_total",
            "blocks that manifested as bad and were retired",
        )
        reg.counter(
            "ghostdb_recovery_remounts_total",
            "device remounts after a power cut or unplug",
        )
        reg.counter(
            "ghostdb_recovery_scans_total",
            "mount-time FTL recovery scans over the spare-area journal",
        )
        reg.counter(
            "ghostdb_recovery_pages_scanned_total",
            "programmed pages visited by recovery scans",
        )
        reg.counter(
            "ghostdb_recovery_torn_pages_total",
            "torn or unjournaled pages rolled back by recovery scans",
        )
        reg.counter(
            "ghostdb_recovery_aborted_queries_total",
            "queries aborted by an injected fault, by reason",
        )
        # Adversary-eye leakage metering (see docs/OBSERVABILITY.md).
        reg.counter(
            "ghostdb_leak_queries_profiled_total",
            "queries whose boundary traffic was leak-profiled",
        )
        reg.counter(
            "ghostdb_leak_observable_bytes_total",
            "bytes a USB observer sees, attributed to queries, "
            "by direction",
        )
        reg.counter(
            "ghostdb_leak_messages_total",
            "boundary messages a USB observer sees, by kind",
        )
        reg.counter(
            "ghostdb_leak_ids_observed_total",
            "row IDs readable off the wire (repeats counted), by kind",
        )
        reg.gauge(
            "ghostdb_leak_distinct_shapes",
            "distinct (direction, kind, size) message shapes of the "
            "last profiled query",
        )
        reg.gauge(
            "ghostdb_leak_shape_entropy_bits",
            "shape-distribution entropy of the last profiled query",
        )
        reg.gauge(
            "ghostdb_leak_request_signature",
            "request-sequence signature (CRC32) of the last profiled "
            "query -- fault-profile invariant by construction",
        )

    # ------------------------------------------------------------------

    def record_query_metrics(self, metrics) -> None:
        """Fold one query's :class:`ExecutionMetrics` diff into the
        cross-query registry totals."""
        reg = self.registry
        reg.counter("ghostdb_queries_total").inc()
        reg.counter("ghostdb_result_rows_total").inc(metrics.result_rows)
        reg.counter("ghostdb_flash_page_reads_total").inc(
            metrics.flash_page_reads
        )
        reg.counter("ghostdb_flash_page_writes_total").inc(
            metrics.flash_page_writes
        )
        reg.counter("ghostdb_flash_block_erases_total").inc(
            metrics.flash_block_erases
        )
        reg.counter("ghostdb_usb_messages_total").inc(metrics.usb_messages)
        reg.counter("ghostdb_usb_bytes_total").inc(
            metrics.usb_bytes_to_device, direction="to_device"
        )
        reg.counter("ghostdb_usb_bytes_total").inc(
            metrics.usb_bytes_to_host, direction="to_host"
        )
        for category, seconds in metrics.time.as_dict().items():
            reg.counter("ghostdb_sim_seconds_total").inc(
                max(0.0, seconds), category=category
            )
        reg.gauge("ghostdb_ram_high_water_bytes").set_max(
            metrics.ram_high_water
        )
        for op in metrics.operators:
            reg.counter("ghostdb_operator_sim_seconds_total").inc(
                max(0.0, op.self_seconds), operator=op.name
            )
        reg.counter("ghostdb_trace_redactions_total").inc(
            max(
                0,
                self.redactor.redacted_tokens
                - reg.counter("ghostdb_trace_redactions_total").total(),
            )
        )
        reg.gauge("ghostdb_trace_spans").set(self.tracer.span_count())

    def record_leakage(self, profile) -> None:
        """Fold one query's :class:`~repro.privacy.meter.TrafficProfile`
        into the ``ghostdb_leak_*`` families.

        Everything recorded here is traffic *shape* -- counts, sizes,
        the sequence CRC -- so it passes the same bar as span
        attributes: numbers only, no values.
        """
        reg = self.registry
        reg.counter("ghostdb_leak_queries_profiled_total").inc()
        reg.counter("ghostdb_leak_observable_bytes_total").inc(
            profile.bytes_to_device, direction="to_device"
        )
        reg.counter("ghostdb_leak_observable_bytes_total").inc(
            profile.bytes_to_host, direction="to_host"
        )
        for kind, count in sorted(profile.kind_messages.items()):
            reg.counter("ghostdb_leak_messages_total").inc(count, kind=kind)
        for kind, stats in sorted(profile.id_stats.items()):
            reg.counter("ghostdb_leak_ids_observed_total").inc(
                stats.total, kind=kind
            )
        reg.gauge("ghostdb_leak_distinct_shapes").set(profile.distinct_shapes)
        reg.gauge("ghostdb_leak_shape_entropy_bits").set(
            profile.shape_entropy_bits
        )
        reg.gauge("ghostdb_leak_request_signature").set(profile.signature_int)
