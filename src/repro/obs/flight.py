"""The flight recorder: an always-on, bounded journal of engine events.

Live tracing answers "what is this query doing right now"; the flight
recorder answers "what happened in the seconds *before* the crash".  It
is the black box of the simulated device: a fixed-capacity ring buffer
of structured events -- query begin/end with a plan fingerprint, fault
injections and retries, FTL remaps and recovery scans, buffer-pool
shedding, RAM-pressure episodes, remounts -- each stamped with both the
simulated device clock and the host wall clock.

Design constraints, in order:

* **O(1) per event, tiny constant.**  Recording is one clock read, one
  ``perf_counter`` call and one ``deque.append`` of a small tuple.  No
  string formatting, no dict merging, no metric lookups on the hot path.
* **Fixed footprint.**  The ring is a ``deque(maxlen=capacity)``; once
  full, the oldest event is dropped per append.  The buffer is *host*
  memory -- diagnostic state of the simulator, like the USB capture log
  -- so it is deliberately accounted outside the device's secure RAM
  budget and can never perturb an operator's reservations.
* **Observationally inert.**  The recorder never touches the simulated
  clock, the RAM budget, the flash array or the USB channel; turning it
  off must leave rows, simulated time and boundary traffic bit-identical
  (the test suite proves this).
* **Deterministic sequence.**  Under a fixed seed the sequence of
  (kind, simulated time, payload) triples is bit-identical across runs;
  only the wall-clock stamps differ.  :meth:`FlightRecorder.signature`
  is the sequence with wall time stripped, which chaos-replay tests and
  postmortem-bundle comparisons key on.

Event payloads carry only counts, sizes, structural identifiers and the
plan fingerprint (a CRC32 of plan *shape*) -- never data values -- so a
snapshot of the ring passes the same redaction bar as trace spans.
"""

from __future__ import annotations

import time
import zlib
from collections import deque
from dataclasses import dataclass

#: Default ring capacity, in events.  At ~10 events per faulted query
#: this is several hundred queries of history -- enough for any
#: postmortem -- at well under a megabyte of host memory.
DEFAULT_CAPACITY = 4096


@dataclass(frozen=True)
class FlightEvent:
    """One journaled event, on both timelines."""

    seq: int
    sim: float
    wall: float
    kind: str
    data: tuple  # ((key, value), ...) in recording order

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "sim": self.sim,
            "wall": self.wall,
            "kind": self.kind,
            "data": dict(self.data),
        }


class FlightRecorder:
    """Bounded ring buffer of :class:`FlightEvent` entries.

    One instance per session, threaded through the hardware layers by
    :class:`~repro.hardware.device.SmartUsbDevice` and through the
    engine by the executor.  ``enabled=False`` turns every
    :meth:`record` into an immediate return (the on/off invariance the
    tests pin is trivial by construction, but pinned nonetheless).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        clock=None,
        enabled: bool = True,
    ):
        if capacity < 1:
            raise ValueError("flight recorder needs capacity >= 1")
        #: The session's :class:`~repro.hardware.clock.SimClock` (any
        #: object with a ``now`` property); set by the session once the
        #: device exists, like the tracer's.
        self.clock = clock
        self.enabled = enabled
        self._ring: deque = deque(maxlen=capacity)
        #: Events ever recorded (including those the ring has dropped).
        self.total_recorded = 0
        #: Events evicted by a full ring (not those forgotten by clear).
        self.dropped = 0
        #: Optional pre-bound ``ghostdb_flight_events_total`` child (a
        #: :class:`~repro.obs.registry.BoundCounter`); the session wires
        #: it so the exposition shows journaling volume without the
        #: recorder knowing about the registry.
        self.metric = None

    # ------------------------------------------------------------------
    # Recording (the hot path)
    # ------------------------------------------------------------------

    def record(self, kind: str, **data) -> None:
        """Journal one event; O(1), never raises on a full ring."""
        if not self.enabled:
            return
        ring = self._ring
        if len(ring) == ring.maxlen:
            self.dropped += 1
        self.total_recorded += 1
        ring.append((
            self.total_recorded,
            self.clock.now if self.clock is not None else 0.0,
            time.perf_counter(),
            kind,
            tuple(data.items()),
        ))
        if self.metric is not None:
            self.metric.inc()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._ring.maxlen

    def __len__(self) -> int:
        return len(self._ring)

    def events(self) -> list[FlightEvent]:
        """The retained events, oldest first."""
        return [
            FlightEvent(seq=s, sim=sim, wall=wall, kind=kind, data=data)
            for s, sim, wall, kind, data in self._ring
        ]

    def signature(self) -> tuple:
        """The deterministic view: wall-clock stamps stripped.

        Same workload, same seed, same configuration => identical
        signature, which is what the chaos-replay tests compare.
        """
        return tuple(
            (seq, sim, kind, data)
            for seq, sim, _wall, kind, data in self._ring
        )

    def snapshot(self) -> list[dict]:
        """JSON-ready dicts of the retained events, oldest first."""
        return [event.as_dict() for event in self.events()]

    def clear(self) -> None:
        """Forget retained events (capacity and enablement survive)."""
        self._ring.clear()

    def resize(self, capacity: int) -> None:
        """Re-bound the ring, keeping the newest events that fit."""
        if capacity < 1:
            raise ValueError("flight recorder needs capacity >= 1")
        self._ring = deque(self._ring, maxlen=capacity)

    def __repr__(self) -> str:
        return (
            f"FlightRecorder({len(self._ring)}/{self.capacity} events, "
            f"{self.dropped} dropped, "
            f"{'on' if self.enabled else 'off'})"
        )


# ----------------------------------------------------------------------
# Plan fingerprinting
# ----------------------------------------------------------------------


def plan_fingerprint(plan) -> int:
    """A CRC32 of the plan's *shape*: node types, pre-order, with the
    tables they produce.

    The fingerprint identifies which plan a journal entry or ledger row
    belongs to without carrying any predicate constant -- the same
    information EXPLAIN's node names reveal, compressed to one integer
    (integers pass every redaction gate by construction).
    """
    parts = []
    for node in plan.walk():
        parts.append(type(node).__name__)
        table = getattr(node, "output_table", None)
        if isinstance(table, str):
            parts.append(table)
    return zlib.crc32("|".join(parts).encode("ascii")) & 0xFFFFFFFF


def fingerprint_hex(fingerprint: int) -> str:
    """The conventional 8-hex-digit rendering (shell output only; in
    gated artefacts the fingerprint travels as an integer)."""
    return f"{fingerprint & 0xFFFFFFFF:08x}"
