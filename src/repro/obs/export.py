"""Trace exporters: Chrome trace-event JSON and a compact text tree.

The JSON form follows the Trace Event Format's ``X`` (complete) events
and loads directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.  Each span is emitted twice, on two process
tracks:

* ``pid 1`` -- **simulated device time**, the paper's metric; spans with
  zero simulated duration (e.g. optimizer costing) appear as instants;
* ``pid 2`` -- **host wall time**, which measures the simulator itself.

Timestamps are microseconds from the session clock's zero (simulated
track) or from the first span's start (wall track).  Span attributes ride
in ``args``; they have already passed the redaction gate, so the file as
a whole is safe to share -- the test suite feeds it through the
:class:`~repro.privacy.leakcheck.LeakChecker` to prove it.
"""

from __future__ import annotations

import json

from repro.obs.tracer import Span

SIM_PID = 1
WALL_PID = 2


def _walk_roots(spans):
    for root in spans:
        yield from root.walk()


def _wall_zero(spans) -> float:
    starts = [s.start_wall for s in _walk_roots(spans)]
    return min(starts, default=0.0)


def to_chrome_trace(spans: list[Span]) -> dict:
    """Render finished spans as a Trace Event Format document."""
    events = [
        {
            "ph": "M",
            "pid": SIM_PID,
            "name": "process_name",
            "args": {"name": "GhostDB simulated device time"},
        },
        {
            "ph": "M",
            "pid": WALL_PID,
            "name": "process_name",
            "args": {"name": "GhostDB host wall time"},
        },
    ]
    wall_zero = _wall_zero(spans)
    for span in _walk_roots(spans):
        if not span.finished:
            continue
        args = dict(span.attrs)
        args["sim_ms"] = round(span.sim_seconds * 1e3, 6)
        args["wall_ms"] = round(span.wall_seconds * 1e3, 6)
        common = {
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "tid": 1,
            "args": args,
        }
        events.append(
            {
                **common,
                "pid": SIM_PID,
                "ts": round(span.start_sim * 1e6, 3),
                "dur": round(span.sim_seconds * 1e6, 3),
            }
        )
        events.append(
            {
                **common,
                "pid": WALL_PID,
                "ts": round((span.start_wall - wall_zero) * 1e6, 3),
                "dur": round(span.wall_seconds * 1e6, 3),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(spans: list[Span], indent: int | None = None) -> str:
    return json.dumps(to_chrome_trace(spans), indent=indent)


def write_chrome_trace(spans: list[Span], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(chrome_trace_json(spans))


def span_tree_dicts(spans: list[Span]) -> list[dict]:
    """The span forest as nested JSON-ready dicts.

    This is the form the postmortem bundle embeds: attributes have
    already passed the redaction gate on the way into each span, and the
    nesting mirrors the live parent/child structure, so an aborted
    query's unfinished spans appear exactly as deep as they hung.
    """

    def _node(span: Span) -> dict:
        return {
            "name": span.name,
            "category": span.category,
            "sim_ms": round(span.sim_seconds * 1e3, 6),
            "wall_ms": round(span.wall_seconds * 1e3, 6),
            "finished": span.finished,
            "attrs": dict(span.attrs),
            "children": [_node(child) for child in span.children],
        }

    return [_node(root) for root in spans]


def render_tree(spans: list[Span]) -> str:
    """An indented text view of the span forest, for terminals."""
    lines = []
    for root in spans:
        for span in root.walk():
            lines.append("  " * span.depth + span.line())
    return "\n".join(lines)
