"""Typed failure modes of the simulated device.

Every fault the injector can manifest surfaces to callers as one of
these exceptions (or is absorbed by a recovery mechanism and never
surfaces at all).  The engine's contract under failure is:

* a query either returns the correct result or raises a
  :class:`GhostDBFaultError` subclass -- never a corrupted result, never
  a foreign exception from deep inside an operator;
* after :class:`UsbTransferError` the device is still consistent and the
  next query works immediately;
* after :class:`PowerCutError` / :class:`DeviceUnpluggedError` the
  device's volatile state is gone and the session must be remounted
  (:meth:`repro.core.ghostdb.GhostDB.remount`) before the next query.
"""

from __future__ import annotations


class GhostDBFaultError(RuntimeError):
    """Base class for injected-fault failures surfaced to callers."""


class UsbTransferError(GhostDBFaultError):
    """A USB message could not be delivered intact within the retry
    budget.  The device is still powered and consistent."""


class PowerCutError(GhostDBFaultError):
    """Power was lost mid-operation.  Volatile device state (FTL map,
    RAM) is gone; flash retains whatever was physically committed.
    Remount the device to run the recovery scan."""


class DeviceUnpluggedError(PowerCutError):
    """The key was unplugged mid-query.  Semantically a power cut (the
    device is USB-powered) that additionally kills the link."""
