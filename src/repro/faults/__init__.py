"""Deterministic fault injection and typed failure modes.

See :mod:`repro.faults.injector` for the decision engine and
``docs/ROBUSTNESS.md`` for the fault model and recovery invariants.
"""

from repro.faults.errors import (
    DeviceUnpluggedError,
    GhostDBFaultError,
    PowerCutError,
    UsbTransferError,
)
from repro.faults.injector import (
    FAULT_PROFILES,
    FaultDecision,
    FaultInjector,
    FaultProfile,
)

__all__ = [
    "DeviceUnpluggedError",
    "GhostDBFaultError",
    "PowerCutError",
    "UsbTransferError",
    "FAULT_PROFILES",
    "FaultDecision",
    "FaultInjector",
    "FaultProfile",
]
