"""Deterministic, seed-driven fault injection (`repro.faults`).

The injector is the single source of randomness for every simulated
hardware failure.  It owns one ``random.Random(seed)`` stream and makes
one *decision* per hardware operation, in call order, so a given
(workload, profile, seed) triple always produces the identical fault
schedule, retry trace, and simulated-time outcome -- the property the
chaos benchmarks and the determinism tests gate on.

The injector only *decides*; the hardware layers *manifest*.  A decision
is a :class:`FaultDecision` naming the fault kind plus the drawn
parameters (corrupt position, truncate length, stall duration, ...), and
every decision is appended to :attr:`FaultInjector.events` and counted
in ``ghostdb_faults_injected_total{site=...}`` so tests can assert the
exact schedule and operators can see fault pressure in the metrics
exposition.

Besides rate-driven faults, a power cut can be *scheduled* at an exact
flash-operation index (:meth:`FaultInjector.schedule_power_cut`); the
recovery sweep test uses this to cut power at every single flash op of a
workload and prove the mount-time scan always restores the last
committed state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class FaultProfile:
    """Per-operation fault probabilities for one chaos regime.

    All rates are per-operation probabilities in [0, 1].  USB rates are
    evaluated once per :meth:`~repro.hardware.usb.UsbChannel.transfer`;
    flash rates once per page program / page read / block erase.
    """

    name: str
    # USB link faults (per transfer).
    usb_corrupt_rate: float = 0.0
    usb_truncate_rate: float = 0.0
    usb_drop_rate: float = 0.0
    usb_stall_rate: float = 0.0
    usb_unplug_rate: float = 0.0
    usb_stall_seconds: float = 0.05
    # Flash faults (per page/block operation).
    flash_read_bitflip_rate: float = 0.0
    flash_torn_write_rate: float = 0.0
    flash_bad_block_rate: float = 0.0
    flash_power_cut_rate: float = 0.0

    def scaled(self, factor: float) -> "FaultProfile":
        """A copy with every rate multiplied by ``factor`` (capped at 1)."""
        rates = {
            name: min(1.0, getattr(self, name) * factor)
            for name in (
                "usb_corrupt_rate", "usb_truncate_rate", "usb_drop_rate",
                "usb_stall_rate", "usb_unplug_rate",
                "flash_read_bitflip_rate", "flash_torn_write_rate",
                "flash_bad_block_rate", "flash_power_cut_rate",
            )
        }
        return replace(self, **rates)


#: Named regimes selectable from the CLI (``--fault-profile``) and the
#: ``.fault`` shell command.  Rates are tuned so the demo workload sees
#: a handful of faults per query -- enough to exercise every recovery
#: path, rare enough that bounded retry usually still succeeds.
FAULT_PROFILES: dict[str, FaultProfile] = {
    "none": FaultProfile(name="none"),
    "usb": FaultProfile(
        name="usb",
        usb_corrupt_rate=0.05,
        usb_truncate_rate=0.02,
        usb_drop_rate=0.02,
        usb_stall_rate=0.05,
    ),
    "flash": FaultProfile(
        name="flash",
        flash_read_bitflip_rate=0.01,
        flash_torn_write_rate=0.005,
        flash_bad_block_rate=0.001,
    ),
    "powercut": FaultProfile(
        name="powercut",
        flash_power_cut_rate=0.0005,
        usb_unplug_rate=0.002,
    ),
    "mixed": FaultProfile(
        name="mixed",
        usb_corrupt_rate=0.03,
        usb_truncate_rate=0.01,
        usb_drop_rate=0.01,
        usb_stall_rate=0.03,
        flash_read_bitflip_rate=0.005,
        flash_torn_write_rate=0.002,
        flash_bad_block_rate=0.0005,
    ),
}


@dataclass(frozen=True)
class FaultDecision:
    """One manifested fault: what, where, and the drawn parameters."""

    kind: str           # corrupt | truncate | drop | stall | unplug |
                        # bitflip | torn | bad_block | power_cut
    site: str           # "usb" or "flash"
    op_index: int       # usb transfer index or flash op index
    position: int = 0   # corrupt/bitflip byte offset
    xor_mask: int = 0   # corrupt/bitflip bit pattern (never 0 when used)
    length: int = 0     # truncate: bytes kept
    seconds: float = 0.0  # stall: simulated delay


@dataclass
class FaultInjector:
    """Seed-driven decision engine shared by all hardware layers.

    One injector instance is attached to a device
    (:meth:`repro.hardware.device.SmartUsbDevice.attach_faults`); the
    USB channel and the NAND flash each consult it per operation.  All
    random draws come from the single :attr:`rng` stream in call order,
    which is what makes the schedule reproducible.
    """

    profile: FaultProfile
    seed: int = 0
    metrics: object | None = None  # MetricsRegistry, wired on attach
    flight: object | None = None  # FlightRecorder, wired on attach
    rng: random.Random = field(init=False, repr=False)
    events: list[FaultDecision] = field(default_factory=list)
    usb_ops: int = 0
    flash_ops: int = 0
    _cut_at_flash_op: int | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.rng = random.Random(self.seed)

    # -- configuration ------------------------------------------------

    def schedule_power_cut(self, at_flash_op: int) -> None:
        """Force a power cut when the flash-op counter reaches
        ``at_flash_op`` (0-based), regardless of profile rates."""
        self._cut_at_flash_op = at_flash_op

    # -- decision points ----------------------------------------------

    def usb_decision(self, payload_len: int) -> FaultDecision | None:
        """Decide the fate of one USB transfer of ``payload_len`` bytes.

        Exactly one rate draw per transfer; extra draws only when a
        fault fires (to pick its parameters).  Returns ``None`` for a
        clean transfer.
        """
        index = self.usb_ops
        self.usb_ops += 1
        p = self.profile
        roll = self.rng.random()
        edge = p.usb_unplug_rate
        if roll < edge:
            return self._record(FaultDecision("unplug", "usb", index))
        edge += p.usb_drop_rate
        if roll < edge:
            return self._record(FaultDecision("drop", "usb", index))
        edge += p.usb_corrupt_rate
        if roll < edge:
            pos = self.rng.randrange(max(1, payload_len))
            mask = self.rng.randrange(1, 256)
            return self._record(FaultDecision(
                "corrupt", "usb", index, position=pos, xor_mask=mask))
        edge += p.usb_truncate_rate
        if roll < edge:
            keep = self.rng.randrange(max(1, payload_len))
            return self._record(FaultDecision(
                "truncate", "usb", index, length=keep))
        edge += p.usb_stall_rate
        if roll < edge:
            return self._record(FaultDecision(
                "stall", "usb", index, seconds=p.usb_stall_seconds))
        return None

    def flash_decision(self, op: str, data_len: int = 0) -> FaultDecision | None:
        """Decide the fate of one flash operation.

        ``op`` is ``"program"``, ``"read"``, or ``"erase"``.  A
        scheduled power cut takes precedence over rate draws and does
        not consume one, so sweeping cut points never perturbs the
        rate-driven schedule before the cut.
        """
        index = self.flash_ops
        self.flash_ops += 1
        if self._cut_at_flash_op is not None and index >= self._cut_at_flash_op:
            return self._record(self._power_cut(op, index, data_len))
        p = self.profile
        if p.flash_power_cut_rate > 0 and self.rng.random() < p.flash_power_cut_rate:
            return self._record(self._power_cut(op, index, data_len))
        if op == "read" and p.flash_read_bitflip_rate > 0:
            if self.rng.random() < p.flash_read_bitflip_rate:
                pos = self.rng.randrange(max(1, data_len))
                mask = 1 << self.rng.randrange(8)
                return self._record(FaultDecision(
                    "bitflip", "flash", index, position=pos, xor_mask=mask))
        elif op == "program":
            if p.flash_bad_block_rate > 0 and self.rng.random() < p.flash_bad_block_rate:
                return self._record(FaultDecision("bad_block", "flash", index))
            if p.flash_torn_write_rate > 0 and self.rng.random() < p.flash_torn_write_rate:
                return self._record(FaultDecision("torn", "flash", index))
        elif op == "erase":
            if p.flash_bad_block_rate > 0 and self.rng.random() < p.flash_bad_block_rate:
                return self._record(FaultDecision("bad_block", "flash", index))
        return None

    def _power_cut(self, op: str, index: int, data_len: int) -> FaultDecision:
        """Build a power-cut decision; a cut mid-erase also draws how many
        pages of the block were physically wiped before power died."""
        wiped = 0
        if op == "erase" and data_len > 0:
            wiped = self.rng.randrange(data_len + 1)
        return FaultDecision("power_cut", "flash", index, length=wiped)

    # -- bookkeeping --------------------------------------------------

    def _record(self, decision: FaultDecision) -> FaultDecision:
        self.events.append(decision)
        if self.metrics is not None:
            self.metrics.counter("ghostdb_faults_injected_total").inc(
                site=decision.site, kind=decision.kind
            )
        if self.flight is not None:
            # "fault" is the event kind; the decision's own kind rides
            # in the payload under a distinct key.
            self.flight.record(
                "fault",
                site=decision.site,
                fault=decision.kind,
                op=decision.op_index,
            )
        return decision

    def schedule_signature(self) -> tuple[tuple[str, str, int], ...]:
        """Compact, comparable form of the full fault schedule."""
        return tuple((e.site, e.kind, e.op_index) for e in self.events)
