"""The GhostDB facade: one device core plus its default session.

A :class:`GhostDB` spans both sides of the boundary -- the simulated
smart USB device (hidden side), the visible site (PC / public server),
the USB link between them, the catalog, the optimizer and the executor.
The API mirrors how the paper describes use:

* declare the schema with standard ``CREATE TABLE`` statements carrying
  the ``HIDDEN`` keyword,
* load data once, in a secure setting (the loader splits each row into
  its public and device parts),
* issue unchanged SQL; the optimizer picks a Pre/Post/Cross-filtering
  plan, and the result comes back via the secure rendering path, never
  over the observable link.

Since the multi-session split, the facade is thin: everything shared
(hardware, loaded data, device-wide observability, fault state, session
admission) lives in a :class:`~repro.core.session.DeviceCore`, and
everything per-caller (executor/optimizer wiring, leak scorecards,
traces) lives in a :class:`~repro.core.session.SessionContext`.  The
facade binds a core to its *default session* -- the classic
single-caller wiring, bit-identical to the pre-split engine -- and
:meth:`open_session` admits additional leased sessions that the
cooperative scheduler can interleave.

Example::

    db = GhostDB()
    for ddl in DEMO_SCHEMA_DDL:
        db.execute(ddl)
    db.load(MedicalDataGenerator().generate())
    result = db.query(demo_query())
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.session import (
    AdmissionError,
    DeviceCore,
    SessionConfig,
    SessionContext,
    SessionError,
)
from repro.engine.executor import QueryResult
from repro.faults import FaultInjector, FaultProfile, GhostDBFaultError
from repro.hardware.device import default_cache_pages
from repro.hardware.profiles import DEMO_DEVICE, HardwareProfile
from repro.obs import get_logger
from repro.obs.export import chrome_trace_json, render_tree, write_chrome_trace
from repro.obs.tracer import Span
from repro.optimizer.space import Strategy
from repro.privacy.meter import TrafficProfile

__all__ = [
    "AdmissionError",
    "GhostDB",
    "QueryTrace",
    "SessionConfig",
    "SessionError",
]

log = get_logger(__name__)


@dataclass
class QueryTrace:
    """One traced query: its result plus the spans it produced."""

    result: QueryResult
    spans: list[Span]

    def chrome_json(self, indent: int | None = None) -> str:
        """Chrome trace-event JSON (loads in Perfetto)."""
        return chrome_trace_json(self.spans, indent=indent)

    def render(self) -> str:
        """The compact text tree of spans."""
        return render_tree(self.spans)

    def save(self, path: str) -> None:
        write_chrome_trace(self.spans, path)


class GhostDB:
    """A complete GhostDB instance over a simulated device."""

    def __init__(
        self,
        profile: HardwareProfile = DEMO_DEVICE,
        config: SessionConfig | None = None,
    ):
        self.config = config or SessionConfig()
        self.core = DeviceCore(profile, self.config)
        self.core.owner = self
        #: The default session: full-RAM, un-leased, bit-identical to
        #: the pre-split single-caller engine.
        self.session = SessionContext(
            core=self.core, name="default", config=self.config, lease=None
        )

    # ------------------------------------------------------------------
    # Shared state (owned by the core)
    # ------------------------------------------------------------------

    @property
    def profile(self) -> HardwareProfile:
        return self.core.profile

    @property
    def obs(self):
        return self.core.obs

    @property
    def device(self):
        return self.core.device

    @property
    def schema(self):
        return self.core.schema

    @property
    def tree(self):
        return self.core.tree

    @property
    def site(self):
        return self.core.site

    @property
    def hidden(self):
        return self.core.hidden

    @property
    def fault_injector(self) -> FaultInjector | None:
        return self.core.fault_injector

    # ------------------------------------------------------------------
    # Default-session state
    # ------------------------------------------------------------------

    @property
    def link(self):
        return self.session.link

    @property
    def executor(self):
        return self.session.executor

    @property
    def optimizer(self):
        return self.session.optimizer

    @property
    def _last_leak_profile(self) -> TrafficProfile | None:
        return self.session._last_leak_profile

    # ------------------------------------------------------------------
    # DDL / loading
    # ------------------------------------------------------------------

    def execute(self, sql: str):
        """Execute one statement: CREATE TABLE, INSERT, SELECT, UPDATE
        or DELETE."""
        return self.session.execute(sql)

    def load(self, rows_by_table: dict[str, list] | None = None) -> None:
        """Split and load the database onto both sides; build indexes.

        ``rows_by_table`` maps table name -> full rows in schema column
        order, sorted by primary key.  Buffered INSERTs are merged in.
        """
        total = self.core.load_data(rows_by_table)
        self.session.attach()
        self.core.finish_load(total)

    def append(self, table: str, rows: list[tuple]):
        """Append rows after the initial load (a re-synchronisation
        session over the secure channel).

        Splits each full row like the loader does, rebuilds the affected
        device structures (an out-of-place, GC-feeding operation whose
        cost shows up in the device counters), and updates the visible
        site.  Returns the maintenance report.
        """
        from repro.engine.maintenance import append_rows

        session = self.session
        session._require_loaded()
        session._guard_powered()
        table_def = self.schema.table(table)
        validated = [
            tuple(
                col.dtype.validate(value)
                for col, value in zip(table_def.columns, row)
            )
            for row in rows
        ]
        try:
            report = append_rows(self.hidden, table, validated)
        except GhostDBFaultError as exc:
            session._abort_on_fault(exc)
            raise
        self.site.append(table, validated)
        return report

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------

    def open_session(
        self,
        name: str | None = None,
        ram_bytes: int | None = None,
        config: SessionConfig | None = None,
    ) -> SessionContext:
        """Admit an additional leased session (its own RAM partition,
        buffer pool and measurement plane).  Raises
        :class:`AdmissionError` when the session cap or the secure RAM
        budget is exhausted."""
        return self.core.open_session(
            name=name, ram_bytes=ram_bytes, config=config
        )

    def close_session(self, session: SessionContext) -> None:
        """Release a leased session's partition and admission slot."""
        self.core.close_session(session)

    # ------------------------------------------------------------------
    # Fault injection and recovery
    # ------------------------------------------------------------------

    def set_faults(
        self,
        profile: str | FaultProfile | None,
        seed: int = 0,
    ) -> FaultInjector | None:
        """Attach a deterministic fault injector to the device.

        ``profile`` is a name from :data:`repro.faults.FAULT_PROFILES`
        (or a :class:`FaultProfile`); ``None`` or ``"none"``-with-no-rates
        still attaches, which is useful for scheduled power cuts.  The
        same (workload, profile, seed) triple always reproduces the
        identical fault schedule.  Returns the injector.
        """
        return self.core.set_faults(profile, seed)

    def clear_faults(self) -> None:
        """Detach the fault injector; the device is healthy again."""
        self.core.clear_faults()

    @property
    def needs_remount(self) -> bool:
        """True after a power cut or unplug, until :meth:`remount`."""
        return self.core.needs_remount

    def remount(self) -> None:
        """Plug the key back in after power loss (FTL recovery scan
        plus the mount-time orphan sweep).  Idempotent."""
        self.core.remount()

    # ------------------------------------------------------------------
    # Buffer pool
    # ------------------------------------------------------------------

    def set_cache(self, capacity_pages: int | None) -> None:
        """Resize the device buffer pool at runtime.

        ``None`` restores the profile default, ``0`` disables the pool
        (every flash access pays the NAND again).  The cost model is
        re-pointed at the new capacity so plan choices follow: without a
        pool, dense SKT access is priced at one partial read per hit
        instead of one full read per touched page.
        """
        if capacity_pages is None:
            capacity_pages = default_cache_pages(self.profile)
        self.device.page_cache.resize(capacity_pages)
        if self.optimizer is not None:
            self.optimizer.cost_model.cache_pages = (
                self.device.page_cache.capacity_for_costing
            )

    @property
    def cache_enabled(self) -> bool:
        return self.device.page_cache.enabled

    # ------------------------------------------------------------------
    # Queries (default session)
    # ------------------------------------------------------------------

    def bind(self, sql: str):
        """Parse and bind a SELECT without running it."""
        return self.session.bind(sql)

    def query(self, sql: str) -> QueryResult:
        """Optimize and execute a SELECT; returns rows plus metrics."""
        return self.session.query(sql)

    def query_with_strategy(self, sql: str, strategy: Strategy) -> QueryResult:
        """Execute with an explicit PRE/POST assignment (the demo GUI's
        ad-hoc plan building)."""
        return self.session.query_with_strategy(sql, strategy)

    def execute_plan(self, plan) -> QueryResult:
        """Execute a hand-built plan (demo phase 2/3)."""
        return self.session.execute_plan(plan)

    def rank_plans(self, sql: str):
        """All candidate plans, cheapest estimate first."""
        return self.session.rank_plans(sql)

    def explain(self, sql: str) -> str:
        """The chosen plan with per-node estimates."""
        return self.session.explain(sql)

    def explain_analyze(self, sql: str) -> tuple[str, QueryResult]:
        """Execute the chosen plan and report estimated vs measured
        statistics per node (plus the result itself)."""
        return self.session.explain_analyze(sql)

    def leak_scorecard(self) -> TrafficProfile | None:
        """The :class:`~repro.privacy.meter.TrafficProfile` of the last
        metered query, or of the whole captured log when no query ran
        since the last reset.  ``None`` with nothing captured."""
        return self.session.leak_scorecard()

    # ------------------------------------------------------------------
    # Persistence (unplug / replug the key)
    # ------------------------------------------------------------------

    def save(self, path: str) -> None:
        """Persist the whole session -- flash image, indexes, wear
        counters, visible store -- to ``path``."""
        from repro.core.persistence import save_session

        save_session(self, path)

    @classmethod
    def restore(cls, path: str) -> "GhostDB":
        """Reopen a session saved with :meth:`save`."""
        from repro.core.persistence import load_session

        return load_session(path)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def trace(self, sql: str) -> QueryTrace:
        """Run a SELECT and return its result together with the trace
        spans it produced (optimizer candidates, operators, hardware
        counter attributes) -- the demo's popup view, as data."""
        mark = len(self.obs.tracer.roots)
        result = self.query(sql)
        return QueryTrace(
            result=result, spans=self.obs.tracer.roots[mark:]
        )

    def metrics_text(self) -> str:
        """Prometheus-style text exposition of the session's metrics:
        query-attributed ``ghostdb_*`` families (counter totals match
        the summed per-query :class:`ExecutionMetrics` diffs) plus
        device-lifetime ``ghostdb_device_*`` families."""
        return self.obs.registry.expose_text()

    def postmortem(self, reason: str = "dump") -> dict:
        """The full postmortem bundle dict (pre-redaction): the flight
        ring, the registry, the span forest, device/FTL state summaries
        and the per-query resource ledger.  See
        :mod:`repro.obs.bundle`."""
        from repro.obs.bundle import build_bundle

        return build_bundle(self, reason=reason)

    def dump_bundle(
        self, reason: str = "dump", directory: str | None = None
    ) -> str:
        """Write a redaction-gated ``DUMP_<seed>.json`` postmortem
        bundle; returns its path.

        Called automatically on fault aborts when the session was
        configured with ``dump_on_fault``; callable any time for an
        on-demand snapshot (the shell's ``.dump``, ``ghostdb doctor``).
        """
        from repro.obs.bundle import build_bundle, write_bundle

        bundle = build_bundle(self, reason=reason)
        path = write_bundle(
            bundle,
            directory=directory if directory is not None else self.config.dump_dir,
            redactor=self.obs.redactor,
        )
        self.obs.registry.counter("ghostdb_postmortem_bundles_total").inc(
            reason=reason
        )
        log.info("postmortem bundle written: %s", path)
        return path

    def bench_report(self) -> dict:
        """Grade the optimizer's estimates on this loaded session.

        Runs every candidate strategy of every query family (resetting
        the measurement state around each execution), returns the
        per-family T9 scorecard dict and feeds the per-candidate
        est/meas ratios into the ``ghostdb_optimizer_est_over_meas``
        histogram.  See :mod:`repro.bench.scorecard`.
        """
        from repro.bench.scorecard import build_scorecard

        return build_scorecard(self)

    def session_spans(self) -> list:
        """Every trace span recorded since load (or the last reset)."""
        return list(self.obs.tracer.roots)

    def export_trace(self, path: str) -> None:
        """Write the whole session's spans as Chrome trace-event JSON
        (loadable in Perfetto / ``chrome://tracing``)."""
        write_chrome_trace(self.session_spans(), path)

    def reset_measurements(self) -> None:
        """Zero clock/traffic/counters/metrics/trace between measured
        queries."""
        self.device.reset_measurements()
        self.obs.registry.reset()
        self.obs.tracer.clear()
        self.session._last_leak_profile = None

    @property
    def usb_log(self):
        """The captured trust-boundary traffic (what a spy sees)."""
        return self.device.usb.records()
