"""The GhostDB session: one object spanning both sides of the boundary.

A session owns the simulated smart USB device (hidden side), the visible
site (PC / public server), the USB link between them, the catalog, the
optimizer and the executor.  The API mirrors how the paper describes use:

* declare the schema with standard ``CREATE TABLE`` statements carrying
  the ``HIDDEN`` keyword,
* load data once, in a secure setting (the loader splits each row into
  its public and device parts),
* issue unchanged SQL; the optimizer picks a Pre/Post/Cross-filtering
  plan, and the result comes back via the secure rendering path, never
  over the observable link.

Example::

    db = GhostDB()
    for ddl in DEMO_SCHEMA_DDL:
        db.execute(ddl)
    db.load(MedicalDataGenerator().generate())
    result = db.query(demo_query())
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.schema import Schema, SchemaError
from repro.catalog.tree import SchemaTree
from repro.engine.database import HiddenDatabase
from repro.engine.executor import DmlResult, ExecConfig, Executor, QueryResult
from repro.faults import (
    FAULT_PROFILES,
    FaultInjector,
    FaultProfile,
    GhostDBFaultError,
    PowerCutError,
)
from repro.engine.plan import DeletePlan, Project, UpdatePlan
from repro.hardware.device import SmartUsbDevice, default_cache_pages
from repro.hardware.profiles import DEMO_DEVICE, HardwareProfile
from repro.obs import Observability, get_logger
from repro.obs.export import chrome_trace_json, render_tree, write_chrome_trace
from repro.obs.tracer import Span
from repro.optimizer.explain import explain_plan
from repro.privacy.meter import TrafficProfile, profile_records
from repro.optimizer.optimizer import Optimizer, RankedPlan
from repro.optimizer.space import PlanBuilder, Strategy
from repro.sql import ast
from repro.sql.binder import Binder, BoundQuery
from repro.sql.ddl import create_table
from repro.sql.parser import parse_statement
from repro.visible.link import DeviceLink
from repro.visible.site import VisibleSite

log = get_logger(__name__)


class SessionError(RuntimeError):
    """The session was used out of order (e.g. query before load)."""


@dataclass
class QueryTrace:
    """One traced query: its result plus the spans it produced."""

    result: QueryResult
    spans: list[Span]

    def chrome_json(self, indent: int | None = None) -> str:
        """Chrome trace-event JSON (loads in Perfetto)."""
        return chrome_trace_json(self.spans, indent=indent)

    def render(self) -> str:
        """The compact text tree of spans."""
        return render_tree(self.spans)

    def save(self, path: str) -> None:
        write_chrome_trace(self.spans, path)


@dataclass
class SessionConfig:
    """Session-wide tunables."""

    exec_config: ExecConfig | None = None
    id_batch: int = 256
    index_columns: list | None = None
    #: Fault-injection regime to attach after load (a name from
    #: :data:`repro.faults.FAULT_PROFILES`), or None for a healthy device.
    fault_profile: str | None = None
    fault_seed: int = 0
    #: Device buffer-pool capacity in pages: ``None`` takes the profile
    #: default (a quarter of RAM), ``0`` disables the pool.
    cache_pages: int | None = None
    #: Flight-recorder ring capacity in events (``None`` takes the
    #: recorder default) and enablement.  The ring is host memory,
    #: accounted outside the device's secure RAM budget.
    flight_capacity: int | None = None
    flight_enabled: bool = True
    #: Write a postmortem bundle (``DUMP_<seed>.json`` in ``dump_dir``)
    #: whenever an injected fault aborts a query.
    dump_on_fault: bool = False
    dump_dir: str = "."

    def __post_init__(self):
        if self.exec_config is None:
            self.exec_config = ExecConfig()


class GhostDB:
    """A complete GhostDB instance over a simulated device."""

    def __init__(
        self,
        profile: HardwareProfile = DEMO_DEVICE,
        config: SessionConfig | None = None,
    ):
        self.profile = profile
        self.config = config or SessionConfig()
        self.obs = Observability(
            flight_capacity=self.config.flight_capacity,
            flight_enabled=self.config.flight_enabled,
        )
        self.device = SmartUsbDevice(
            profile,
            metrics=self.obs.registry,
            cache_pages=self.config.cache_pages,
            flight=self.obs.flight,
        )
        # Spans and flight events measure simulated time against this
        # device's clock.
        self.obs.tracer.clock = self.device.clock
        self.obs.flight.clock = self.device.clock
        self.obs.flight.metric = self.obs.registry.counter(
            "ghostdb_flight_events_total"
        ).labelled()
        self.schema = Schema()
        self.tree: SchemaTree | None = None
        self.site: VisibleSite | None = None
        self.hidden: HiddenDatabase | None = None
        self.link: DeviceLink | None = None
        self.executor: Executor | None = None
        self.optimizer: Optimizer | None = None
        self._pending_inserts: dict[str, list[tuple]] = {}
        self.fault_injector: FaultInjector | None = None
        self._needs_remount = False
        self._last_leak_profile: TrafficProfile | None = None

    # ------------------------------------------------------------------
    # DDL / DML
    # ------------------------------------------------------------------

    def execute(self, sql: str):
        """Execute one statement: CREATE TABLE, INSERT, SELECT, UPDATE
        or DELETE."""
        statement = parse_statement(sql)
        if isinstance(statement, ast.CreateTable):
            if self.tree is not None:
                raise SessionError(
                    "schema is frozen once data is loaded"
                )
            return create_table(self.schema, statement)
        if isinstance(statement, ast.Insert):
            return self._buffer_insert(statement)
        if isinstance(statement, ast.Select):
            return self._run_select(statement, sql)
        if isinstance(statement, (ast.Update, ast.Delete)):
            return self._run_dml(statement, sql)
        raise SessionError(f"unsupported statement {type(statement).__name__}")

    def _buffer_insert(self, statement: ast.Insert) -> int:
        """INSERTs are buffered; :meth:`load` flushes them.

        The device is loaded once in a secure setting (Section 2), so the
        session collects inserts and loads them together.
        """
        if self.tree is not None:
            raise SessionError(
                "data is loaded; GhostDB devices are loaded once, in a "
                "secure setting"
            )
        table = self.schema.table(statement.table)
        for row in statement.values:
            if len(row) != len(table.columns):
                raise SchemaError(
                    f"{table.name}: INSERT arity {len(row)} != "
                    f"{len(table.columns)} columns"
                )
            normalised = tuple(
                col.dtype.validate(value)
                for col, value in zip(table.columns, row)
            )
            self._pending_inserts.setdefault(
                table.name.lower(), []
            ).append(normalised)
        return len(statement.values)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def load(self, rows_by_table: dict[str, list] | None = None) -> None:
        """Split and load the database onto both sides; build indexes.

        ``rows_by_table`` maps table name -> full rows in schema column
        order, sorted by primary key.  Buffered INSERTs are merged in.
        """
        if self.tree is not None:
            raise SessionError("data is already loaded")
        rows_by_table = {
            name.lower(): list(rows)
            for name, rows in (rows_by_table or {}).items()
        }
        for name, rows in self._pending_inserts.items():
            rows_by_table.setdefault(name, []).extend(rows)
            rows_by_table[name].sort(
                key=lambda r, t=self.schema.table(name): r[
                    t.column_index(t.pk.name)
                ]
            )
        self._pending_inserts.clear()
        for table in self.schema:
            rows_by_table.setdefault(table.name.lower(), [])

        self.tree = SchemaTree(self.schema)
        self.site = VisibleSite(self.schema)
        for name, rows in rows_by_table.items():
            self.site.load(name, rows)
        self.hidden = HiddenDatabase.load(
            self.device,
            self.tree,
            rows_by_table,
            index_columns=self.config.index_columns,
        )
        # Batch sizes scale with the chip's RAM: receive buffers are real
        # allocations, so a 16 KB device cannot afford 64 KB-class batches.
        id_batch = min(self.config.id_batch, max(32, self.profile.ram_bytes // 256))
        exec_config = self.config.exec_config
        fetch_batch = min(
            exec_config.fetch_batch, max(8, self.profile.ram_bytes // 512)
        )
        # exec_batch is deliberately *not* RAM-scaled: batch windows are
        # host-side lists, invisible to the device's budget.
        exec_config = ExecConfig(
            max_fan_in=exec_config.max_fan_in,
            bloom_fp_target=exec_config.bloom_fp_target,
            fetch_batch=fetch_batch,
            exec_batch=exec_config.exec_batch,
        )
        self.link = DeviceLink(
            self.device, self.site, id_batch=id_batch, fetch_batch=fetch_batch
        )
        self.executor = Executor(
            self.device, self.link, self.hidden, exec_config, obs=self.obs
        )
        self.optimizer = Optimizer(
            self.hidden,
            self.site,
            self.profile,
            fan_in=self.config.exec_config.max_fan_in,
            bloom_fp_target=self.config.exec_config.bloom_fp_target,
            obs=self.obs,
            cache_pages=self.device.page_cache.capacity_for_costing,
        )
        # Schema identifiers (names, never values) may appear in traces.
        self.obs.redactor.allow_schema(self.schema)
        # Loading is not part of any query measurement.
        self.device.reset_measurements()
        if self.config.fault_profile:
            self.set_faults(self.config.fault_profile, self.config.fault_seed)
        log.info(
            "session loaded: %d tables, %d rows total",
            sum(1 for _ in self.schema),
            sum(len(rows) for rows in rows_by_table.values()),
        )

    def _require_loaded(self) -> None:
        if self.tree is None:
            raise SessionError("load data before querying")

    # ------------------------------------------------------------------
    # Fault injection and recovery
    # ------------------------------------------------------------------

    def set_faults(
        self,
        profile: str | FaultProfile | None,
        seed: int = 0,
    ) -> FaultInjector | None:
        """Attach a deterministic fault injector to the device.

        ``profile`` is a name from :data:`repro.faults.FAULT_PROFILES`
        (or a :class:`FaultProfile`); ``None`` or ``"none"``-with-no-rates
        still attaches, which is useful for scheduled power cuts.  The
        same (workload, profile, seed) triple always reproduces the
        identical fault schedule.  Returns the injector.
        """
        if profile is None:
            self.clear_faults()
            return None
        if isinstance(profile, str):
            try:
                profile = FAULT_PROFILES[profile]
            except KeyError:
                raise SessionError(
                    f"unknown fault profile {profile!r}; choose from "
                    f"{sorted(FAULT_PROFILES)}"
                ) from None
        self.fault_injector = FaultInjector(profile=profile, seed=seed)
        self.device.attach_faults(self.fault_injector)
        return self.fault_injector

    def clear_faults(self) -> None:
        """Detach the fault injector; the device is healthy again."""
        self.fault_injector = None
        self.device.detach_faults()

    # ------------------------------------------------------------------
    # Buffer pool
    # ------------------------------------------------------------------

    def set_cache(self, capacity_pages: int | None) -> None:
        """Resize the device buffer pool at runtime.

        ``None`` restores the profile default, ``0`` disables the pool
        (every flash access pays the NAND again).  The cost model is
        re-pointed at the new capacity so plan choices follow: without a
        pool, dense SKT access is priced at one partial read per hit
        instead of one full read per touched page.
        """
        if capacity_pages is None:
            capacity_pages = default_cache_pages(self.profile)
        self.device.page_cache.resize(capacity_pages)
        if self.optimizer is not None:
            self.optimizer.cost_model.cache_pages = (
                self.device.page_cache.capacity_for_costing
            )

    @property
    def cache_enabled(self) -> bool:
        return self.device.page_cache.enabled

    @property
    def needs_remount(self) -> bool:
        """True after a power cut or unplug, until :meth:`remount`."""
        return self._needs_remount

    def remount(self) -> None:
        """Plug the key back in after power loss.

        Rebuilds the FTL map from the flash spare-area journal (rolling
        back torn writes to the last committed state) and resets the
        volatile RAM budget.  A mount-time *orphan sweep* then frees
        every recovered page the catalog no longer references: pages a
        crashed rebuild had written but never committed, and freed pages
        the journal resurrected (``ftl.free`` is volatile).  Idempotent;
        safe to call on a healthy device.
        """
        self.device.remount()
        if self.tree is not None:
            ftl = self.device.ftl
            orphans = ftl.mapped_lpages() - self.hidden.referenced_pages()
            for lpage in orphans:
                ftl.free(lpage)
            if orphans:
                self.obs.registry.counter(
                    "ghostdb_recovery_orphan_pages_total"
                ).inc(len(orphans))
                self.obs.flight.record(
                    "orphan_sweep", freed=len(orphans)
                )
        self._needs_remount = False

    def _guard_powered(self) -> None:
        if self._needs_remount:
            raise SessionError(
                "device lost power mid-operation; call remount() before "
                "querying again"
            )

    def _abort_on_fault(self, exc: GhostDBFaultError) -> None:
        """Record a fault-aborted query; power loss demands a remount."""
        self.obs.registry.counter(
            "ghostdb_recovery_aborted_queries_total"
        ).inc(reason=type(exc).__name__)
        if isinstance(exc, PowerCutError):
            self._needs_remount = True
        if self.config.dump_on_fault:
            self.dump_bundle(
                reason=type(exc).__name__,
                directory=self.config.dump_dir,
            )

    def append(self, table: str, rows: list[tuple]):
        """Append rows after the initial load (a re-synchronisation
        session over the secure channel).

        Splits each full row like the loader does, rebuilds the affected
        device structures (an out-of-place, GC-feeding operation whose
        cost shows up in the device counters), and updates the visible
        site.  Returns the maintenance report.
        """
        from repro.engine.maintenance import append_rows

        self._require_loaded()
        self._guard_powered()
        table_def = self.schema.table(table)
        validated = [
            tuple(
                col.dtype.validate(value)
                for col, value in zip(table_def.columns, row)
            )
            for row in rows
        ]
        try:
            report = append_rows(self.hidden, table, validated)
        except GhostDBFaultError as exc:
            self._abort_on_fault(exc)
            raise
        self.site.append(table, validated)
        return report

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def bind(self, sql: str) -> BoundQuery:
        """Parse and bind a SELECT without running it."""
        self._require_loaded()
        statement = parse_statement(sql)
        if not isinstance(statement, ast.Select):
            raise SessionError("bind() expects a SELECT")
        return Binder(self.tree).bind(statement)

    def _announce_query(self, sql: str) -> None:
        """Ship the query text to the device, as the terminal would.

        The paper accepts that the spy learns "the queries he poses";
        this makes that observable in the captured traffic.
        """
        self.link.announce(sql)

    def _meter_leakage(self, mark: int, span: Span | None = None) -> None:
        """Profile the boundary traffic one query generated.

        ``mark`` is the USB log length before the query started.  The
        profile feeds the ``ghostdb_leak_*`` metric families and -- as
        numbers only, same bar as every span attribute -- annotates the
        query span, so traces show what each query *looked like* from
        the spy's side of the boundary.
        """
        records = self.device.usb.log[mark:]
        if not records:
            return
        profile = profile_records(records)
        self._last_leak_profile = profile
        self.obs.record_leakage(profile)
        if span is not None:
            span.set("leak_messages", profile.messages)
            span.set("leak_bytes", profile.observable_bytes)
            span.set("leak_ids", profile.ids_observed)
            span.set(
                "leak_entropy_bits", round(profile.shape_entropy_bits, 3)
            )
            span.set("leak_signature", profile.signature_int)

    def leak_scorecard(self) -> TrafficProfile | None:
        """The :class:`~repro.privacy.meter.TrafficProfile` of the last
        metered query, or of the whole captured log when no query ran
        since the last reset.  ``None`` with nothing captured."""
        if self._last_leak_profile is not None:
            return self._last_leak_profile
        records = self.usb_log
        return profile_records(records) if records else None

    def _run_select(self, statement: ast.Select, sql: str = "") -> QueryResult:
        self._require_loaded()
        self._guard_powered()
        mark = len(self.device.usb.log)
        with self.obs.tracer.span("query", category="session") as span:
            if sql:
                # The SQL text passes the redaction gate: constants (which
                # may name hidden values) come out as '?', identifiers stay.
                span.set("sql", " ".join(sql.split()))
            try:
                if sql:
                    self._announce_query(sql)
                bound = Binder(self.tree).bind(statement)
                ranked = self.optimizer.optimize(bound)
                result = self.executor.execute(ranked.plan)
            except GhostDBFaultError as exc:
                span.set("aborted", type(exc).__name__)
                self._abort_on_fault(exc)
                raise
            span.set("result_rows", result.row_count)
            self._meter_leakage(mark, span)
        return result

    def _run_dml(
        self, statement: ast.Update | ast.Delete, sql: str = ""
    ) -> DmlResult:
        """Run one UPDATE or DELETE as an atomic rebuild transaction.

        DML travels the secure channel like appends do -- its text may
        name hidden values, so unlike SELECT it is *not* announced over
        the spied USB link; read-scenario leak signatures are untouched.
        """
        self._require_loaded()
        self._guard_powered()
        with self.obs.tracer.span("dml", category="session") as span:
            if sql:
                # Same redaction bar as queries: constants come out as
                # '?' on export, identifiers stay.
                span.set("sql", " ".join(sql.split()))
            try:
                if isinstance(statement, ast.Update):
                    bound = Binder(self.tree).bind_update(statement)
                    plan = UpdatePlan(bound)
                else:
                    bound = Binder(self.tree).bind_delete(statement)
                    plan = DeletePlan(bound)
                result = self.executor.execute_dml(plan, self.site)
            except GhostDBFaultError as exc:
                span.set("aborted", type(exc).__name__)
                self._abort_on_fault(exc)
                raise
            span.set("matched", result.matched)
            span.set("changed", result.changed)
        return result

    def query(self, sql: str) -> QueryResult:
        """Optimize and execute a SELECT; returns rows plus metrics."""
        result = self.execute(sql)
        if not isinstance(result, QueryResult):
            raise SessionError("query() expects a SELECT statement")
        return result

    def query_with_strategy(self, sql: str, strategy: Strategy) -> QueryResult:
        """Execute with an explicit PRE/POST assignment (the demo GUI's
        ad-hoc plan building)."""
        self._guard_powered()
        mark = len(self.device.usb.log)
        with self.obs.tracer.span("query", category="session") as span:
            span.set("sql", " ".join(sql.split()))
            try:
                self._announce_query(sql)
                bound = self.bind(sql)
                span.set("strategy", strategy.label(bound))
                builder = PlanBuilder(self.hidden, bound)
                plan = builder.build(strategy)
                self.optimizer.annotate(plan)
                result = self.executor.execute(plan)
            except GhostDBFaultError as exc:
                span.set("aborted", type(exc).__name__)
                self._abort_on_fault(exc)
                raise
            self._meter_leakage(mark, span)
        return result

    def execute_plan(self, plan: Project) -> QueryResult:
        """Execute a hand-built plan (demo phase 2/3)."""
        self._require_loaded()
        return self.executor.execute(plan)

    def rank_plans(self, sql: str) -> list[RankedPlan]:
        """All candidate plans, cheapest estimate first."""
        bound = self.bind(sql)
        return self.optimizer.rank(bound)

    def explain(self, sql: str) -> str:
        """The chosen plan with per-node estimates."""
        bound = self.bind(sql)
        best = self.optimizer.optimize(bound)
        return explain_plan(best.plan, self.optimizer.cost_model)

    def explain_analyze(self, sql: str) -> tuple[str, QueryResult]:
        """Execute the chosen plan and report estimated vs measured
        statistics per node (plus the result itself)."""
        from repro.optimizer.explain import explain_analyze

        self._guard_powered()
        mark = len(self.device.usb.log)
        try:
            self._announce_query(sql)
            bound = self.bind(sql)
            best = self.optimizer.optimize(bound)
            result = self.executor.execute(best.plan)
        except GhostDBFaultError as exc:
            self._abort_on_fault(exc)
            raise
        self._meter_leakage(mark)
        report = explain_analyze(best.plan, self.optimizer.cost_model)
        measured = result.metrics.elapsed_seconds
        if measured > 1e-9:
            estimated = self.optimizer.cost_model.estimate(best.plan).seconds
            self.obs.registry.histogram(
                "ghostdb_optimizer_est_over_meas"
            ).observe(estimated / measured)
        return report, result

    # ------------------------------------------------------------------
    # Persistence (unplug / replug the key)
    # ------------------------------------------------------------------

    def save(self, path: str) -> None:
        """Persist the whole session -- flash image, indexes, wear
        counters, visible store -- to ``path``."""
        from repro.core.persistence import save_session

        save_session(self, path)

    @classmethod
    def restore(cls, path: str) -> "GhostDB":
        """Reopen a session saved with :meth:`save`."""
        from repro.core.persistence import load_session

        return load_session(path)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def trace(self, sql: str) -> QueryTrace:
        """Run a SELECT and return its result together with the trace
        spans it produced (optimizer candidates, operators, hardware
        counter attributes) -- the demo's popup view, as data."""
        mark = len(self.obs.tracer.roots)
        result = self.query(sql)
        return QueryTrace(
            result=result, spans=self.obs.tracer.roots[mark:]
        )

    def metrics_text(self) -> str:
        """Prometheus-style text exposition of the session's metrics:
        query-attributed ``ghostdb_*`` families (counter totals match
        the summed per-query :class:`ExecutionMetrics` diffs) plus
        device-lifetime ``ghostdb_device_*`` families."""
        return self.obs.registry.expose_text()

    def postmortem(self, reason: str = "dump") -> dict:
        """The full postmortem bundle dict (pre-redaction): the flight
        ring, the registry, the span forest, device/FTL state summaries
        and the per-query resource ledger.  See
        :mod:`repro.obs.bundle`."""
        from repro.obs.bundle import build_bundle

        return build_bundle(self, reason=reason)

    def dump_bundle(
        self, reason: str = "dump", directory: str | None = None
    ) -> str:
        """Write a redaction-gated ``DUMP_<seed>.json`` postmortem
        bundle; returns its path.

        Called automatically on fault aborts when the session was
        configured with ``dump_on_fault``; callable any time for an
        on-demand snapshot (the shell's ``.dump``, ``ghostdb doctor``).
        """
        from repro.obs.bundle import build_bundle, write_bundle

        bundle = build_bundle(self, reason=reason)
        path = write_bundle(
            bundle,
            directory=directory if directory is not None else self.config.dump_dir,
            redactor=self.obs.redactor,
        )
        self.obs.registry.counter("ghostdb_postmortem_bundles_total").inc(
            reason=reason
        )
        log.info("postmortem bundle written: %s", path)
        return path

    def bench_report(self) -> dict:
        """Grade the optimizer's estimates on this loaded session.

        Runs every candidate strategy of every query family (resetting
        the measurement state around each execution), returns the
        per-family T9 scorecard dict and feeds the per-candidate
        est/meas ratios into the ``ghostdb_optimizer_est_over_meas``
        histogram.  See :mod:`repro.bench.scorecard`.
        """
        from repro.bench.scorecard import build_scorecard

        return build_scorecard(self)

    def session_spans(self) -> list:
        """Every trace span recorded since load (or the last reset)."""
        return list(self.obs.tracer.roots)

    def export_trace(self, path: str) -> None:
        """Write the whole session's spans as Chrome trace-event JSON
        (loadable in Perfetto / ``chrome://tracing``)."""
        write_chrome_trace(self.session_spans(), path)

    def reset_measurements(self) -> None:
        """Zero clock/traffic/counters/metrics/trace between measured
        queries."""
        self.device.reset_measurements()
        self.obs.registry.reset()
        self.obs.tracer.clear()
        self._last_leak_profile = None

    @property
    def usb_log(self):
        """The captured trust-boundary traffic (what a spy sees)."""
        return self.device.usb.records()
